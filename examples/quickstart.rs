//! Quickstart: optimize the multi-site test infrastructure of the embedded
//! d695 benchmark SOC on a small ATE and print the resulting DfT.
//!
//! Run with: `cargo run --example quickstart`

use soctest::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The SOC under test: the ITC'02 d695 benchmark (ten ISCAS cores).
    let soc = soctest::soc_model::benchmarks::d695();
    println!("SOC: {} — {}", soc.name(), soc.stats());

    // 2. The fixed test cell: a modest 256-channel ATE with 96K vectors per
    //    channel, a 5 MHz test clock, and the paper's probe station.
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    println!("{}", cell.ate);

    // 3. Build an engine session for the SOC and submit one typed request.
    //    (The engine keeps a shared time table — later requests for the
    //    same SOC, including whole sweeps, reuse it.)
    let engine = Engine::new(&soc);
    let config = OptimizerConfig::new(cell);
    let solution = engine
        .run(&OptimizeRequest::new(config))?
        .into_solution()
        .expect("a plain request answers with a solution");

    // 4. Inspect the result: channel groups, E-RPCT size, sites, throughput.
    println!(
        "\n{}",
        soctest::multisite::report::format_throughput_curve(&solution)
    );
    println!("Step 1 architecture (channel-minimal):");
    for group in &solution.step1_architecture.groups {
        println!("  {group}");
    }
    let erpct = ErpctWrapper::new(
        solution.optimal.channels_per_site,
        solution.optimal.tam_width,
        ErpctConfig::default(),
    )?;
    println!("\nChip-level wrapper: {erpct}");
    println!(
        "Optimal multi-site: test {} SOCs in parallel for {:.0} devices/hour.",
        solution.optimal.sites, solution.optimal.devices_per_hour
    );
    Ok(())
}
