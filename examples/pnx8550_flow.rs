//! End-to-end reproduction of the paper's PNX8550 scenario: design the test
//! infrastructure on the 512-channel / 7 M-vector ATE, compare the cases
//! with and without stimulus broadcast, and validate the predicted
//! throughput with the Monte-Carlo wafer-flow simulator.
//!
//! The two variants are one table-sharing batch on a single engine session.
//!
//! Run with: `cargo run --release --example pnx8550_flow`

use soctest::prelude::*;
use soctest::soc_model::synthetic::pnx8550_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The PNX8550 stand-in: 62 logic cores plus 212 embedded memories.
    let soc = pnx8550_like();
    println!("SOC: {} — {}", soc.name(), soc.stats());

    // The paper's wafer-test cell: 512 channels, 7 M vectors, 5 MHz.
    let base_config = OptimizerConfig::paper_section7();
    println!("{}", base_config.test_cell.ate);

    let cases = [
        ("without stimulus broadcast", MultiSiteOptions::baseline()),
        (
            "with stimulus broadcast",
            MultiSiteOptions::baseline().with_broadcast(),
        ),
    ];
    // One engine session; both variants share the time table (its entries
    // depend only on the SOC, not on the optimization options).
    let engine = Engine::new(&soc);
    let batch: Vec<OptimizeRequest> = cases
        .iter()
        .map(|(_, options)| OptimizeRequest::new(base_config.with_options(*options)))
        .collect();
    let responses = engine.run_batch(&batch);

    for ((label, options), response) in cases.iter().zip(responses) {
        let config = base_config.with_options(*options);
        let solution = response?
            .into_solution()
            .expect("a plain request answers with a solution");
        println!(
            "\n[{label}] n_max = {}, n_opt = {}, k = {} channels/site, t_m = {:.3} s, D_th = {:.0}/h",
            solution.max_sites,
            solution.optimal.sites,
            solution.optimal.channels_per_site,
            solution.optimal.manufacturing_test_time_s,
            solution.optimal.devices_per_hour
        );

        // Cross-check the analytic throughput with a die-by-die simulation
        // of one full wafer's worth of dies.
        let wafer = soctest::ate::WaferMap::monster_chip_300mm();
        let flow = FlowParams::from_solution(&solution, &config);
        let outcome = simulate_flow(&flow, wafer.gross_dies(), 8550);
        println!(
            "  Monte-Carlo check on a {} die wafer: {:.0} devices/hour measured ({} touchdowns).",
            outcome.unique_devices, outcome.devices_per_hour, outcome.touchdowns
        );
    }
    Ok(())
}
