//! ATE purchasing trade-off study: how does wafer-test throughput respond
//! to more channels versus deeper vector memory, and which upgrade is more
//! cost-effective for a given budget?
//!
//! Both sweeps are submitted to one engine session as a single
//! heterogeneous batch, so they share the SOC's time table.
//!
//! Run with: `cargo run --release --example ate_tradeoff`

use soctest::prelude::*;
use soctest::soc_model::synthetic::pnx8550_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = pnx8550_like();
    let config = OptimizerConfig::paper_section7();
    let engine = Engine::builder(&soc).max_channels(1024).build();

    let channels: Vec<usize> = (0..=4).map(|i| 512 + 128 * i).collect();
    let depths: Vec<u64> = [5u64, 7, 10, 14].iter().map(|m| m * 1024 * 1024).collect();
    let batch = [
        OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(channels)),
        OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(depths)),
    ];
    let mut responses = engine.run_batch(&batch).into_iter();
    let channel_curves = responses.next().unwrap()?.into_curves().unwrap();
    let depth_curves = responses.next().unwrap()?.into_curves().unwrap();

    println!("Throughput vs. ATE channels (7 M vectors/channel):");
    for point in &channel_curves[0].points {
        println!(
            "  {:>5} channels -> {:>8.0} devices/hour (n_opt = {})",
            point.parameter, point.optimal.devices_per_hour, point.optimal.sites
        );
    }

    println!("\nThroughput vs. vector memory depth (512 channels):");
    for point in &depth_curves[0].points {
        println!(
            "  {:>9} vectors -> {:>8.0} devices/hour (n_opt = {})",
            point.parameter, point.optimal.devices_per_hour, point.optimal.sites
        );
    }

    let result = engine.cost_effectiveness(&config, &AteCostModel::paper_prices())?;
    println!(
        "\nSpending ${:.0}: memory doubling {:+.1}% vs {} extra channels {:+.1}% — {} wins.",
        result.memory_upgrade_cost_usd,
        100.0 * result.memory_gain(),
        result.equivalent_extra_channels,
        100.0 * result.channel_gain(),
        if result.memory_wins() {
            "memory"
        } else {
            "channels"
        }
    );
    Ok(())
}
