//! Architecture exploration on the ITC'02 benchmark SOCs: for each embedded
//! benchmark, design the channel-minimal architecture at a Table-1 memory
//! depth, compare it against the rectangle bin-packing baseline and the
//! theoretical lower bound, and print the resulting test schedule.
//!
//! Run with: `cargo run --release --example itc02_architecture`

use soctest::prelude::*;
use soctest::soc_model::benchmarks;
use soctest::tam::baseline::{lower_bound_channels, pack_with_table};
use soctest::tam::max_tam_width;
use soctest::tam::step1::design_with_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: [(&str, usize, u64); 4] = [
        ("d695", 256, 64 * 1024),
        ("p22810", 512, 512 * 1024),
        ("p34392", 512, 1_256_000),
        ("p93791", 512, 2_000_000),
    ];

    for (name, channels, depth) in cases {
        let soc = benchmarks::by_name(name)?;
        let table = TimeTable::build(&soc, max_tam_width(channels));
        let ours = design_with_table(&table, channels, depth)?;
        let baseline = pack_with_table(&table, channels, depth)?;
        let lb = lower_bound_channels(&table, depth).expect("feasible depth");

        println!("=== {name} (depth {depth} vectors, {channels}-channel ATE) ===");
        println!(
            "  lower bound k = {lb}, baseline [7] k = {}, ours k = {}",
            baseline.architecture.total_channels(),
            ours.total_channels()
        );
        println!(
            "  maximum multi-site (with broadcast): baseline {}, ours {}",
            baseline.architecture.max_sites_with_broadcast(channels),
            ours.max_sites_with_broadcast(channels)
        );

        let schedule = TestSchedule::from_architecture(&ours, &table);
        assert!(schedule.is_consistent());
        println!(
            "  schedule: {} module tests over {} channel groups, makespan {} cycles",
            schedule.entries.len(),
            ours.groups.len(),
            schedule.makespan()
        );
        for group in &ours.groups {
            println!("    {group}");
        }
        println!();
    }
    Ok(())
}
