//! Minimal vendored `criterion` for the offline build environment.
//!
//! Provides the macro / type surface the workspace's `benches/` use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` — backed by a plain wall-clock harness: each benchmark
//! is warmed up once and then timed for a bounded number of iterations
//! within a time budget, reporting the mean iteration time. No statistics,
//! plots or baselines; results print to stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Maximum measured iterations per benchmark.
const MAX_ITERS: u64 = 25;
/// Time budget per benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(700);

/// Prevents the optimiser from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Times a single benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the vendored harness bounds work by
    /// `MAX_ITERS` and `TIME_BUDGET` instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Times a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), f);
        self
    }

    /// Times a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to every benchmark closure; runs the timed body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up run.
        black_box(body());
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            black_box(body());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<50} (no iterations)");
        return;
    }
    let mean = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
    println!(
        "bench {label:<50} {:>12.3?} /iter  ({} iters)",
        mean, bencher.iters
    );
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut counter = 0u64;
        let mut criterion = Criterion::default();
        criterion.bench_function("counter", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42), &3u64, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("d695").label, "d695");
    }
}
