//! Derive macros for the vendored minimal `serde`.
//!
//! The build environment is fully offline, so this crate hand-rolls the
//! small subset of `#[derive(Serialize, Deserialize)]` the workspace needs,
//! without `syn`/`quote`. Supported input shapes:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialise transparently, larger
//!   tuples as arrays),
//! * enums whose variants are all unit variants (serialised as strings).
//!
//! Generics, data-carrying enum variants and `#[serde(...)]` attributes are
//! not supported and fail with a compile-time panic naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with the given number of fields.
    Tuple(usize),
    /// Enum with only unit variants.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = match &input.shape {
        Shape::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pushes.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),",
                        name = input.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = input.name
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(value, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!("::serde::Deserialize::from_value(::serde::get_index(items, {i}, \"{name}\")?)?")
                })
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "match value.as_str() {{ {} _ => ::std::result::Result::Err(\
                 ::serde::Error::custom(\"unknown variant for {name}\")) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut iter);

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected a type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic type `{name}` is not supported");
        }
    }

    let shape = match (keyword.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_arity(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
        }
        (kw, tok) => panic!("serde derive: unsupported item `{kw}` shape for {name}: {tok:?}"),
    };
    Input { name, shape }
}

fn skip_attributes_and_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut iter);
        let field = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after `{field}`, got {other:?}"),
        }
        skip_type_until_comma(&mut iter);
        fields.push(field);
    }
    fields
}

/// Consumes a type (tracking `<`/`>` nesting) up to and including the next
/// top-level comma.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    for token in iter.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type_until_comma(&mut iter);
        arity += 1;
    }
    arity
}

fn parse_unit_variants(stream: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut iter);
        let variant = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected variant name in {name}, got {other:?}"),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                skip_type_until_comma(&mut iter);
                variants.push(variant);
            }
            other => panic!(
                "serde derive: enum {name} has a non-unit variant `{variant}` \
                 ({other:?}), which the vendored derive does not support"
            ),
        }
    }
    variants
}
