//! Minimal vendored `crossbeam` for the offline build environment.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63), with crossbeam's
//! `Result`-returning panic handling.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to the [`scope`] closure and to every spawned
    /// thread's closure.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or panic
        /// payload.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        #[allow(clippy::missing_errors_doc)]
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload when any unjoined spawned
    /// thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_the_environment() {
        let counter = AtomicUsize::new(0);
        let result = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawned_closure_can_use_the_scope() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_returns_thread_result() {
        let value = super::thread::scope(|scope| {
            let handle = scope.spawn(|_| 21 * 2);
            handle.join().expect("no panic")
        })
        .unwrap();
        assert_eq!(value, 42);
    }
}
