//! Minimal vendored `rand_chacha` for the offline build environment.
//!
//! [`ChaCha8Rng`] is a deterministic stand-in that satisfies the vendored
//! `rand` traits. It does **not** produce the reference ChaCha8 stream —
//! it reuses the same xoshiro256++ engine as `rand::rngs::StdRng` with a
//! domain-separated seed — which is fine for every consumer in this
//! workspace: they require reproducibility per seed, not a specific
//! keystream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic stand-in for the ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Domain-separate from StdRng so equal seeds give distinct streams.
        let mut sm = seed ^ 0xc8ac_8ac8_ac8a_c8a0;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        ChaCha8Rng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let state = &mut self.state;
        let result = state[0]
            .wrapping_add(state[3])
            .rotate_left(23)
            .wrapping_add(state[0]);
        let t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = state[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0x8550);
        let mut b = ChaCha8Rng::seed_from_u64(0x8550);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn distinct_from_std_rng_stream() {
        use rand::rngs::StdRng;
        let mut chacha = ChaCha8Rng::seed_from_u64(42);
        let mut std_rng = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..4).map(|_| chacha.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| std_rng.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn works_with_rng_helpers() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
        }
    }
}
