//! Minimal vendored `serde` for the offline build environment.
//!
//! The real serde is not available (no network, no crates cache), so this
//! crate provides the subset the workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over an owned [`Value`] tree,
//! plus `#[derive(Serialize, Deserialize)]` re-exported from the sibling
//! `serde_derive` crate. `serde_json` (also vendored) renders [`Value`]
//! trees to JSON text and back.
//!
//! The trait signatures are intentionally simpler than real serde's
//! visitor-based design; swapping in the real crates only requires the
//! manifests to point at crates.io again, since all workspace code goes
//! through `derive` + `serde_json::{to_string, to_string_pretty, from_str}`.

#![forbid(unsafe_code)]

// Lets the `::serde::...` paths emitted by the derive macros resolve inside
// this crate's own tests.
extern crate self as serde;

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data value (the vendored serde data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative numbers land here).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The items of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(name, _)| name == field)
            .map(|(_, value)| value)
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Helper used by the derive macro: extracts and deserialises one field of
/// an object value.
///
/// # Errors
///
/// Fails when `value` is not an object, the field is missing, or the field
/// value does not deserialise.
pub fn get_field<T: Deserialize>(value: &Value, field: &str, type_name: &str) -> Result<T, Error> {
    let object = value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object for {type_name}")))?;
    let field_value = object
        .iter()
        .find(|(name, _)| name == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{field}` for {type_name}")))?;
    T::from_value(field_value)
}

/// Helper used by the derive macro: indexes into an array value.
///
/// # Errors
///
/// Fails when the index is out of bounds.
pub fn get_index<'a>(
    items: &'a [Value],
    index: usize,
    type_name: &str,
) -> Result<&'a Value, Error> {
    items
        .get(index)
        .ok_or_else(|| Error::custom(format!("missing tuple field {index} for {type_name}")))
}

// --- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error::custom("integer out of i64 range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($ty))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $ty),
                    Value::U64(x) => Ok(*x as $ty),
                    Value::I64(x) => Ok(*x as $ty),
                    _ => Err(Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                Ok(($($name::from_value(
                    get_index(items, $idx, "tuple")?
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        count: u64,
        label: String,
        ratio: f64,
        tags: Vec<u32>,
        note: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(usize);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn named_struct_round_trips() {
        let original = Named {
            count: 7,
            label: "x".into(),
            ratio: 1.5,
            tags: vec![1, 2],
            note: None,
        };
        let value = original.to_value();
        assert_eq!(value.get("count"), Some(&Value::U64(7)));
        assert_eq!(Named::from_value(&value).unwrap(), original);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Newtype(3).to_value(), Value::U64(3));
        assert_eq!(Newtype::from_value(&Value::U64(3)).unwrap(), Newtype(3));
    }

    #[test]
    fn unit_enum_uses_variant_names() {
        assert_eq!(Kind::Beta.to_value(), Value::String("Beta".into()));
        assert_eq!(
            Kind::from_value(&Value::String("Alpha".into())).unwrap(),
            Kind::Alpha
        );
        assert!(Kind::from_value(&Value::String("Gamma".into())).is_err());
    }

    #[test]
    fn missing_field_is_reported() {
        let err = Named::from_value(&Value::Object(vec![])).unwrap_err();
        assert!(err.to_string().contains("count"));
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(5u64).to_value(), Value::U64(5));
    }
}
