//! Minimal vendored `serde_json` for the offline build environment.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text (compact and
//! pretty) and parses JSON text back. Covers the subset of JSON the
//! workspace emits: objects, arrays, strings, booleans, null, integers and
//! finite floats. Float formatting uses Rust's shortest-round-trip `{}`
//! display, so `to_string` → `from_str` round trips are exact.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialisation/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Serialises `value` to compact JSON.
///
/// # Errors
///
/// Fails when the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises `value` to pretty (2-space indented) JSON.
///
/// # Errors
///
/// Fails when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserialisable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// --- writer ---------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialise non-finite float"));
            }
            let text = x.to_string();
            // Keep integral floats float-typed across a round trip.
            if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
                out.push_str(&text);
                out.push_str(".0");
            } else {
                out.push_str(&text);
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                write_newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (name, field_value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, level + 1);
                write_string(out, name);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, field_value, indent, level + 1)?;
            }
            if !fields.is_empty() {
                write_newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, expected: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != expected {
            return Err(Error::new(format!(
                "expected `{}`, found `{}` at offset {}",
                expected as char, got as char, self.pos
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let name = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((name, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected a value at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::new(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_trips() {
        let value = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::F64(1.5)),
            ("c".into(), Value::String("x \"y\"".into())),
            (
                "d".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Object(vec![("key".into(), Value::U64(1))]);
        let text = to_string_pretty(&value).unwrap();
        assert_eq!(text, "{\n  \"key\": 1\n}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 123456.789e-3, -2.5e10_f64] {
            let text = to_string(&Value::F64(x)).unwrap();
            match from_str::<Value>(&text).unwrap() {
                Value::F64(back) => assert_eq!(back, x),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn negative_integers_parse_signed() {
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::I64(-42));
        assert_eq!(from_str::<i32>("-42").unwrap(), -42);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn nan_is_rejected() {
        assert!(to_string(&Value::F64(f64::NAN)).is_err());
    }
}
