//! Minimal vendored `rand` for the offline build environment.
//!
//! Provides the subset of the rand 0.8 API the workspace uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`distributions::Uniform`]. The engine is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for Monte-Carlo work and fully
//! deterministic per seed, but **not** the same stream as the real crates;
//! all consumers in this workspace only rely on determinism, not on a
//! specific stream.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen_f64() < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (low, high, inclusive) = range.bounds();
        T::sample_uniform(self, low, high, inclusive)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`[low, high]` when
    /// `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Decomposes into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        let (start, end) = self.into_inner();
        (start, end, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(low <= high, "empty range");
                    (high as u128) - (low as u128) + 1
                } else {
                    assert!(low < high, "empty range");
                    (high as u128) - (low as u128)
                };
                // Modulo reduction over 128 random bits: bias below 2^-64.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                low + (wide % span) as $ty
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    assert!(low <= high, "empty range");
                    (high as i128) - (low as i128) + 1
                } else {
                    assert!(low < high, "empty range");
                    (high as i128) - (low as i128)
                } as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                ((low as i128) + (wide % span) as i128) as $ty
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "empty range");
                let unit = ((rng.next_u64() >> 11) as f64
                    * (1.0 / (1u64 << 53) as f64)) as $ty;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Random number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(crate) fn seed_state(seed: u64) -> [u64; 4] {
        let mut sm = seed;
        [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ]
    }

    pub(crate) fn xoshiro_next(state: &mut [u64; 4]) -> u64 {
        let result = state[0]
            .wrapping_add(state[3])
            .rotate_left(23)
            .wrapping_add(state[0]);
        let t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = state[3].rotate_left(45);
        result
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed_state(seed),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            xoshiro_next(&mut self.state)
        }
    }
}

/// Probability distributions.
pub mod distributions {
    use super::{Rng, RngCore, SampleUniform};

    /// Types that produce samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over a fixed range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                rng.gen_range(self.low..=self.high)
            } else {
                rng.gen_range(self.low..self.high)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = Uniform::new_inclusive(5u32, 9);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((5..=9).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_bool(1.5);
    }
}
