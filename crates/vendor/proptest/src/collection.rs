//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specifications accepted by [`vec()`].
pub trait SizeRange {
    /// Inclusive bounds of the allowed lengths.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max - self.min + 1;
        let len = self.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    /// Structural shrinking first — remove chunks of elements, largest
    /// chunks first, never dropping below the strategy's minimum length —
    /// then element-wise shrinking through the element strategy. Ordered
    /// simplest-first, so the runner's first-failing-candidate walk
    /// converges to a minimal vector (fewest elements, then smallest
    /// elements).
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let len = value.len();
        let mut candidates = Vec::new();

        // Chunk removals: len - min elements at once (straight to the
        // shortest allowed vector), then halving chunk sizes sliding over
        // every position.
        let mut chunk = len.saturating_sub(self.min);
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= len {
                let mut shorter = Vec::with_capacity(len - chunk);
                shorter.extend_from_slice(&value[..start]);
                shorter.extend_from_slice(&value[start + chunk..]);
                candidates.push(shorter);
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Element simplifications (a few per position; the runner loops,
        // so depth comes from re-shrinking, not candidate volume).
        for index in 0..len {
            for candidate in self.element.shrink(&value[index]).into_iter().take(4) {
                let mut copy = value.clone();
                copy[index] = candidate;
                candidates.push(copy);
            }
        }
        candidates
    }
}
