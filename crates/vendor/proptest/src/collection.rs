//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specifications accepted by [`vec()`].
pub trait SizeRange {
    /// Inclusive bounds of the allowed lengths.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max - self.min + 1;
        let len = self.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
