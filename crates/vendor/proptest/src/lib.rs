//! Minimal vendored `proptest` for the offline build environment.
//!
//! Implements the subset of the proptest 1.x surface the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and [`strategy::Just`] strategies,
//! [`collection::vec`], and the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic RNG seeded per test name (reproducible across runs and
//! machines). Failing cases **are shrunk**: integers binary-search toward
//! zero, vectors drop chunks of elements (then shrink the survivors), and
//! tuples shrink component-wise — the reported counterexample is a local
//! minimum, re-verified to still fail (see
//! [`test_runner::shrink_failure`] and [`strategy::Strategy::shrink`]).
//! Generated values must be `Clone` (the runner re-executes the body per
//! shrink candidate) and `Debug` (the minimal case is printed); every
//! strategy used in this workspace satisfies both.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                // All argument strategies as one tuple strategy, so the
                // shrinker can simplify any argument of a failing case
                // while holding the others fixed. Generation draws from
                // the RNG in argument order, exactly like the former
                // per-argument calls — existing case streams are stable.
                let __strategy = ($(($strat),)*);
                let __run = $crate::test_runner::bind_runner(&__strategy, |__input| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__input);
                    $body
                    ::std::result::Result::Ok(())
                });
                for __case in 0..__config.cases {
                    let __input =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    if let ::std::result::Result::Err(__error) = __run(&__input) {
                        let (__minimal, __error, __steps) =
                            $crate::test_runner::shrink_failure(
                                &__strategy,
                                __input,
                                __error,
                                __config.max_shrink_iters,
                                &__run,
                            );
                        let ($($arg,)*) = &__minimal;
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}: {}\n\
                             minimal failing input ({} shrink steps): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __error,
                            __steps,
                            ::std::format!(
                                ::std::concat!($(stringify!($arg), " = {:?}  "),*),
                                $($arg),*
                            )
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy-returning function from component strategies:
/// `prop_compose! { fn arb(params)(bindings in strategies) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($pname:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($pname: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                },
            )
        }
    };
}

/// Picks uniformly between the given strategies (all of the same `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right,
                            ::std::format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair(offset: u64)(
            a in 1u64..100,
            b in 0u64..10,
        ) -> (u64, u64) {
            (a + offset, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0usize..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn composed_strategies_apply_parameters(pair in arb_pair(1000)) {
            prop_assert!(pair.0 >= 1001);
            prop_assert_eq!(pair.0 - pair.0, 0);
        }

        #[test]
        fn vec_strategy_respects_size(items in crate::collection::vec(1u32..5, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn oneof_picks_only_given_values(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn flat_map_chains_strategies(v in (1usize..4).prop_flat_map(|n| {
            let strategies: Vec<_> = (0..n).map(|_| 0u8..10).collect();
            strategies.prop_map(|xs| xs)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strategy = crate::collection::vec(0u64..1_000_000, 5..6);
        let mut rng_a = crate::test_runner::TestRng::for_test("same");
        let mut rng_b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(strategy.generate(&mut rng_a), strategy.generate(&mut rng_b));
    }

    // A #[test] nested inside another function cannot be collected by the
    // harness, so the generated runner is declared at module scope with a
    // non-test marker attribute and invoked explicitly below.
    proptest! {
        #[allow(dead_code)]
        fn always_fails(x in 0u8..10) {
            prop_assert!(x > 200, "x was {}", x);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(always_fails);
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("always_fails"), "message: {message}");
        // The shrinker drove x to the minimal failing value (every x
        // fails here, so the minimum of the range: 0).
        assert!(message.contains("x = 0"), "message: {message}");
    }

    // ---- shrinking --------------------------------------------------------

    mod shrinking {
        use crate::strategy::Strategy;
        use crate::test_runner::{shrink_failure, TestCaseError};

        /// Runs the shrinker against predicate `fails` from `initial`.
        fn minimise<S, V>(strategy: &S, initial: V, fails: impl Fn(&V) -> bool) -> V
        where
            S: Strategy<Value = V>,
        {
            assert!(fails(&initial), "initial value must fail");
            let run = |value: &V| {
                if fails(value) {
                    Err(TestCaseError::fail("still failing"))
                } else {
                    Ok(())
                }
            };
            let (minimal, _, _) =
                shrink_failure(strategy, initial, TestCaseError::fail("seed"), 1024, run);
            minimal
        }

        #[test]
        fn integer_candidates_walk_from_zero_back_to_the_value() {
            // Simplest first: the target (0), then midpoints approaching
            // the failing value — a binary search when adopted greedily.
            assert_eq!((0u64..101).shrink(&100), vec![0, 50, 75, 88, 94, 97, 99]);
            assert_eq!((0u64..101).shrink(&0), Vec::<u64>::new());
            // A range excluding zero targets its own minimum.
            assert_eq!((10u64..100).shrink(&11), vec![10]);
            // Signed values shrink toward zero from either side.
            assert_eq!((-100i64..100).shrink(&-8), vec![0, -4, -6, -7]);
            // Inclusive ranges may shrink onto their upper endpoint.
            assert_eq!((5u64..=9).shrink(&5), Vec::<u64>::new());
        }

        #[test]
        fn integer_shrink_finds_the_exact_boundary() {
            // Property "value < 37" — minimal counterexample is 37, which
            // no linear-candidate scheme finds from 999_983 in 1024 steps.
            let strategy = 0u64..1_000_000;
            let minimal = minimise(&strategy, 999_983, |&v| v >= 37);
            assert_eq!(minimal, 37);
        }

        #[test]
        fn vec_shrink_removes_elements_and_simplifies_the_rest() {
            // Property "sum >= 10": minimal counterexample is one element
            // of exactly 10.
            let strategy = crate::collection::vec(0u64..100, 0..10);
            let minimal = minimise(&strategy, vec![50, 3, 20, 7], |v: &Vec<u64>| {
                v.iter().sum::<u64>() >= 10
            });
            assert_eq!(minimal, vec![10]);
        }

        #[test]
        fn vec_shrink_respects_the_minimum_length() {
            let strategy = crate::collection::vec(0u64..100, 3..10);
            let minimal = minimise(&strategy, vec![9, 9, 9, 9, 9], |_| true);
            assert_eq!(minimal.len(), 3, "shrank below the size range");
            assert_eq!(minimal, vec![0, 0, 0]);
        }

        #[test]
        fn tuple_shrink_simplifies_each_component_independently() {
            // Fails iff a >= 3 AND b >= 7: both coordinates must stay
            // above their own boundary, so the minimum is exactly (3, 7).
            let strategy = (0u64..100, 0u64..100);
            let minimal = minimise(&strategy, (40, 77), |&(a, b)| a >= 3 && b >= 7);
            assert_eq!(minimal, (3, 7));
        }

        #[test]
        fn shrink_budget_bounds_the_work() {
            let strategy = 0u64..u64::MAX;
            let run = |value: &u64| -> Result<(), TestCaseError> {
                if *value >= 37 {
                    Err(TestCaseError::fail("still failing"))
                } else {
                    Ok(())
                }
            };
            // Zero budget: the original failing input is reported untouched.
            let (minimal, _, steps) =
                shrink_failure(&strategy, 1 << 40, TestCaseError::fail("seed"), 0, run);
            assert_eq!((minimal, steps), (1 << 40, 0));
            // A tiny budget makes partial progress, then stops: candidate 0
            // passes (spending 1), the midpoint fails and is adopted
            // (spending 2), and the exhausted budget ends the walk there.
            let (minimal, _, steps) =
                shrink_failure(&strategy, 1 << 40, TestCaseError::fail("seed"), 2, run);
            assert_eq!(steps, 1);
            assert_eq!(minimal, 1 << 39);
        }

        #[test]
        fn float_shrink_moves_toward_the_range_start() {
            let strategy = 0.0f64..1.0;
            let candidates = strategy.shrink(&0.5);
            assert_eq!(candidates[0], 0.0);
            assert!(candidates[1] > 0.0 && candidates[1] < 0.5);
            let minimal = minimise(&strategy, 0.9, |&v| v >= 0.25);
            assert!((0.25..0.26).contains(&minimal), "minimal = {minimal}");
        }
    }

    // The failing property below exercises shrinking end to end through
    // the `proptest!` macro: the generated case is large, the reported
    // minimal case must be the boundary value 5.
    proptest! {
        #[allow(dead_code)]
        fn fails_above_four(x in 0u64..1_000_000) {
            prop_assert!(x <= 4, "x was {}", x);
        }
    }

    #[test]
    fn macro_reports_the_shrunk_minimal_case() {
        let result = std::panic::catch_unwind(fails_above_four);
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("x = 5"),
            "expected the minimal failing input x = 5 in: {message}"
        );
        assert!(message.contains("shrink steps"), "message: {message}");
    }
}
