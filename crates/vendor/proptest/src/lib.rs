//! Minimal vendored `proptest` for the offline build environment.
//!
//! Implements the subset of the proptest 1.x surface the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and [`strategy::Just`] strategies,
//! [`collection::vec`], and the `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic RNG seeded per test name (reproducible across runs and
//! machines), and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The most commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block is run for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __result {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy-returning function from component strategies:
/// `prop_compose! { fn arb(params)(bindings in strategies) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($pname:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($pname: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                },
            )
        }
    };
}

/// Picks uniformly between the given strategies (all of the same `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left),
                            stringify!($right),
                            __left,
                            __right,
                            ::std::format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __left
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair(offset: u64)(
            a in 1u64..100,
            b in 0u64..10,
        ) -> (u64, u64) {
            (a + offset, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0usize..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn composed_strategies_apply_parameters(pair in arb_pair(1000)) {
            prop_assert!(pair.0 >= 1001);
            prop_assert_eq!(pair.0 - pair.0, 0);
        }

        #[test]
        fn vec_strategy_respects_size(items in crate::collection::vec(1u32..5, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn oneof_picks_only_given_values(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn flat_map_chains_strategies(v in (1usize..4).prop_flat_map(|n| {
            let strategies: Vec<_> = (0..n).map(|_| 0u8..10).collect();
            strategies.prop_map(|xs| xs)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strategy = crate::collection::vec(0u64..1_000_000, 5..6);
        let mut rng_a = crate::test_runner::TestRng::for_test("same");
        let mut rng_b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(strategy.generate(&mut rng_a), strategy.generate(&mut rng_b));
    }

    // A #[test] nested inside another function cannot be collected by the
    // harness, so the generated runner is declared at module scope with a
    // non-test marker attribute and invoked explicitly below.
    proptest! {
        #[allow(dead_code)]
        fn always_fails(x in 0u8..10) {
            prop_assert!(x > 200, "x was {}", x);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(always_fails);
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("always_fails"), "message: {message}");
    }
}
