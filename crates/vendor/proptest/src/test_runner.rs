//! Test configuration, case errors, the deterministic generation RNG and
//! the shrinking driver.

use crate::strategy::Strategy;
use std::fmt;

/// Configuration of one `proptest!` test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upper bound on candidate re-executions while shrinking a failing
    /// case (the equivalent of real proptest's `max_shrink_iters`).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Ties a test-body closure's argument type to `strategy`'s value type so
/// the `proptest!` macro can define the closure before the first
/// generated input exists (plain closure inference cannot see across the
/// macro's generation loop). Identity on `run`.
pub fn bind_runner<S, F>(strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let _ = strategy;
    run
}

/// Shrinks a failing input to a (locally) minimal one: repeatedly asks the
/// strategy for simpler candidates ([`Strategy::shrink`], simplest first),
/// adopts the first candidate that **still fails**, and restarts from it;
/// stops at a fixed point (no candidate fails) or when `max_iters`
/// candidate executions are spent.
///
/// Returns the minimal failing input, the error it produced, and the
/// number of adopted shrink steps.
pub fn shrink_failure<S, F>(
    strategy: &S,
    initial: S::Value,
    initial_error: TestCaseError,
    max_iters: u32,
    run: F,
) -> (S::Value, TestCaseError, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut current = initial;
    let mut error = initial_error;
    let mut steps = 0usize;
    let mut budget = max_iters;
    'outer: while budget > 0 {
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(candidate_error) = run(&candidate) {
                current = candidate;
                error = candidate_error;
                steps += 1;
                // Restart: ask the strategy to simplify the new, smaller
                // failure (binary descent).
                continue 'outer;
            }
        }
        // Fixed point: every simpler candidate passes.
        break;
    }
    (current, error, steps)
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving value generation (SplitMix64).
///
/// Seeded from the test name so every test sees a stable but distinct
/// stream, reproducible across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed workspace seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ 0x5053_4f43_5445_5354, // "SOCTEST" tag
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}
