//! Test configuration, case errors and the deterministic generation RNG.

use std::fmt;

/// Configuration of one `proptest!` test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving value generation (SplitMix64).
///
/// Seeded from the test name so every test sees a stable but distinct
/// stream, reproducible across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed workspace seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ 0x5053_4f43_5445_5354, // "SOCTEST" tag
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..bound` (`bound` must be positive).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}
