//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate *simpler* values derived from a failing `value`, ordered
    /// simplest first. The runner re-tests candidates in order and
    /// restarts from the first one that still fails, so a
    /// binary-search-toward-zero candidate list converges like a binary
    /// search (see [`crate::test_runner::shrink_failure`]).
    ///
    /// The default is no shrinking (combinators like `prop_map` cannot
    /// invert their closure); integer/float ranges, tuples and the
    /// collection strategies override it.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy built from a generation closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> std::fmt::Debug for FnStrategy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStrategy")
    }
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Wraps a generation closure as a [`Strategy`].
pub fn from_fn<T, F>(f: F) -> FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    FnStrategy { f }
}

/// Uniform choice between boxed strategies (see `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<V> OneOf<V> {
    /// Creates a uniform choice over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.arms.len());
        self.arms[index].generate(rng)
    }
}

/// A `Vec` of strategies generates element-wise (matches proptest).
/// Shrinking simplifies one element at a time (the structure — the
/// element count — is fixed by construction).
impl<S: Strategy> Strategy for Vec<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|strategy| strategy.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut candidates = Vec::new();
        for (index, strategy) in self.iter().enumerate() {
            for candidate in strategy.shrink(&value[index]).into_iter().take(4) {
                let mut copy = value.clone();
                copy[index] = candidate;
                candidates.push(copy);
            }
        }
        candidates
    }
}

/// The empty strategy tuple: generates `()` (a `proptest!` block with no
/// arguments) and never shrinks.
impl Strategy for () {
    type Value = ();

    fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            /// Component-wise shrinking: every candidate simplifies one
            /// position and keeps the rest of the failing tuple intact.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut candidates = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = candidate;
                        candidates.push(copy);
                    }
                )+
                candidates
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Shared integer shrink walk: the in-range value closest to zero first
/// (the biggest simplification), then midpoints binary-searching from
/// that target back toward the failing `value`. Adopting the first
/// still-failing candidate and re-shrinking therefore converges to the
/// smallest failing value in O(log |value|) rounds.
fn shrink_integer(value: i128, min: i128, max: i128) -> Vec<i128> {
    let target = 0i128.clamp(min, max);
    if value == target {
        return Vec::new();
    }
    let mut candidates = vec![target];
    let mut delta = value - target;
    loop {
        delta /= 2;
        if delta == 0 {
            break;
        }
        candidates.push(value - delta);
    }
    candidates
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                ((self.start as i128) + (wide % span) as i128) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_integer(*value as i128, self.start as i128, self.end as i128 - 1)
                    .into_iter()
                    .map(|candidate| candidate as $ty)
                    .collect()
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                ((start as i128) + (wide % span) as i128) as $ty
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_integer(*value as i128, *self.start() as i128, *self.end() as i128)
                    .into_iter()
                    .map(|candidate| candidate as $ty)
                    .collect()
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }

            /// Floats shrink toward the range start with the same
            /// halving walk as integers (start first, then midpoints
            /// approaching the failing value). Unlike integers the walk
            /// has no exact fixed point at a failure boundary, so it is
            /// cut off after 32 halvings per round; convergence is then
            /// bounded by the runner's shrink budget.
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                // `matches!` on partial_cmp (not `<=`) so NaN values
                // shrink to nothing instead of to garbage.
                let above_start = matches!(
                    value.partial_cmp(&self.start),
                    Some(::std::cmp::Ordering::Greater)
                );
                if !above_start {
                    return Vec::new();
                }
                let mut candidates = vec![self.start];
                let mut delta = *value - self.start;
                for _ in 0..32 {
                    delta /= 2.0;
                    let candidate = *value - delta;
                    let between = candidate > self.start && candidate < *value;
                    if !between {
                        break;
                    }
                    candidates.push(candidate);
                }
                candidates
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);
