//! The persistent work-stealing pool behind every parallel primitive in
//! this vendored rayon.
//!
//! # Architecture
//!
//! One global `Registry` is created lazily on first use and lives for
//! the rest of the process. It owns `N` worker threads (`N` from
//! `SOCTEST_THREADS`, then `RAYON_NUM_THREADS`, then the available
//! parallelism; `N == 1` means no workers and every primitive runs
//! inline). Each worker has its own deque: the owner pushes and pops at
//! the **back** (LIFO, so recursive splits run cache-hot and
//! depth-first), thieves and the worker's neighbours take from the
//! **front** (FIFO, so the oldest — typically largest — subtree is
//! stolen). Jobs arriving from threads outside the pool land in a shared
//! injector queue that every worker (and every externally blocked caller)
//! drains.
//!
//! The public primitives are:
//!
//! * [`join`] — run two closures, potentially in parallel; the calling
//!   worker pushes the second closure onto its own deque, runs the first,
//!   then reclaims the second (pop-back) or, if it was stolen, **keeps
//!   executing other stolen work** while it waits for the thief. This is
//!   what makes nested parallelism composable: a blocked `join` never
//!   idles a core.
//! * [`scope`] — spawn any number of closures that may borrow from the
//!   caller's stack; the scope does not return until all of them (and
//!   everything they spawned) completed.
//! * [`crate::par_map_init`] — the ordered slice map the workspace uses,
//!   implemented as `scope` + worker-count runner tasks pulling item
//!   indexes from a shared atomic counter. Results are reassembled in
//!   input order, so parallel maps are bit-identical to sequential ones
//!   at any thread count, under any steal schedule.
//!
//! # Determinism
//!
//! Scheduling is non-deterministic; *results* are not. Every primitive
//! either returns results in input order (`par_map_init`) or joins both
//! branches before returning (`join`, `scope`), so no caller can observe
//! the steal order. The scheduler stress tests
//! (`crates/multisite/tests/sweep_determinism.rs` and
//! `engine_equivalence.rs`) assert bit-identical optimizer results across
//! thread counts 1, 2 and N and across repeated runs.
//!
//! # Panics
//!
//! A panic inside a job is caught on the executing worker, carried back,
//! and resumed on the thread that called `join`/`scope`/`par_map_init`
//! with the original payload — workers themselves never unwind.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe`. Jobs
//! borrow the caller's stack but outlive the borrow checker's view of it,
//! so they are passed around as type-erased `JobRef` raw pointers. The
//! invariant that makes every `unsafe` block sound is the same one real
//! rayon relies on:
//!
//! > A primitive that publishes a `JobRef` referring to its own stack
//! > frame (or to a heap job borrowing caller data) **does not return
//! > until that job has completed** — on success *and* on panic.
//!
//! `join` always resolves its stack job before resuming any panic, and
//! `scope` always waits for its pending-counter to reach zero, so no
//! published pointer ever dangles. Each queue hands a popped `JobRef` to
//! exactly one thread, which gives unique execution ownership.

#![allow(unsafe_code)]

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ------------------------------------------------------------------ jobs --

/// A type-erased pointer to a pending job plus the monomorphised function
/// that executes it. The pool's queues only ever hold these.
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a `JobRef` is a unique claim ticket for one pending job. The
// job data it points to is kept alive by the publishing primitive until
// the job completes (see the module-level invariant), and each ticket is
// executed by exactly one thread (whichever pops it), so sending the raw
// pointer across threads is sound.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job.
    ///
    /// # Safety
    ///
    /// Must be called at most once per published `JobRef`, while the
    /// underlying job data is still alive (guaranteed by the module-level
    /// invariant).
    unsafe fn execute(self) {
        (self.execute_fn)(self.pointer);
    }
}

/// A job allocated on the publishing caller's stack (used by [`join`]).
/// The caller blocks until [`StackJob::completed`], so the pointee never
/// outlives the frame it sits in.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// Erases this job into a queueable [`JobRef`].
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and in place until
    /// [`StackJob::completed`] returns `true`.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            pointer: (self as *const Self).cast(),
            execute_fn: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `pointer` must come from [`StackJob::as_job_ref`] on a still-live
    /// job, and this must be the only execution of that job.
    unsafe fn execute_erased(pointer: *const ()) {
        let this = &*pointer.cast::<Self>();
        let func = (*this.func.get()).take().expect("stack job executed twice");
        let result = catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        // Publish the result before raising the flag; `Ordering::SeqCst`
        // pairs with the `completed` load on the waiting thread.
        this.done.store(true, Ordering::SeqCst);
        Registry::global().notify();
    }

    fn completed(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// The job's return value; resumes the job's panic if it panicked.
    /// Only called after [`StackJob::completed`] returned `true`.
    fn into_result(self) -> R {
        match self
            .result
            .into_inner()
            .expect("completed stack job has a result")
        {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// A heap-allocated job (used by [`Scope::spawn`], where the number of
/// jobs is unbounded and the closure must leave the spawning frame).
struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Erases this boxed job into a queueable [`JobRef`], transferring
    /// ownership of the allocation to the eventual executor.
    ///
    /// # Safety
    ///
    /// `F` may borrow non-`'static` data; the publisher (the scope) must
    /// not return until the job ran. The returned `JobRef` must be
    /// executed exactly once or the allocation leaks.
    unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            pointer: Box::into_raw(self).cast_const().cast(),
            execute_fn: Self::execute_erased,
        }
    }

    /// # Safety
    ///
    /// `pointer` must come from [`HeapJob::into_job_ref`] and this must be
    /// its only execution (re-materialising the `Box` frees it afterwards).
    unsafe fn execute_erased(pointer: *const ()) {
        let job = Box::from_raw(pointer.cast::<Self>().cast_mut());
        (job.func)();
    }
}

// -------------------------------------------------------------- registry --

thread_local! {
    /// Worker index on pool threads, `None` on external threads.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_worker_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Thread count configured for the pool: `SOCTEST_THREADS`, then rayon's
/// own `RAYON_NUM_THREADS`, then the machine's available parallelism.
fn configured_threads() -> usize {
    for variable in ["SOCTEST_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(variable) {
            if let Ok(parsed) = value.trim().parse::<usize>() {
                return parsed.max(1);
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Point-in-time occupancy counters of the global pool: how queued jobs
/// reached their executing thread since process start. Snapshot with
/// [`crate::pool_stats`], diff with [`PoolStats::delta_since`] to
/// attribute pool traffic to one request or batch.
///
/// Counters are maintained with relaxed atomics on the pop paths, so a
/// snapshot is cheap enough to take per request; under concurrency a
/// delta attributes *all* pool traffic in the window, not only the
/// caller's own jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PoolStats {
    /// Jobs a worker popped from its own deque (LIFO end) — including
    /// `join` jobs reclaimed un-stolen by their publisher.
    pub jobs_local: u64,
    /// Jobs taken from another worker's deque (FIFO end): actual steals.
    pub jobs_stolen: u64,
    /// Jobs drained from the external injector queue (submitted by
    /// threads outside the pool).
    pub jobs_injected: u64,
    /// Parallel primitives that ran inline on the calling thread instead
    /// of queueing (single-thread pool, sub-[`crate::MIN_PARALLEL_LEN`]
    /// inputs, or a task cap of one).
    pub inline_runs: u64,
}

impl PoolStats {
    /// The counter growth between `earlier` and `self` (saturating, so a
    /// stale or swapped snapshot yields zeros instead of wrapping).
    #[must_use]
    pub fn delta_since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            jobs_local: self.jobs_local.saturating_sub(earlier.jobs_local),
            jobs_stolen: self.jobs_stolen.saturating_sub(earlier.jobs_stolen),
            jobs_injected: self.jobs_injected.saturating_sub(earlier.jobs_injected),
            inline_runs: self.inline_runs.saturating_sub(earlier.inline_runs),
        }
    }

    /// Total jobs that ran through the pool queues in this snapshot
    /// (inline runs excluded — they never touched a queue).
    #[must_use]
    pub fn jobs_queued(&self) -> u64 {
        self.jobs_local + self.jobs_stolen + self.jobs_injected
    }
}

/// The global worker registry: queues, sleep machinery and pool size.
pub(crate) struct Registry {
    /// One stealable deque per worker. The owner pushes/pops at the back,
    /// thieves pop at the front. A `Mutex<VecDeque>` instead of a
    /// lock-free Chase-Lev deque: job granularity here is an optimizer
    /// run or a table row, so queue operations are nowhere near the hot
    /// path, and the mutex keeps the unsafe surface confined to job
    /// lifetime erasure.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Externally submitted jobs, drained FIFO by idle workers and by
    /// externally blocked callers.
    injector: Mutex<VecDeque<JobRef>>,
    /// Bumped on every enqueue and every job completion; the guard that
    /// makes sleeping race-free (see [`Registry::sleep`]).
    events: AtomicU64,
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
    /// Configured pool size (`>= 1`); `1` means "no workers, run inline".
    num_threads: usize,
    /// Occupancy counters (see [`PoolStats`]), bumped on the pop paths.
    jobs_local: AtomicU64,
    jobs_stolen: AtomicU64,
    jobs_injected: AtomicU64,
    inline_runs: AtomicU64,
}

static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

/// Worker stack reservation. Helping while blocked nests executed jobs on
/// the worker's stack, so the bound on pool recursion depth is this
/// reservation, not the 2 MiB thread default.
const WORKER_STACK_BYTES: usize = 64 * 1024 * 1024;

impl Registry {
    /// The lazily-created global registry. The first call spawns the
    /// worker threads; they park when idle and live until process exit.
    pub(crate) fn global() -> &'static Arc<Registry> {
        REGISTRY.get_or_init(|| {
            let num_threads = configured_threads();
            let num_workers = if num_threads <= 1 { 0 } else { num_threads };
            let registry = Arc::new(Registry {
                deques: (0..num_workers)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                injector: Mutex::new(VecDeque::new()),
                events: AtomicU64::new(0),
                sleep_lock: Mutex::new(()),
                sleep_cond: Condvar::new(),
                num_threads,
                jobs_local: AtomicU64::new(0),
                jobs_stolen: AtomicU64::new(0),
                jobs_injected: AtomicU64::new(0),
                inline_runs: AtomicU64::new(0),
            });
            for index in 0..num_workers {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("soctest-rayon-{index}"))
                    // Steal-while-blocked stacks helped jobs on the
                    // waiting worker's own stack (as in real rayon), so
                    // deep fork-join recursion needs headroom. The pages
                    // are committed lazily — a large reservation costs
                    // address space, not memory.
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn(move || worker_main(&registry, index))
                    .expect("spawn pool worker thread");
            }
            registry
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Current occupancy counters (relaxed loads; see [`PoolStats`]).
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            jobs_local: self.jobs_local.load(Ordering::Relaxed),
            jobs_stolen: self.jobs_stolen.load(Ordering::Relaxed),
            jobs_injected: self.jobs_injected.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
        }
    }

    /// Counts one parallel primitive that ran inline instead of queueing.
    pub(crate) fn note_inline_run(&self) {
        self.inline_runs.fetch_add(1, Ordering::Relaxed);
    }

    fn num_workers(&self) -> usize {
        self.deques.len()
    }

    fn lock_deque(&self, index: usize) -> std::sync::MutexGuard<'_, VecDeque<JobRef>> {
        self.deques[index].lock().expect("pool deque poisoned")
    }

    /// Queues a job from the current thread: onto the calling worker's own
    /// deque (LIFO end) when on a pool thread, into the injector otherwise.
    fn push_from_current(&self, job: JobRef) {
        match current_worker_index() {
            Some(index) => self.lock_deque(index).push_back(job),
            None => self
                .injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(job),
        }
        self.notify();
    }

    /// Pops the back of the calling worker's own deque if (and only if)
    /// it is the job published as `pointer` — the "was my join job
    /// stolen?" check. Returns `None` on external threads.
    fn pop_if_back(&self, pointer: *const ()) -> Option<JobRef> {
        let index = current_worker_index()?;
        let mut deque = self.lock_deque(index);
        if deque.back().is_some_and(|job| job.pointer == pointer) {
            let job = deque.pop_back();
            drop(deque);
            self.jobs_local.fetch_add(1, Ordering::Relaxed);
            job
        } else {
            None
        }
    }

    /// Finds a job for worker `index`: own deque (back), then a round-robin
    /// steal sweep over the other workers (front), then the injector.
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.lock_deque(index).pop_back() {
            self.jobs_local.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        let workers = self.num_workers();
        for offset in 1..workers {
            let victim = (index + offset) % workers;
            if let Some(job) = self.lock_deque(victim).pop_front() {
                self.jobs_stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        self.pop_injected()
    }

    fn pop_injected(&self) -> Option<JobRef> {
        let job = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front();
        if job.is_some() {
            self.jobs_injected.fetch_add(1, Ordering::Relaxed);
        }
        job
    }

    /// Wakes every sleeping thread. Called after each enqueue and each
    /// completion event.
    fn notify(&self) {
        self.events.fetch_add(1, Ordering::SeqCst);
        // Taking the sleep lock orders this notification against any
        // sleeper that re-checked `events` and is about to wait: either it
        // sees the bumped counter, or it is already waiting and receives
        // the wakeup.
        let _guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
        self.sleep_cond.notify_all();
    }

    /// Blocks until [`Registry::notify`], unless an event happened since
    /// the caller captured `seen` (which must be read **before** the
    /// caller last looked for work / probed its latch — that ordering is
    /// what makes the sleep race-free). The timeout is a belt-and-braces
    /// backstop, not a correctness requirement.
    fn sleep(&self, seen: u64) {
        let guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
        if self.events.load(Ordering::SeqCst) != seen {
            return;
        }
        let _ = self
            .sleep_cond
            .wait_timeout(guard, Duration::from_millis(100))
            .expect("pool sleep lock poisoned");
    }

    /// Blocks the current thread until `done()` — **helping** while it
    /// waits: a worker keeps executing its own and stolen jobs, an
    /// external thread drains the injector. This is the "steal while
    /// blocked" half of the work-stealing contract; no thread waiting on
    /// a latch ever idles a core that still has work queued.
    pub(crate) fn wait_until(&self, done: &(dyn Fn() -> bool + '_)) {
        let worker = current_worker_index();
        loop {
            let seen = self.events.load(Ordering::SeqCst);
            if done() {
                return;
            }
            let job = match worker {
                Some(index) => self.find_work(index),
                None => self.pop_injected(),
            };
            match job {
                // SAFETY: popping gave us unique execution ownership and
                // the publisher keeps the job alive until it completes.
                Some(job) => unsafe { job.execute() },
                None => self.sleep(seen),
            }
        }
    }
}

/// A pool worker's main loop: execute, steal, or sleep; forever.
fn worker_main(registry: &Registry, index: usize) {
    WORKER_INDEX.with(|slot| slot.set(Some(index)));
    loop {
        let seen = registry.events.load(Ordering::SeqCst);
        match registry.find_work(index) {
            // SAFETY: as in `wait_until` — pop grants unique execution
            // ownership of a still-live job.
            Some(job) => unsafe { job.execute() },
            None => registry.sleep(seen),
        }
    }
}

// ------------------------------------------------------------------ join --

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// The second closure is published to the pool while the calling thread
/// runs the first; if nobody stole it the caller reclaims and runs it
/// inline (so an idle machine pays only two deque operations), and if it
/// *was* stolen the caller executes other queued work while waiting for
/// the thief. `join` calls nest freely — recursion is how the slice maps
/// split — and run inline when the pool is sized to a single thread.
///
/// # Panics
///
/// Propagates the first panic of either closure (with its original
/// payload) after **both** closures finished, exactly like real rayon.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = Registry::global();
    if registry.num_workers() == 0 {
        // Inline mode keeps the pool contract: both closures complete
        // before the first panic (if any) resumes.
        registry.note_inline_run();
        let result_a = catch_unwind(AssertUnwindSafe(a));
        let result_b = catch_unwind(AssertUnwindSafe(b));
        return match (result_a, result_b) {
            (Ok(result_a), Ok(result_b)) => (result_a, result_b),
            (Err(payload), _) | (Ok(_), Err(payload)) => resume_unwind(payload),
        };
    }
    let job_b = StackJob::new(b);
    // SAFETY: `job_b` lives on this frame, and this function does not
    // return (or unwind) before the job completed — see below.
    let job_ref = unsafe { job_b.as_job_ref() };
    let b_pointer = job_ref.pointer;
    registry.push_from_current(job_ref);

    // Run `a` catching its panic: even if it unwinds we must resolve `b`
    // first, because `job_b` sits on this very stack frame.
    let result_a = catch_unwind(AssertUnwindSafe(a));

    if !job_b.completed() {
        if let Some(reclaimed) = registry.pop_if_back(b_pointer) {
            // Nobody stole it: run it right here, LIFO, cache-hot.
            // SAFETY: reclaimed from our own deque — unique ownership.
            unsafe { reclaimed.execute() };
        } else {
            // A thief has it (or an external waiter picked it from the
            // injector): help with other work until it reports done.
            registry.wait_until(&|| job_b.completed());
        }
    }

    match result_a {
        Err(payload) => resume_unwind(payload),
        Ok(result_a) => (result_a, job_b.into_result()),
    }
}

// ----------------------------------------------------------------- scope --

/// A scope in which closures borrowing the caller's stack can be spawned
/// onto the pool. Created by [`scope`]; all spawned work completes before
/// `scope` returns.
pub struct Scope<'scope> {
    /// Spawned-but-unfinished jobs, plus one guard token held by the scope
    /// body itself so the count cannot touch zero early.
    pending: AtomicUsize,
    /// First panic payload raised by a spawned job.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Invariant over `'scope` (the closures' borrow region).
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// A raw scope pointer that may ride inside a spawned closure.
struct ScopePointer(*const ());

// SAFETY: the pointee is a `Scope` (atomics + mutex — shareable state),
// kept alive by `scope()` until every spawned job finished.
unsafe impl Send for ScopePointer {}

impl ScopePointer {
    /// Accessor (rather than a field read) so closures capture the `Send`
    /// wrapper itself, not the raw pointer inside it — edition-2021
    /// closures capture disjoint fields.
    fn get(&self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. The closure may borrow anything that
    /// outlives the scope and may itself spawn further work (it receives
    /// the scope again). Panics are captured and re-raised by [`scope`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_pointer = ScopePointer((self as *const Scope<'scope>).cast());
        let job = Box::new(HeapJob {
            func: move || {
                // SAFETY: `scope()` blocks until `pending` hits zero, so
                // the scope outlives this job; re-borrowing it here (and
                // re-attaching the `'scope` lifetime) is sound.
                let scope = unsafe { &*scope_pointer.get().cast::<Scope<'scope>>() };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(scope))) {
                    let mut slot = scope.panic.lock().expect("scope panic slot poisoned");
                    slot.get_or_insert(payload);
                }
                scope.complete_one();
            },
        });
        // SAFETY: the closure borrows `'scope` data, and the publishing
        // `scope()` call does not return before the job ran (the pending
        // counter it just incremented gates the return).
        let job_ref = unsafe { job.into_job_ref() };
        Registry::global().push_from_current(job_ref);
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            Registry::global().notify();
        }
    }
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.pending.load(Ordering::SeqCst))
            .finish()
    }
}

/// Creates a [`Scope`] for spawning borrowed work onto the pool and waits
/// for **all** of it (transitively) before returning — while helping: the
/// calling thread executes queued jobs instead of blocking idle, so
/// `scope` composes under nesting exactly like [`join`].
///
/// With a single-thread pool the spawned closures simply run on the
/// calling thread during the wait, in spawn order — same results, no
/// worker threads involved.
///
/// # Panics
///
/// Propagates a panic from `op` itself, or the first captured panic of a
/// spawned closure — always *after* every spawned job finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        pending: AtomicUsize::new(1),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Release the scope body's guard token and wait for the spawned jobs.
    scope.complete_one();
    Registry::global().wait_until(&|| scope.pending.load(Ordering::SeqCst) == 0);
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            let captured = scope
                .panic
                .lock()
                .expect("scope panic slot poisoned")
                .take();
            match captured {
                Some(payload) => resume_unwind(payload),
                None => value,
            }
        }
    }
}

// --------------------------------------------------------------- par map --

/// [`crate::par_map_init`] with an explicit parallelism cap: the ordered
/// slice map, as `min(max_tasks, len)` runner tasks on the pool pulling
/// item indexes from a shared counter (dynamic load balancing — the same
/// tail-latency behaviour as per-item stealing, without per-item queue
/// traffic). The caller runs one runner itself; results are reassembled
/// in input order.
pub(crate) fn par_map_init_threads<'data, T, S, R, INIT, F>(
    items: &'data [T],
    init: INIT,
    f: F,
    max_tasks: usize,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    let len = items.len();
    let tasks = max_tasks.max(1).min(len);
    if tasks <= 1 || len < crate::MIN_PARALLEL_LEN || Registry::global().num_workers() == 0 {
        Registry::global().note_inline_run();
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let shards: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(tasks));
    let runner = || {
        let mut state = init();
        let mut local = Vec::new();
        loop {
            // A panicking item flags the other runners down: the panic
            // already dooms the whole map (the scope re-raises it on the
            // caller), so finishing the remaining items is pure waste.
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let index = next.fetch_add(1, Ordering::SeqCst);
            if index >= len {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(&mut state, &items[index]))) {
                Ok(value) => local.push((index, value)),
                Err(payload) => {
                    stop.store(true, Ordering::SeqCst);
                    resume_unwind(payload);
                }
            }
        }
        if !local.is_empty() {
            shards.lock().expect("par_map shards poisoned").push(local);
        }
    };
    scope(|s| {
        for _ in 1..tasks {
            s.spawn(|_| runner());
        }
        runner();
    });

    // Restore input order.
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for shard in shards.into_inner().expect("par_map shards poisoned") {
        for (index, value) in shard {
            out[index] = Some(value);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // ---- join ----------------------------------------------------------

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_recursion_splits_to_the_bottom() {
        // A full binary splitting of a slice sum — the canonical rayon
        // workload shape: ~512 leaf joins, ~9 levels deep.
        fn sum(values: &[u64]) -> u64 {
            if values.len() <= 32 {
                return values.iter().sum();
            }
            let (left, right) = values.split_at(values.len() / 2);
            let (l, r) = join(|| sum(left), || sum(right));
            l + r
        }
        let values: Vec<u64> = (0..16_384).collect();
        assert_eq!(sum(&values), 16_383 * 16_384 / 2);
    }

    #[test]
    fn join_supports_deep_linear_recursion() {
        // 600 nested joins on one branch: exercises the LIFO reclaim path
        // and bounded stack growth under steal-waiting.
        fn deep(n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let (rest, one) = join(|| deep(n - 1), || 1u64);
            rest + one
        }
        assert_eq!(deep(600), 600);
    }

    #[test]
    fn join_propagates_a_panic_from_the_first_closure() {
        let result = std::panic::catch_unwind(|| join(|| panic!("left boom"), || 1));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "left boom");
    }

    #[test]
    fn join_propagates_a_panic_from_the_second_closure() {
        let result = std::panic::catch_unwind(|| join(|| 1, || panic!("right boom")));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "right boom");
    }

    #[test]
    fn join_completes_both_sides_even_when_one_panics() {
        // The surviving side must have fully run before the panic resumes
        // (its stack job lives in the unwinding frame).
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            join(
                || panic!("boom"),
                || {
                    completed.fetch_add(1, Ordering::SeqCst);
                },
            )
        });
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::SeqCst), 1);
    }

    // ---- scope ---------------------------------------------------------

    #[test]
    fn scope_runs_every_spawn_before_returning() {
        // Lifetime safety: the closures borrow `counter` and `values`
        // from this frame; the scope must not return while any of them
        // could still touch that memory.
        let counter = AtomicUsize::new(0);
        let values: Vec<usize> = (0..100).collect();
        scope(|s| {
            for chunk in values.chunks(7) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 99 * 100 / 2);
    }

    #[test]
    fn scope_spawns_can_nest() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|inner| {
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_propagates_a_spawned_panic_after_draining() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawn boom"));
                for _ in 0..8 {
                    s.spawn(|_| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "spawn boom");
        // Every sibling ran to completion before the panic resumed.
        assert_eq!(finished.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_propagates_a_panic_from_the_body_itself() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| {
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                panic!("body boom");
            });
        });
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_the_body_value() {
        let value = scope(|_| 42);
        assert_eq!(value, 42);
    }

    // ---- par_map on the pool --------------------------------------------

    #[test]
    fn par_map_is_ordered_at_every_task_cap() {
        let items: Vec<u64> = (0..777).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for cap in [1usize, 2, 3, 8, 64] {
            let out = par_map_init_threads(&items, || (), |(), &x| x * 3 + 1, cap);
            assert_eq!(out, expected, "order broke at task cap {cap}");
        }
    }

    #[test]
    fn par_map_propagates_the_item_panic() {
        let items: Vec<u64> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_init_threads(
                &items,
                || (),
                |(), &x| {
                    assert!(x != 33, "item 33 is cursed");
                    x
                },
                8,
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_stops_claiming_work_after_an_item_panic() {
        // A panicking item dooms the whole map, so the other runners must
        // stop pulling indexes instead of grinding through the tail.
        let items: Vec<u64> = (0..10_000).collect();
        let executed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_init_threads(
                &items,
                || (),
                |(), &x| {
                    if x == 0 {
                        panic!("first item boom");
                    }
                    executed.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(200));
                    x
                },
                8,
            )
        }));
        assert!(result.is_err());
        let done = executed.load(Ordering::SeqCst);
        assert!(
            done < items.len() / 2,
            "early exit should shed most of the work, but {done} items ran"
        );
    }

    #[test]
    fn nested_par_maps_compose() {
        // The shape run_batch now produces: an outer map over requests,
        // an inner map per request — all on one pool.
        let outer: Vec<u64> = (0..16).collect();
        let result = par_map_init_threads(
            &outer,
            || (),
            |(), &row| {
                let inner: Vec<u64> = (0..64).map(|col| row * 64 + col).collect();
                par_map_init_threads(&inner, || (), |(), &v| v * 2, 8)
                    .into_iter()
                    .sum::<u64>()
            },
            8,
        );
        let expected: Vec<u64> = (0..16u64)
            .map(|row| (0..64u64).map(|col| (row * 64 + col) * 2).sum())
            .collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn work_actually_spreads_across_threads_when_the_pool_has_them() {
        // Not a strict guarantee (a fast worker may legally take every
        // item), so only asserted when it cannot flake: with blocking
        // rendezvous inside the items, two tasks MUST run concurrently.
        if Registry::global().num_workers() < 2 {
            return; // single-threaded environment: nothing to observe
        }
        use std::sync::Barrier;
        let barrier = Barrier::new(2);
        let items = [0u64, 1];
        let threads: Vec<_> = par_map_init_threads(
            &items,
            || (),
            |(), _| {
                barrier.wait();
                std::thread::current().id()
            },
            2,
        );
        assert_ne!(
            threads[0], threads[1],
            "two rendezvous items ran on one thread"
        );
    }

    #[test]
    fn join_executes_stolen_work_while_blocked() {
        // A join whose left side takes a while: the right side is either
        // reclaimed (fine) or stolen, and in both cases every leaf runs
        // exactly once.
        let seen = Mutex::new(HashSet::new());
        fn spread(range: std::ops::Range<u64>, seen: &Mutex<HashSet<u64>>) {
            let span = range.end - range.start;
            if span <= 4 {
                let mut guard = seen.lock().unwrap();
                for v in range {
                    assert!(guard.insert(v), "leaf {v} ran twice");
                }
                return;
            }
            let mid = range.start + span / 2;
            join(
                || spread(range.start..mid, seen),
                || spread(mid..range.end, seen),
            );
        }
        spread(0..4096, &seen);
        assert_eq!(seen.lock().unwrap().len(), 4096);
    }
}
