//! Minimal vendored `rayon` for the offline build environment.
//!
//! Provides the ordered data-parallel subset the workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` and rayon's
//! `map_init(init, f)` for per-worker scratch state. Work is distributed
//! dynamically — workers pull the next item index from a shared atomic
//! counter, which gives the same tail-latency behaviour as work stealing
//! for slice-shaped workloads — and results are always returned in input
//! order, so parallel runs are bit-identical to sequential ones.
//!
//! The pool is scoped (no global state): threads are spawned per call via
//! `std::thread::scope` and bounded by `RAYON_NUM_THREADS` or the available
//! parallelism. Item counts below [`MIN_PARALLEL_LEN`] run inline.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;

/// The most commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

/// Below this many items the overhead of spawning beats the parallelism and
/// the map runs inline on the calling thread.
pub const MIN_PARALLEL_LEN: usize = 2;

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` with per-worker state from `init`, preserving
/// input order. Used by the iterator adapters; callable directly for
/// scratch-buffer workloads.
pub fn par_map_init<'data, T, S, R, INIT, F>(items: &'data [T], init: INIT, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    par_map_init_threads(items, init, f, current_num_threads())
}

/// [`par_map_init`] with an explicit worker-thread cap (exposed for tests).
pub fn par_map_init_threads<'data, T, S, R, INIT, F>(
    items: &'data [T],
    init: INIT,
    f: F,
    max_threads: usize,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    let len = items.len();
    let threads = max_threads.max(1).min(len);
    if threads <= 1 || len < MIN_PARALLEL_LEN {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= len {
                            break;
                        }
                        local.push((index, f(&mut state, &items[index])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("rayon worker panicked"))
            .collect()
    });

    // Restore input order.
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for shard in shards {
        for (index, value) in shard {
            out[index] = Some(value);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn forced_multithreading_matches_sequential() {
        let items: Vec<u64> = (0..512).collect();
        let parallel = super::par_map_init_threads(&items, || (), |(), &x| x * x + 1, 8);
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = super::par_map_init_threads(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::with_capacity(8)
            },
            |scratch, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0]
            },
            4,
        );
        assert_eq!(out, items);
        // One init per worker, not per item.
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let items: Vec<usize> = (0..777).collect();
        let seen: Vec<usize> = super::par_map_init_threads(&items, || (), |(), &x| x, 8);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), items.len());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
