//! Minimal vendored `rayon` for the offline build environment.
//!
//! Provides the subset of the rayon surface the workspace uses, all on
//! top of one **persistent work-stealing pool** ([`pool`]):
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` and rayon's
//!   `map_init(init, f)` for per-task scratch state — ordered parallel
//!   slice maps ([`iter`]);
//! * [`join`] — two potentially-parallel closures with
//!   steal-while-blocked waiting;
//! * [`scope`] — spawn borrowed closures, all joined before return.
//!
//! The pool is created lazily on first use and lives for the process:
//! worker threads (count from `SOCTEST_THREADS`, then
//! `RAYON_NUM_THREADS`, then the available parallelism) park when idle,
//! so the thread-spawn cost is paid once instead of per call, and the
//! many small optimizer runs of a parameter sweep amortise onto warm
//! threads. Because blocked primitives keep executing queued work,
//! parallelism **nests**: a parallel batch of requests whose sweeps run
//! parallel maps over points which build table rows in parallel all
//! shares the same fixed set of workers without oversubscription.
//!
//! Results are always returned in input order and both `join` branches
//! complete before it returns, so parallel runs are bit-identical to
//! sequential ones at any thread count — the property the scheduler
//! stress tests in `crates/multisite/tests/` pin down.
//!
//! Item counts below [`MIN_PARALLEL_LEN`] (and every call on a
//! single-thread pool) run inline on the calling thread.

#![deny(unsafe_code)] // `pool` opts back in locally, with documented invariants

pub mod iter;
pub mod pool;

pub use pool::{join, scope, PoolStats, Scope};

/// The most commonly used items, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

/// Below this many items the overhead of task dispatch beats the
/// parallelism and the map runs inline on the calling thread.
pub const MIN_PARALLEL_LEN: usize = 2;

/// Number of threads in the pool (workers; `1` means everything runs
/// inline on calling threads). Configured once, at pool creation, from
/// `SOCTEST_THREADS`, then `RAYON_NUM_THREADS`, then the available
/// parallelism.
pub fn current_num_threads() -> usize {
    pool::Registry::global().num_threads()
}

/// Point-in-time occupancy counters of the global pool. Snapshot before
/// and after a unit of work and diff with [`PoolStats::delta_since`] to
/// see how its jobs reached their executing threads (own deque, steal,
/// injector, or inline on the caller).
pub fn pool_stats() -> PoolStats {
    pool::Registry::global().stats()
}

/// Maps `f` over `items` with per-task state from `init`, preserving
/// input order. Used by the iterator adapters; callable directly for
/// scratch-buffer workloads.
pub fn par_map_init<'data, T, S, R, INIT, F>(items: &'data [T], init: INIT, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    par_map_init_threads(items, init, f, current_num_threads())
}

/// [`par_map_init`] with an explicit parallelism cap: at most
/// `max_tasks` concurrent runner tasks share the items (exposed for the
/// thread-count determinism tests and for callers that bound their own
/// fan-out, like the engine's pool policy).
pub fn par_map_init_threads<'data, T, S, R, INIT, F>(
    items: &'data [T],
    init: INIT,
    f: F,
    max_tasks: usize,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    pool::par_map_init_threads(items, init, f, max_tasks)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn forced_multithreading_matches_sequential() {
        let items: Vec<u64> = (0..512).collect();
        let parallel = super::par_map_init_threads(&items, || (), |(), &x| x * x + 1, 8);
        let sequential: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn map_init_reuses_state_per_task() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..256).collect();
        let out = super::par_map_init_threads(
            &items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::with_capacity(8)
            },
            |scratch, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0]
            },
            4,
        );
        assert_eq!(out, items);
        // One init per runner task, not per item.
        assert!(inits.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u64];
        let out: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        let items: Vec<usize> = (0..777).collect();
        let seen: Vec<usize> = super::par_map_init_threads(&items, || (), |(), &x| x, 8);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), items.len());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn repeated_calls_reuse_the_persistent_pool() {
        // The pool is global: many small maps back to back must not spawn
        // threads per call. Observable effect: the set of worker thread
        // ids across calls is bounded by the pool size (plus the caller).
        let mut ids = HashSet::new();
        for _ in 0..20 {
            let items: Vec<u64> = (0..64).collect();
            let round: Vec<_> =
                super::par_map_init_threads(&items, || (), |(), _| std::thread::current().id(), 8);
            ids.extend(round);
        }
        assert!(ids.len() <= super::current_num_threads() + 1);
    }
}
