//! Parallel iterator adapters (the rayon-style fluent API).

/// Conversion into an ordered parallel iterator over `&T` items.
pub trait IntoParallelRefIterator<'data> {
    /// The element type (`&T`).
    type Item: Send;
    /// The iterator type.
    type Iter;

    /// Returns a parallel iterator over the collection.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Ordered parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every item through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Maps every item through `f` with per-task state created by `init`
    /// (rayon's `map_init`): the state is created once per runner task on
    /// the work-stealing pool and reused across that task's items — the
    /// idiom for reusable scratch buffers.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'data, T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'data T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Result of [`ParIter::map`].
#[derive(Debug, Clone, Copy)]
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let f = self.f;
        C::from_ordered_vec(crate::par_map_init(self.items, || (), |(), item| f(item)))
    }
}

/// Result of [`ParIter::map_init`].
#[derive(Debug, Clone, Copy)]
pub struct ParMapInit<'data, T, INIT, F> {
    items: &'data [T],
    init: INIT,
    f: F,
}

impl<'data, T, S, R, INIT, F> ParMapInit<'data, T, INIT, F>
where
    T: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> R + Sync,
{
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let f = self.f;
        C::from_ordered_vec(crate::par_map_init(self.items, self.init, |state, item| {
            f(state, item)
        }))
    }
}

/// Collections that can be built from an ordered parallel computation.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}
