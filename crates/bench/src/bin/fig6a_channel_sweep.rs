//! Figure 6(a): throughput versus number of ATE channels (512..1024) for
//! the PNX8550 stand-in.

use soctest_bench::{fig6a_channel_counts, paper_config, pnx_soc};
use soctest_multisite::report::format_sweep;
use soctest_multisite::sweep::channel_sweep;

fn main() {
    let soc = pnx_soc();
    let config = paper_config();
    let channels = fig6a_channel_counts();
    let points = channel_sweep(&soc, &config, &channels).expect("all channel counts are feasible");
    print!(
        "{}",
        format_sweep(
            "=== Figure 6(a): throughput vs. ATE channels ===",
            "channels",
            "D_th [/h]",
            &points
        )
    );
    let first = points.first().expect("non-empty sweep");
    let last = points.last().expect("non-empty sweep");
    println!(
        "Doubling the channels ({} -> {}) multiplies throughput by {:.2} (paper: ~2x, linear).",
        first.parameter,
        last.parameter,
        last.optimal.devices_per_hour / first.optimal.devices_per_hour
    );
}
