//! Performance baseline runner: times the optimizer hot paths and writes
//! `BENCH_optimizer.json` so subsequent changes have a perf trajectory to
//! compare against.
//!
//! Measured in one run (same binary, same machine state):
//!
//! * `TimeTable::build` through the fast row kernel vs. the naive
//!   per-(module, width) `design_wrapper` loop
//!   (`TimeTable::build_reference`) on the 274-module PNX8550 stand-in at
//!   width 256 — including a full equality check of the two tables;
//! * the incremental row evaluation (prefix-seeded LPT + floor skip) vs.
//!   the non-incremental per-width kernel loop
//!   (`test_time_row_reference`), rows checked identical;
//! * the heap-based LPT (`lpt_partition`) vs. the linear-scan formulation
//!   (`lpt_partition_reference`) on a chain-rich flattened shape —
//!   asserted bit-identical (assignment and loads) before timing;
//! * the demand-driven `LazyTimeTable` under the two-step `optimize`,
//!   including the `rows_built / rows_total` cell ratio (how little of the
//!   full table the optimizer actually probes);
//! * the end-to-end two-step `optimize` on d695 and the PNX8550 stand-in;
//! * the Figure 6(a) `channel_sweep` on the PNX8550 stand-in;
//! * a heterogeneous engine batch (Figures 6(a)+6(b)+7(a)+7(b) at once)
//!   through one shared-table `Engine::run_batch`, against the same four
//!   experiments through the per-call-table free functions — results
//!   asserted identical before timing;
//! * the same figure batch traced (`Engine::run_batch_traced`) vs
//!   untraced — responses asserted bit-identical first; the overhead
//!   ratio is printed but not gated, documenting that the
//!   `RequestTrace` observability seam is effectively free when off and
//!   near-free when on;
//! * a **mixed** batch (plain optimizations + every sweep shape) under
//!   nested request x point parallelism on the persistent work-stealing
//!   pool (`engine_batch/pnx8550_like/mixed_parallel`), against the same
//!   batch on a sequential engine — responses asserted bit-identical
//!   before timing;
//! * the figure batch through the service-layer [`SolutionCache`]: every
//!   `cache_cold` iteration pays a fresh engine plus all four
//!   computations, every `cache_hot` iteration answers the identical
//!   requests from the warmed cache — hot responses asserted
//!   bit-identical to the computed ones before timing, and the hot mean
//!   is required to be at least 5x faster;
//! * sweep-point reuse (`sweep_point_reuse`): the Figure 6(a) channel
//!   sweep through a point-memo-backed engine sharing one namespace
//!   with the solution cache — a cold iteration computes every point, a
//!   warm iteration answers every point from the memo. Before timing,
//!   the memo-backed sweep is asserted bit-identical to a bare engine's,
//!   a repeat sweep must reuse every point, and a *plain* request for a
//!   swept channel count is hard-gated to be a full cache `Hit` that
//!   computes nothing;
//! * a simulated `--cache-dir` restart (`row_store_reuse`): a warmed
//!   [`RowStore`] saved to `rows.v1`, reloaded into a brand-new store as
//!   a second process would, and a fresh store-backed engine serving the
//!   batch with **zero** rows rebuilt — asserted, along with response
//!   bit-identity, before timing;
//! * the socket transport under concurrent load
//!   (`service/concurrent_connections`): two long-lived Unix-socket
//!   servers, each timed iteration a fresh wave of 32 distinct
//!   single-SOC optimizations — four connections over four executors
//!   against the same wave on one connection over one executor — with
//!   every per-request response asserted bit-identical between the two
//!   modes before timing.
//!
//! Run with `cargo run --release --bin perf_baseline`. The report lands in
//! the current working directory.

use serde::Serialize;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_bench::{
    fig6a_channel_counts, fig6b_depths, fig7a_contact_yields, fig7b_manufacturing_yields,
    paper_config, pnx_soc,
};
use soctest_multisite::engine::{Engine, OptimizeRequest, SweepAxis};
use soctest_multisite::optimizer::{optimize, optimize_with_table};
use soctest_multisite::problem::OptimizerConfig;
use soctest_multisite::service::{
    BoundListener, CacheOutcome, CancelToken, ClientFrame, ClientStream, ListenAddr, OptimizeFrame,
    Server, ServerConfig, ServerFrame, SessionPointMemo, SocSpec, SolutionCache, TransportConfig,
};
use soctest_multisite::sweep::{
    abort_on_fail_sweep, channel_sweep, contact_yield_sweep, depth_sweep,
};
use soctest_soc_model::benchmarks::d695;
use soctest_soc_model::writer::write_soc;
use soctest_soc_model::Soc;
use soctest_tam::{max_tam_width, LazyTimeTable, RowStore, TimeTable};
use soctest_wrapper::lpt::{lpt_partition, lpt_partition_reference};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Where the report is written (relative to the working directory).
const REPORT_PATH: &str = "BENCH_optimizer.json";
/// Minimum measured wall-clock per benchmark before the mean is trusted.
const MIN_MEASURE_SECONDS: f64 = 0.5;
/// Upper bound on measured iterations per benchmark.
const MAX_ITERATIONS: u64 = 40;

#[derive(Debug, Serialize)]
struct Measurement {
    name: String,
    iterations: u64,
    mean_seconds: f64,
}

#[derive(Debug, Serialize)]
struct TimeTableComparison {
    soc: String,
    modules: usize,
    max_width: usize,
    fast_mean_seconds: f64,
    naive_mean_seconds: f64,
    speedup: f64,
    tables_identical: bool,
}

#[derive(Debug, Serialize)]
struct LazyTableStats {
    soc: String,
    modules: usize,
    max_width: usize,
    /// `(module, width)` cells the optimizer actually probed.
    rows_built: usize,
    /// Cells an eager build would compute (`modules · max_width`).
    rows_total: usize,
    /// `rows_built / rows_total` — the fraction of the table the two-step
    /// optimizer really needs.
    ratio: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    threads: usize,
    timetable_build: TimeTableComparison,
    lazy_timetable: LazyTableStats,
    measurements: Vec<Measurement>,
}

/// Times `body` with one warm-up run and an adaptive iteration count.
fn measure<R, F: FnMut() -> R>(name: &str, mut body: F) -> Measurement {
    std::hint::black_box(body());
    let mut iterations = 0u64;
    let mut elapsed = 0.0f64;
    while iterations < MAX_ITERATIONS && elapsed < MIN_MEASURE_SECONDS {
        let start = Instant::now();
        std::hint::black_box(body());
        elapsed += start.elapsed().as_secs_f64();
        iterations += 1;
    }
    let mean_seconds = elapsed / iterations as f64;
    println!("{name:<45} {mean_seconds:>12.6} s/iter  ({iterations} iters)");
    Measurement {
        name: name.to_string(),
        iterations,
        mean_seconds,
    }
}

fn main() {
    let pnx = pnx_soc();
    let max_width = 256usize;
    println!(
        "perf_baseline: {} modules in {}, table width {max_width}, {} worker thread(s)\n",
        pnx.num_modules(),
        pnx.name(),
        rayon::current_num_threads()
    );

    // --- TimeTable::build: row kernel vs naive wrapper-design loop -------
    let fast = measure("timetable_build/pnx8550_like/fast", || {
        TimeTable::build(&pnx, max_width)
    });
    let naive = measure("timetable_build/pnx8550_like/naive", || {
        TimeTable::build_reference(&pnx, max_width)
    });
    let tables_identical =
        TimeTable::build(&pnx, max_width) == TimeTable::build_reference(&pnx, max_width);
    let speedup = naive.mean_seconds / fast.mean_seconds;
    println!("\ntimetable_build speedup: {speedup:.1}x (identical: {tables_identical})\n");

    // --- Row kernel: incremental vs non-incremental ----------------------
    let mut measurements = Vec::new();
    {
        use soctest_wrapper::row::{test_time_row_reference, RowKernel};
        let mut kernel = RowKernel::new();
        let mut row = Vec::new();
        measurements.push(measure("row_kernel/pnx8550_like/incremental", || {
            for module in pnx.modules() {
                kernel.compute_into(module, max_width, &mut row);
                std::hint::black_box(&row);
            }
        }));
        measurements.push(measure("row_kernel/pnx8550_like/reference", || {
            for module in pnx.modules() {
                std::hint::black_box(test_time_row_reference(module, max_width));
            }
        }));
        let rows_identical = pnx.modules().iter().all(|m| {
            RowKernel::new().compute(m, max_width) == test_time_row_reference(m, max_width)
        });
        assert!(
            rows_identical,
            "incremental and reference row kernels disagree"
        );
    }

    // --- Heap LPT vs scalar scan -----------------------------------------
    // A chain-rich shape (every PNX module's chains concatenated — the
    // flattened Problem 2 profile) over the narrow-region widths where the
    // heap matters. Bit-identity is asserted before anything is timed.
    let all_chains: Vec<u64> = pnx
        .modules()
        .iter()
        .flat_map(|m| m.scan_chains().iter().map(|c| c.length))
        .collect();
    let lpt_bins = [4usize, 16, 64, 192];
    for &bins in &lpt_bins {
        assert_eq!(
            lpt_partition(&all_chains, bins),
            lpt_partition_reference(&all_chains, bins),
            "heap LPT and scalar LPT disagree at {bins} bins"
        );
    }
    measurements.push(measure("heap_lpt/pnx8550_flat_chains/heap", || {
        for &bins in &lpt_bins {
            std::hint::black_box(lpt_partition(&all_chains, bins));
        }
    }));
    measurements.push(measure("heap_lpt/pnx8550_flat_chains/scalar", || {
        for &bins in &lpt_bins {
            std::hint::black_box(lpt_partition_reference(&all_chains, bins));
        }
    }));

    // --- Lazy table under the optimizer ----------------------------------
    let pnx_config = paper_config();
    let lazy_width = max_tam_width(pnx_config.test_cell.ate.channels);
    measurements.push(measure("lazy_timetable/pnx8550_like/optimize", || {
        let table = LazyTimeTable::new(&pnx, lazy_width);
        optimize_with_table(pnx.name(), &table, &pnx_config)
            .expect("the PNX stand-in fits the paper's test cell")
    }));
    let lazy_stats = {
        let table = LazyTimeTable::new(&pnx, lazy_width);
        let lazy_solution = optimize_with_table(pnx.name(), &table, &pnx_config)
            .expect("the PNX stand-in fits the paper's test cell");
        // Bit-identity of the solution against the eager table.
        let eager = TimeTable::build(&pnx, lazy_width);
        let eager_solution = optimize_with_table(pnx.name(), &eager, &pnx_config)
            .expect("the PNX stand-in fits the paper's test cell");
        assert_eq!(
            lazy_solution, eager_solution,
            "lazy and eager tables must produce identical solutions"
        );
        LazyTableStats {
            soc: pnx.name().to_string(),
            modules: pnx.num_modules(),
            max_width: lazy_width,
            rows_built: table.cells_built(),
            rows_total: table.cells_total(),
            ratio: table.build_ratio(),
        }
    };
    println!(
        "\nlazy_timetable: {} / {} cells probed by optimize (ratio {:.4})\n",
        lazy_stats.rows_built, lazy_stats.rows_total, lazy_stats.ratio
    );

    // --- End-to-end optimizer runs ---------------------------------------
    let d695_soc = d695();
    let d695_config = OptimizerConfig::new(TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    measurements.push(measure("optimize/d695", || {
        optimize(&d695_soc, &d695_config).expect("d695 fits its test cell")
    }));
    measurements.push(measure("optimize/pnx8550_like", || {
        optimize(&pnx, &pnx_config).expect("the PNX stand-in fits the paper's test cell")
    }));

    // --- Figure 6(a) channel sweep ---------------------------------------
    let channels = fig6a_channel_counts();
    measurements.push(measure("channel_sweep/pnx8550_like/fig6a", || {
        channel_sweep(&pnx, &pnx_config, &channels).expect("every fig6a point is feasible")
    }));

    // --- Engine batch: one shared table vs per-call tables ---------------
    // The heterogeneous Section 7 batch — all of Figures 6(a), 6(b), 7(a)
    // and 7(b) at once — served by one engine over one table, against the
    // legacy shape where every free function wires its own table.
    let depths = fig6b_depths();
    let contact_yields = fig7a_contact_yields();
    let manufacturing_yields = fig7b_manufacturing_yields();
    let figure_batch = [
        OptimizeRequest::new(pnx_config).with_sweep(SweepAxis::Channels(channels.clone())),
        OptimizeRequest::new(pnx_config).with_sweep(SweepAxis::DepthVectors(depths.clone())),
        OptimizeRequest::new(pnx_config).with_sweep(SweepAxis::ContactYield {
            depths: depths.clone(),
            contact_yields: contact_yields.clone(),
        }),
        OptimizeRequest::new(pnx_config).with_sweep(SweepAxis::ManufacturingYield {
            max_sites: 8,
            manufacturing_yields: manufacturing_yields.clone(),
        }),
    ];
    // Equivalence before timing: the batched responses must reproduce the
    // per-call free-function results bit for bit.
    {
        let engine = Engine::new(&pnx);
        let batched = engine.run_batch(&figure_batch);
        let curves = |index: usize| {
            batched[index]
                .as_ref()
                .expect("every figure request is feasible")
                .curves()
                .expect("sweeping requests answer with curves")
        };
        assert_eq!(
            curves(0)[0].points,
            channel_sweep(&pnx, &pnx_config, &channels).expect("feasible"),
            "engine batch and per-call channel sweep disagree"
        );
        assert_eq!(
            curves(1)[0].points,
            depth_sweep(&pnx, &pnx_config, &depths).expect("feasible"),
            "engine batch and per-call depth sweep disagree"
        );
        assert_eq!(
            curves(2),
            contact_yield_sweep(&pnx, &pnx_config, &depths, &contact_yields)
                .expect("feasible")
                .as_slice(),
            "engine batch and per-call contact-yield sweep disagree"
        );
        assert_eq!(
            curves(3),
            abort_on_fail_sweep(&pnx, &pnx_config, 8, &manufacturing_yields)
                .expect("feasible")
                .as_slice(),
            "engine batch and per-call abort-on-fail sweep disagree"
        );
    }
    measurements.push(measure("engine_batch/pnx8550_like/shared_table", || {
        let engine = Engine::new(&pnx);
        for result in engine.run_batch(&figure_batch) {
            std::hint::black_box(result.expect("every figure request is feasible"));
        }
    }));
    measurements.push(measure("engine_batch/pnx8550_like/per_call_tables", || {
        channel_sweep(&pnx, &pnx_config, &channels).expect("feasible");
        depth_sweep(&pnx, &pnx_config, &depths).expect("feasible");
        contact_yield_sweep(&pnx, &pnx_config, &depths, &contact_yields).expect("feasible");
        abort_on_fail_sweep(&pnx, &pnx_config, 8, &manufacturing_yields).expect("feasible");
    }));

    // --- Traced vs untraced: the observability seam must be ~free --------
    // The same figure batch through `run_batch_traced`. Responses are
    // asserted bit-identical to the untraced batch before timing; the
    // overhead ratio is reported for the perf trajectory but not gated —
    // the seam only snapshots epoch counters, so the two means should sit
    // within run-to-run noise of each other.
    {
        let plain_engine = Engine::new(&pnx);
        let traced_engine = Engine::new(&pnx);
        let plain = plain_engine.run_batch(&figure_batch);
        let (observed, trace) = traced_engine.run_batch_traced(&figure_batch);
        assert_eq!(
            plain, observed,
            "traced figure batch diverged from the untraced one"
        );
        assert_eq!(trace.requests, figure_batch.len() as u64);
        assert!(
            trace.cells_built() > 0,
            "a cold traced batch built no cells"
        );
    }
    let batch_untraced = measure("engine_batch/pnx8550_like/stats_off", || {
        let engine = Engine::new(&pnx);
        for result in engine.run_batch(&figure_batch) {
            std::hint::black_box(result.expect("every figure request is feasible"));
        }
    });
    let batch_traced = measure("engine_batch/pnx8550_like/stats_on", || {
        let engine = Engine::new(&pnx);
        let (results, trace) = engine.run_batch_traced(&figure_batch);
        for result in results {
            std::hint::black_box(result.expect("every figure request is feasible"));
        }
        std::hint::black_box(trace);
    });
    let trace_overhead = batch_traced.mean_seconds / batch_untraced.mean_seconds;
    println!("\ntrace overhead: {trace_overhead:.3}x traced over untraced (informational)\n");
    measurements.push(batch_untraced);
    measurements.push(batch_traced);

    // --- Mixed batch: nested request x point parallelism ------------------
    // A genuinely mixed batch (plain optimizations interleaved with every
    // sweep shape) that the pre-pool engine served sequentially across
    // requests. On the work-stealing pool the whole batch fans out at the
    // request level and again inside each sweep; results are asserted
    // bit-identical to the fully sequential engine before anything is
    // timed.
    let mixed_batch: Vec<OptimizeRequest> = {
        let mut batch = vec![OptimizeRequest::new(pnx_config)];
        batch.extend(figure_batch.iter().cloned());
        let mut deep_cfg = pnx_config;
        deep_cfg.test_cell.ate = deep_cfg
            .test_cell
            .ate
            .with_depth(deep_cfg.test_cell.ate.vector_memory_depth * 2);
        batch.push(OptimizeRequest::new(deep_cfg));
        batch
    };
    {
        let sequential_engine = Engine::builder(&pnx).sequential().build();
        let parallel_engine = Engine::new(&pnx);
        let sequential: Vec<_> = sequential_engine.run_batch(&mixed_batch);
        let parallel: Vec<_> = parallel_engine.run_batch(&mixed_batch);
        assert_eq!(sequential.len(), parallel.len());
        for (index, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                s.as_ref().expect("every mixed request is feasible"),
                p.as_ref().expect("every mixed request is feasible"),
                "mixed batch request {index}: nested-parallel result diverged from sequential"
            );
        }
    }
    measurements.push(measure("engine_batch/pnx8550_like/mixed_parallel", || {
        let engine = Engine::new(&pnx);
        for result in engine.run_batch(&mixed_batch) {
            std::hint::black_box(result.expect("every mixed request is feasible"));
        }
    }));
    measurements.push(measure(
        "engine_batch/pnx8550_like/mixed_sequential",
        || {
            let engine = Engine::builder(&pnx).sequential().build();
            for result in engine.run_batch(&mixed_batch) {
                std::hint::black_box(result.expect("every mixed request is feasible"));
            }
        },
    ));

    // --- Solution cache: cold computation vs exact hit -------------------
    // The figure batch through the service-layer result cache. A cold
    // iteration pays a fresh engine plus all four computations; a hot
    // iteration answers the identical requests from the warmed cache.
    // Before timing anything, the warmed cache's answers are asserted
    // bit-identical to the freshly computed ones.
    let hot_cache = SolutionCache::new(256, 64 * 1024 * 1024);
    {
        let engine = Engine::new(&pnx);
        let token = CancelToken::new();
        for request in &figure_batch {
            let (_, computed) = hot_cache
                .run_coalesced(0, request, &token, || engine.run(request))
                .expect("every figure request is feasible");
            let (outcome, cached) = hot_cache
                .run_coalesced(0, request, &token, || engine.run(request))
                .expect("every figure request is feasible");
            assert!(outcome.is_cached(), "repeated request missed the cache");
            assert_eq!(
                computed, cached,
                "cached response diverged from the computed one"
            );
        }
    }
    let cache_cold = measure("engine_batch/pnx8550_like/cache_cold", || {
        let cache = SolutionCache::new(256, 64 * 1024 * 1024);
        let engine = Engine::new(&pnx);
        let token = CancelToken::new();
        for request in &figure_batch {
            let served = cache
                .run_coalesced(0, request, &token, || engine.run(request))
                .expect("every figure request is feasible");
            std::hint::black_box(served);
        }
    });
    let cache_hot = measure("engine_batch/pnx8550_like/cache_hot", || {
        let token = CancelToken::new();
        for request in &figure_batch {
            let served = hot_cache
                .run_coalesced(0, request, &token, || {
                    panic!("a warmed cache must not recompute")
                })
                .expect("every figure request is feasible");
            std::hint::black_box(served);
        }
    });
    let cache_speedup = cache_cold.mean_seconds / cache_hot.mean_seconds;
    println!("\nsolution_cache speedup: {cache_speedup:.1}x hot over cold\n");
    measurements.push(cache_cold);
    measurements.push(cache_hot);

    // --- Sweep-point reuse: memoised points pre-answer plain requests ----
    // The Figure 6(a) channel sweep through a point-memo-backed engine:
    // every point lands in the solution cache under its plain
    // effective-config key, so a warm iteration answers every point from
    // the memo and a standalone request for a swept channel count is a
    // full cache hit. All of that is asserted — bit-identically — before
    // anything is timed.
    let sweep_request = &figure_batch[0];
    let point_cache = Arc::new(SolutionCache::new(256, 64 * 1024 * 1024));
    {
        let bare = Engine::new(&pnx)
            .run(sweep_request)
            .expect("the fig6a sweep is feasible");
        let memo_engine = Engine::builder(&pnx)
            .point_memo(Arc::new(SessionPointMemo::new(Arc::clone(&point_cache), 0)))
            .build();
        let (first, cold_trace) = memo_engine.run_traced(sweep_request);
        assert_eq!(
            first.expect("the fig6a sweep is feasible"),
            bare,
            "the point memo changed the sweep's answer"
        );
        assert_eq!(cold_trace.points_computed, channels.len() as u64);
        // A fresh engine over the warmed cache reuses every point.
        let warm_engine = Engine::builder(&pnx)
            .point_memo(Arc::new(SessionPointMemo::new(Arc::clone(&point_cache), 0)))
            .build();
        let (second, warm_trace) = warm_engine.run_traced(sweep_request);
        assert_eq!(second.expect("the fig6a sweep is feasible"), bare);
        assert_eq!(
            warm_trace.points_reused,
            channels.len() as u64,
            "a repeat sweep must reuse every memoised point"
        );
        assert_eq!(warm_trace.points_computed, 0);
        // Hard gate: after the sweep, a *plain* request for a swept
        // channel count is a cache Hit that computes nothing at all —
        // the compute closure is unreachable.
        let mut point_cfg = pnx_config;
        point_cfg.test_cell.ate = point_cfg.test_cell.ate.with_channels(channels[0]);
        let plain = OptimizeRequest::new(point_cfg);
        let (outcome, served) = point_cache
            .run_coalesced(0, &plain, &CancelToken::new(), || {
                panic!("a swept point must answer the plain request with zero cells computed")
            })
            .expect("a cached point cannot fail");
        assert_eq!(
            outcome,
            CacheOutcome::Hit,
            "the post-sweep plain request must be a cache hit"
        );
        assert_eq!(
            served,
            Engine::new(&pnx)
                .run(&plain)
                .expect("every fig6a point is feasible"),
            "the memoised point diverged from a cold computation"
        );
    }
    let sweep_cold = measure("sweep_point_reuse/pnx8550_like/cold", || {
        let cache = Arc::new(SolutionCache::new(256, 64 * 1024 * 1024));
        let engine = Engine::builder(&pnx)
            .point_memo(Arc::new(SessionPointMemo::new(cache, 0)))
            .build();
        engine
            .run(sweep_request)
            .expect("the fig6a sweep is feasible")
    });
    let sweep_warm = measure("sweep_point_reuse/pnx8550_like/warm", || {
        let engine = Engine::builder(&pnx)
            .point_memo(Arc::new(SessionPointMemo::new(Arc::clone(&point_cache), 0)))
            .build();
        engine
            .run(sweep_request)
            .expect("the fig6a sweep is feasible")
    });
    let sweep_reuse_speedup = sweep_cold.mean_seconds / sweep_warm.mean_seconds;
    println!("\nsweep_point_reuse speedup: {sweep_reuse_speedup:.1}x warm over cold\n");
    measurements.push(sweep_cold);
    measurements.push(sweep_warm);

    // --- Cross-process row-store reuse ------------------------------------
    // Simulates the `--cache-dir` restart: a warmed store saved to
    // `rows.v1`, loaded into a brand-new store exactly as a second
    // process would, and a fresh store-backed engine serving the batch.
    // Zero rows rebuilt and response bit-identity are asserted before
    // anything is timed.
    let rows_path =
        std::env::temp_dir().join(format!("soctest-perf-rows-{}.v1", std::process::id()));
    {
        let warm = Arc::new(RowStore::new());
        let engine = Engine::builder(&pnx).row_store(Arc::clone(&warm)).build();
        for result in engine.run_batch(&figure_batch) {
            std::hint::black_box(result.expect("every figure request is feasible"));
        }
        warm.save(&rows_path).expect("save the warm row store");
    }
    {
        let reloaded = Arc::new(RowStore::new());
        reloaded.load(&rows_path).expect("load the warm row store");
        let engine = Engine::builder(&pnx)
            .row_store(Arc::clone(&reloaded))
            .build();
        let store_backed = engine.run_batch(&figure_batch);
        let baseline = Engine::new(&pnx).run_batch(&figure_batch);
        for (index, (s, b)) in store_backed.iter().zip(&baseline).enumerate() {
            assert_eq!(
                s.as_ref().expect("every figure request is feasible"),
                b.as_ref().expect("every figure request is feasible"),
                "figure request {index}: store-backed result diverged from the plain engine"
            );
        }
        assert_eq!(
            reloaded.stats().cells_computed,
            0,
            "a warm reloaded store rebuilt rows"
        );
    }
    measurements.push(measure("engine_batch/pnx8550_like/row_store_reuse", || {
        let store = Arc::new(RowStore::new());
        store.load(&rows_path).expect("load the warm row store");
        let engine = Engine::builder(&pnx).row_store(store).build();
        for result in engine.run_batch(&figure_batch) {
            std::hint::black_box(result.expect("every figure request is feasible"));
        }
    }));
    let _ = std::fs::remove_file(&rows_path);

    // --- Socket transport: four concurrent connections vs one -------------
    // Two long-lived servers on real Unix sockets (started once, outside
    // the timed region, the way a deployed server runs): one with a single
    // executor, one with four. Every iteration is a fresh *wave* of 32
    // distinct d695-sized optimizations — each wave renames the SOC, so no
    // wave is ever answered from a warm session or the solution cache and
    // no warm/cached flag depends on execution order. The single mode
    // pipes a wave through one connection; the concurrent mode splits it
    // over four connections racing into the shared admission queue, so the
    // comparison isolates what the transport adds: parallel frame parsing
    // in the per-connection readers, parallel session setup and compute on
    // the executors, parallel response rendering under the per-connection
    // writer locks. Before timing, wave 0 runs once through each server
    // and every per-request response line is asserted bit-identical.
    let wave_count = 2 + 2 * MAX_ITERATIONS as usize; // identity + warm-up + iterations, per mode
    let waves: Vec<Vec<Vec<String>>> = (0..wave_count)
        .map(|wave| {
            (0..4)
                .map(|conn| {
                    (0..8)
                        .map(|slot| {
                            let index = wave * 32 + conn * 8 + slot;
                            let mut variant = Soc::new(format!("d695_v{index}"));
                            for module in d695_soc.modules() {
                                variant.push_module(module.clone());
                            }
                            serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
                                request_id: format!("r{index}"),
                                soc: SocSpec::Inline(write_soc(&variant)),
                                request: OptimizeRequest::new(d695_config),
                                deadline_ms: None,
                                stats: false,
                            }))
                            .expect("client frames serialise")
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let temp = std::env::temp_dir();
    let single_addr =
        ListenAddr::Unix(temp.join(format!("soctest-perf-x1-{}.sock", std::process::id())));
    let multi_addr =
        ListenAddr::Unix(temp.join(format!("soctest-perf-x4-{}.sock", std::process::id())));
    let mut single_config = ServerConfig::default();
    single_config.executors = 1;
    let single_server = Server::new(single_config);
    let mut multi_config = ServerConfig::default();
    multi_config.executors = 4;
    let multi_server = Server::new(multi_config);
    let single_listener = BoundListener::bind(&single_addr).expect("bind bench socket");
    let multi_listener = BoundListener::bind(&multi_addr).expect("bind bench socket");
    let stop = AtomicBool::new(false);
    let (socket_single, socket_concurrent) = std::thread::scope(|scope| {
        let serving_single = scope.spawn(|| {
            single_listener
                .serve(&single_server, &TransportConfig::default(), &stop)
                .expect("serve bench socket")
        });
        let serving_multi = scope.spawn(|| {
            multi_listener
                .serve(&multi_server, &TransportConfig::default(), &stop)
                .expect("serve bench socket")
        });
        let run_wave = |addr: &ListenAddr, sessions: &[Vec<String>]| -> BTreeMap<String, String> {
            let responses = Mutex::new(BTreeMap::new());
            std::thread::scope(|clients| {
                let responses = &responses;
                for lines in sessions {
                    clients.spawn(move || {
                        let stream = ClientStream::connect(addr).expect("connect");
                        let mut uplink = stream.try_clone().expect("clone connection");
                        for line in lines {
                            writeln!(uplink, "{line}").expect("send request");
                        }
                        uplink.flush().expect("flush requests");
                        uplink.shutdown_write();
                        for line in BufReader::new(stream).lines() {
                            let line = line.expect("read response");
                            match serde_json::from_str::<ServerFrame>(&line)
                                .expect("server frame parses")
                            {
                                ServerFrame::Result(result) => {
                                    responses.lock().unwrap().insert(result.request_id, line);
                                }
                                ServerFrame::Error(error) => {
                                    panic!("bench request failed: {}", error.message)
                                }
                                ServerFrame::Bye(_) => {}
                            }
                        }
                    });
                }
            });
            responses.into_inner().expect("no client panicked")
        };
        // Bit-identity across modes before timing: the same wave through
        // both servers must answer identical per-request lines.
        let single_check = run_wave(&single_addr, &[waves[0].concat()]);
        let multi_check = run_wave(&multi_addr, &waves[0]);
        assert_eq!(single_check.len(), 32, "every request answered");
        assert_eq!(
            single_check, multi_check,
            "concurrent connections diverged from the single-connection replay"
        );
        // Each server sees each wave exactly once, so every timed request
        // is a cold session and a cold cache entry.
        let mut single_next = 1;
        let single = measure("service/single_connection", || {
            let wave = &waves[single_next];
            single_next += 1;
            run_wave(&single_addr, &[wave.concat()])
        });
        let mut multi_next = 1;
        let concurrent = measure("service/concurrent_connections", || {
            let wave = &waves[multi_next];
            multi_next += 1;
            run_wave(&multi_addr, wave)
        });
        stop.store(true, Ordering::SeqCst);
        serving_single.join().expect("listener thread");
        serving_multi.join().expect("listener thread");
        (single, concurrent)
    });
    let socket_speedup = socket_single.mean_seconds / socket_concurrent.mean_seconds;
    println!(
        "\nsocket transport: {socket_speedup:.1}x four connections / four executors \
         over one / one (informational)\n"
    );
    measurements.push(socket_single);
    measurements.push(socket_concurrent);

    let report = BenchReport {
        schema: "soctest-perf-baseline/v1".to_string(),
        threads: rayon::current_num_threads(),
        timetable_build: TimeTableComparison {
            soc: pnx.name().to_string(),
            modules: pnx.num_modules(),
            max_width,
            fast_mean_seconds: fast.mean_seconds,
            naive_mean_seconds: naive.mean_seconds,
            speedup,
            tables_identical,
        },
        lazy_timetable: lazy_stats,
        measurements,
    };
    let lazy_ratio = report.lazy_timetable.ratio;
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(REPORT_PATH, format!("{json}\n")).expect("write BENCH_optimizer.json");
    println!("wrote {REPORT_PATH}");

    assert!(
        tables_identical,
        "fast and naive TimeTable builds disagree — the row kernel is wrong"
    );
    assert!(
        lazy_ratio < 1.0,
        "the lazy table materialised the whole width grid — laziness lost"
    );
    assert!(
        cache_speedup >= 5.0,
        "solution-cache hits are only {cache_speedup:.1}x faster than cold \
         computation — below the 5x floor"
    );
    if speedup < 10.0 {
        eprintln!("WARNING: timetable_build speedup {speedup:.1}x is below the 10x target");
        std::process::exit(2);
    }
}
