//! Figure 7(a): unique-device throughput versus vector-memory depth for a
//! range of contact yields (re-test of contact failures enabled).

use soctest_bench::{fig6b_depths, fig7a_contact_yields, paper_config, pnx_soc};
use soctest_multisite::report::format_sweep_curves;
use soctest_multisite::sweep::contact_yield_sweep;

fn main() {
    let soc = pnx_soc();
    let config = paper_config();
    let curves = contact_yield_sweep(&soc, &config, &fig6b_depths(), &fig7a_contact_yields())
        .expect("all depths are feasible");
    print!(
        "{}",
        format_sweep_curves(
            "=== Figure 7(a): unique throughput vs. depth, per contact yield ===",
            "depth [vectors]",
            &curves
        )
    );
    // The paper's observation: the throughput penalty of re-testing shrinks
    // as the vector memory gets deeper (fewer contacted channels per site).
    let worst = curves.last().expect("at least one curve");
    let ideal = curves.first().expect("at least one curve");
    let penalty = |curve: &soctest_multisite::sweep::SweepCurve, idx: usize| {
        1.0 - curve.points[idx].optimal.unique_devices_per_hour
            / ideal.points[idx].optimal.unique_devices_per_hour
    };
    let last = worst.points.len() - 1;
    println!(
        "Re-test penalty at pc={}: {:.1}% at the shallowest depth vs {:.1}% at the deepest.",
        worst.label.trim_start_matches("pc = "),
        100.0 * penalty(worst, 0),
        100.0 * penalty(worst, last)
    );
}
