//! Figure 5: throughput versus number of sites for the PNX8550 stand-in,
//! with and without stimulus broadcast, Step 1-only versus Step 1+2.

use soctest_bench::{paper_config, pnx_soc};
use soctest_multisite::optimizer::{optimize, step1_only_curve};
use soctest_multisite::problem::MultiSiteOptions;
use soctest_multisite::report::format_throughput_curve;

fn main() {
    let soc = pnx_soc();

    for (label, options) in [
        ("without stimulus broadcast", MultiSiteOptions::baseline()),
        (
            "with stimulus broadcast",
            MultiSiteOptions::baseline().with_broadcast(),
        ),
    ] {
        let config = paper_config().with_options(options);
        let solution = optimize(&soc, &config).expect("PNX8550 stand-in fits the paper ATE");
        println!("=== Figure 5 ({label}) ===");
        print!("{}", format_throughput_curve(&solution));
        println!(
            "Step 2 gain over stopping at n_max: {:.1}%",
            100.0 * solution.step2_gain()
        );

        // The dashed "Step 1 only" line of the figure: no channel
        // redistribution, test time fixed at the Step 1 architecture.
        let step1_curve =
            step1_only_curve(&solution.step1_architecture, &config, solution.max_sites);
        println!("Step 1 only (dashed line): n -> D_th");
        for point in &step1_curve {
            println!("  {:>3} -> {:>10.1}", point.sites, point.devices_per_hour);
        }

        // The site-cap comparison quoted in the text ("if the multi-site is
        // limited to, say, n = 4, Steps 1+2 together result in 34% more
        // throughput than Step 1 only").
        let cap = (solution.max_sites / 2).max(1);
        let capped_full = solution
            .best_under_site_cap(cap)
            .expect("cap is at least one site");
        let capped_step1 = step1_curve
            .iter()
            .filter(|p| p.sites <= cap)
            .map(|p| p.devices_per_hour)
            .fold(f64::MIN, f64::max);
        println!(
            "Site cap n <= {cap}: Step 1+2 = {:.0}/h, Step 1 only = {:.0}/h (gain {:.0}%)\n",
            capped_full.devices_per_hour,
            capped_step1,
            100.0 * (capped_full.devices_per_hour / capped_step1 - 1.0)
        );
    }
}
