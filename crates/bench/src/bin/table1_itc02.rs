//! Table 1: minimum ATE channel count and maximum multi-site for the ITC'02
//! SOC Test Benchmarks, comparing the theoretical lower bound, the rectangle
//! bin-packing baseline of Iyengar et al. (reference \[7\]) and Step 1 of the
//! paper's algorithm. As in the paper, stimulus broadcast is assumed and
//! only Step 1 is applied.

use soctest_bench::{format_depth, table1_cases};
use soctest_tam::baseline::{lower_bound_channels, pack_with_table};
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;

fn main() {
    println!(
        "=== Table 1: ATE channels k and maximum multi-site n_max (with stimulus broadcast) ==="
    );
    println!(
        "{:<10} {:>10} | {:>6} {:>8} {:>6} | {:>8} {:>6}",
        "SOC", "depth", "LB k", "[7] k", "Us k", "[7] n", "Us n"
    );
    let mut ours_wins_or_ties = 0usize;
    let mut rows = 0usize;
    for (soc, ate_channels, depths) in table1_cases() {
        let table = TimeTable::build(&soc, ate_channels / 2);
        for depth in depths {
            let lb = lower_bound_channels(&table, depth);
            let ours = design_with_table(&table, ate_channels, depth);
            let baseline = pack_with_table(&table, ate_channels, depth);
            match (lb, ours, baseline) {
                (Some(lb), Ok(ours), Ok(baseline)) => {
                    let base_arch = &baseline.architecture;
                    let n_base = base_arch.max_sites_with_broadcast(ate_channels);
                    let n_ours = ours.max_sites_with_broadcast(ate_channels);
                    rows += 1;
                    if n_ours >= n_base {
                        ours_wins_or_ties += 1;
                    }
                    println!(
                        "{:<10} {:>10} | {:>6} {:>8} {:>6} | {:>8} {:>6}",
                        soc.name(),
                        format_depth(depth),
                        lb,
                        base_arch.total_channels(),
                        ours.total_channels(),
                        n_base,
                        n_ours
                    );
                }
                _ => println!(
                    "{:<10} {:>10} | infeasible on {} channels",
                    soc.name(),
                    format_depth(depth),
                    ate_channels
                ),
            }
        }
    }
    println!(
        "\nStep 1 reaches at least the baseline's multi-site in {ours_wins_or_ties} of {rows} rows \
         (paper: all rows except one)."
    );
}
