//! The Section 7 cost-effectiveness analysis: doubling the ATE vector
//! memory versus spending the same money on additional ATE channels.

use soctest_ate::AteCostModel;
use soctest_bench::{paper_config, pnx_soc};
use soctest_multisite::sweep::cost_effectiveness;

fn main() {
    let soc = pnx_soc();
    let config = paper_config();
    let prices = AteCostModel::paper_prices();
    let result = cost_effectiveness(&soc, &config, &prices)
        .expect("the PNX8550 stand-in fits the paper ATE");

    println!("=== Section 7 cost analysis: memory depth vs. channel count ===");
    println!(
        "Base test cell: 512 channels x 7M vectors  -> {:.0} devices/hour",
        result.base_devices_per_hour
    );
    println!(
        "Double the vector memory (cost ${:.0})      -> {:.0} devices/hour ({:+.1}%)",
        result.memory_upgrade_cost_usd,
        result.memory_upgrade_devices_per_hour,
        100.0 * result.memory_gain()
    );
    println!(
        "Buy {} extra channels instead (cost ${:.0}) -> {:.0} devices/hour ({:+.1}%)",
        result.equivalent_extra_channels,
        result.channel_upgrade_cost_usd,
        result.channel_upgrade_devices_per_hour,
        100.0 * result.channel_gain()
    );
    println!(
        "Conclusion: for the same money, {} is the more effective upgrade (paper: memory, +27% vs +18%).",
        if result.memory_wins() { "deeper vector memory" } else { "more channels" }
    );
}
