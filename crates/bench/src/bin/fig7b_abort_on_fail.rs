//! Figure 7(b): expected test application time versus number of sites for a
//! range of manufacturing yields, under the abort-on-fail strategy.

use soctest_bench::{fig7b_manufacturing_yields, paper_config, pnx_soc};
use soctest_multisite::sweep::abort_on_fail_sweep;

fn main() {
    let soc = pnx_soc();
    let config = paper_config();
    let curves = abort_on_fail_sweep(&soc, &config, 8, &fig7b_manufacturing_yields())
        .expect("the PNX8550 stand-in fits the paper ATE");

    println!("=== Figure 7(b): expected test time [s] vs. number of sites, per yield ===");
    print!("{:>6}", "n");
    for curve in &curves {
        print!(" {:>10}", curve.label);
    }
    println!();
    let rows = curves[0].points.len();
    for row in 0..rows {
        print!("{:>6}", curves[0].points[row].optimal.sites);
        for curve in &curves {
            print!(" {:>10.3}", curve.points[row].optimal.expected_test_time_s);
        }
        println!();
    }

    let lossy = curves.last().expect("at least one curve");
    let full = curves[0].points[0].optimal.expected_test_time_s;
    let beyond = lossy
        .points
        .iter()
        .find(|p| p.optimal.expected_test_time_s > 0.99 * full)
        .map(|p| p.optimal.sites);
    println!(
        "At {} the abort-on-fail benefit becomes invisible beyond n = {:?} (paper: beyond n = 5).",
        lossy.label, beyond
    );
}
