//! Figure 6(b): throughput versus vector-memory depth (5 M..14 M) for the
//! PNX8550 stand-in.

use soctest_bench::{fig6b_depths, paper_config, pnx_soc};
use soctest_multisite::report::format_sweep;
use soctest_multisite::sweep::depth_sweep;

fn main() {
    let soc = pnx_soc();
    let config = paper_config();
    let depths = fig6b_depths();
    let points = depth_sweep(&soc, &config, &depths).expect("all depths are feasible");
    print!(
        "{}",
        format_sweep(
            "=== Figure 6(b): throughput vs. vector memory depth ===",
            "depth [vectors]",
            "D_th [/h]",
            &points
        )
    );
    let at = |megavectors: u64| {
        points
            .iter()
            .find(|p| p.parameter.as_u64() == megavectors * 1024 * 1024)
            .map(|p| p.optimal.devices_per_hour)
    };
    if let (Some(d7), Some(d14)) = (at(7), at(14)) {
        println!(
            "Doubling the depth (7M -> 14M) multiplies throughput by {:.2} (paper: ~1.27, sub-linear).",
            d14 / d7
        );
    }
}
