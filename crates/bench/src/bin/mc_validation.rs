//! Monte-Carlo validation of the analytic throughput model: simulate the
//! wafer-test flow at the optimizer's chosen operating point and compare the
//! measured throughput with the Equation 4.5/4.6 predictions.

use soctest_bench::{paper_config, pnx_soc};
use soctest_multisite::optimizer::optimize;
use soctest_multisite::problem::MultiSiteOptions;
use soctest_wafersim::{relative_error, simulate_flow, FlowParams};

fn main() {
    let soc = pnx_soc();
    println!("=== Monte-Carlo validation of the throughput model ===");
    println!(
        "{:<42} {:>12} {:>12} {:>8}",
        "scenario", "predicted/h", "measured/h", "error"
    );

    let scenarios = [
        (
            "ideal yields, no abort, no re-test",
            1.0,
            1.0,
            MultiSiteOptions::baseline(),
        ),
        (
            "pm=0.85 with abort-on-fail",
            1.0,
            0.85,
            MultiSiteOptions::baseline().with_abort_on_fail(),
        ),
        (
            "pc=0.999 with re-test",
            0.999,
            1.0,
            MultiSiteOptions::baseline().with_retest(),
        ),
    ];

    for (label, contact_yield, manufacturing_yield, options) in scenarios {
        let config = paper_config()
            .with_options(options)
            .with_contact_yield(contact_yield)
            .with_manufacturing_yield(manufacturing_yield);
        let solution = optimize(&soc, &config).expect("PNX8550 stand-in fits the paper ATE");
        let flow = FlowParams::from_solution(&solution, &config);
        let dies = flow.sites * 2_000;
        let outcome = simulate_flow(&flow, dies, 2005);
        let predicted = solution.optimal.objective();
        let measured = if config.options.retest_contact_failures {
            outcome.unique_devices_per_hour
        } else {
            outcome.devices_per_hour
        };
        println!(
            "{:<42} {:>12.1} {:>12.1} {:>7.2}%",
            label,
            predicted,
            measured,
            100.0 * relative_error(measured, predicted)
        );
    }
}
