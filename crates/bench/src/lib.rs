//! Shared helpers for the benchmark harness.
//!
//! Every figure and table of the paper's evaluation section (Section 7) has
//! a dedicated binary in `src/bin/` that regenerates it; the Criterion
//! benches in `benches/` time the underlying algorithms. This library crate
//! holds the experiment parameters they all share, so that the PNX8550
//! stand-in, the target ATE and the probe station are configured in exactly
//! one place. (`soctest-experiments` reuses the same parameters for its
//! dense-grid artifact regeneration.)
//!
//! # Example
//!
//! ```
//! use soctest_bench::{fig6a_channel_counts, paper_config, pnx_soc};
//!
//! // The Section 7 experiment setup: the 274-module PNX8550 stand-in on
//! // the paper's 512-channel, 7 M-vector test cell.
//! assert_eq!(pnx_soc().num_modules(), 274);
//! assert_eq!(paper_config().test_cell.ate.channels, 512);
//! assert_eq!(fig6a_channel_counts(), (0..=8).map(|i| 512 + 64 * i).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use soctest_ate::spec::MEGA_VECTORS;
use soctest_multisite::problem::OptimizerConfig;
use soctest_soc_model::synthetic::pnx8550_like;
use soctest_soc_model::Soc;

/// The PNX8550 stand-in used by all Section 7 experiments.
pub fn pnx_soc() -> Soc {
    pnx8550_like()
}

/// The paper's Section 7 configuration: 512-channel ATE, 7 M vectors per
/// channel, 5 MHz test clock, 100 ms index time, 1 ms contact test, no
/// stimulus broadcast, ideal yields.
pub fn paper_config() -> OptimizerConfig {
    OptimizerConfig::paper_section7()
}

/// The channel counts swept in Figure 6(a): 512 to 1024 in steps of 64.
pub fn fig6a_channel_counts() -> Vec<usize> {
    (0..=8).map(|i| 512 + 64 * i).collect()
}

/// The vector-memory depths swept in Figure 6(b) and 7(a): 5 M to 14 M.
pub fn fig6b_depths() -> Vec<u64> {
    (5..=14).map(|m| m * MEGA_VECTORS).collect()
}

/// The contact yields of Figure 7(a).
pub fn fig7a_contact_yields() -> Vec<f64> {
    vec![1.0, 0.9999, 0.9998, 0.999, 0.998, 0.99]
}

/// The manufacturing yields of Figure 7(b).
pub fn fig7b_manufacturing_yields() -> Vec<f64> {
    vec![1.0, 0.98, 0.95, 0.90, 0.80, 0.70]
}

/// The Table 1 sweep: for each ITC'02 SOC, the ATE channel count used for
/// the multi-site computation and the list of vector-memory depths.
pub fn table1_cases() -> Vec<(Soc, usize, Vec<u64>)> {
    use soctest_soc_model::benchmarks::{d695, p22810, p34392, p93791};
    vec![
        (d695(), 256, (0..11).map(|i| (48 + 8 * i) * 1024).collect()),
        (
            p22810(),
            512,
            (0..11).map(|i| (384 + 64 * i) * 1024).collect(),
        ),
        (
            p34392(),
            512,
            vec![
                768 * 1024,
                896 * 1024,
                1_000_000,
                1_128_000,
                1_256_000,
                1_384_000,
                1_512_000,
                1_640_000,
                1_768_000,
                1_896_000,
                2_000_000,
            ],
        ),
        (
            p93791(),
            512,
            vec![
                1_000_000, 1_256_000, 1_512_000, 1_768_000, 2_000_000, 2_256_000, 2_512_000,
                2_768_000, 3_000_000, 3_256_000, 3_512_000,
            ],
        ),
    ]
}

/// Formats a depth in the paper's "K / M" notation.
pub fn format_depth(depth: u64) -> String {
    if depth >= 1_000_000 {
        format!("{:.3}M", depth as f64 / 1.0e6)
    } else {
        format!("{}K", depth / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_parameters_match_the_paper() {
        assert_eq!(fig6a_channel_counts().first(), Some(&512));
        assert_eq!(fig6a_channel_counts().last(), Some(&1024));
        assert_eq!(fig6b_depths().len(), 10);
        assert_eq!(fig7a_contact_yields().len(), 6);
        assert_eq!(fig7b_manufacturing_yields().len(), 6);
        assert_eq!(table1_cases().len(), 4);
        assert!(table1_cases()
            .iter()
            .all(|(_, _, depths)| depths.len() == 11));
    }

    #[test]
    fn depth_formatting() {
        assert_eq!(format_depth(48 * 1024), "48K");
        assert_eq!(format_depth(1_256_000), "1.256M");
    }

    #[test]
    fn paper_config_is_the_512_channel_cell() {
        assert_eq!(paper_config().test_cell.ate.channels, 512);
        assert_eq!(pnx_soc().num_modules(), 274);
    }
}
