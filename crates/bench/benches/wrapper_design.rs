//! Criterion benchmarks of the COMBINE wrapper design and the time-table
//! construction it feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctest_soc_model::benchmarks::p93791;
use soctest_soc_model::synthetic::pnx8550_like;
use soctest_tam::TimeTable;
use soctest_wrapper::combine::design_wrapper;
use soctest_wrapper::pareto::pareto_widths;

fn bench_combine(c: &mut Criterion) {
    let soc = p93791();
    let biggest = soc
        .modules()
        .iter()
        .max_by_key(|m| m.total_scan_flip_flops())
        .expect("p93791 has modules")
        .clone();
    let mut group = c.benchmark_group("combine_wrapper_design");
    for width in [1usize, 8, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| design_wrapper(&biggest, w));
        });
    }
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let soc = p93791();
    let biggest = soc
        .modules()
        .iter()
        .max_by_key(|m| m.total_scan_flip_flops())
        .expect("p93791 has modules")
        .clone();
    c.bench_function("pareto_widths_to_64", |b| {
        b.iter(|| pareto_widths(&biggest, 64));
    });
}

fn bench_timetable(c: &mut Criterion) {
    let mut group = c.benchmark_group("timetable_build");
    group.sample_size(10);
    let itc = p93791();
    group.bench_function("p93791_width_256", |b| {
        b.iter(|| TimeTable::build(&itc, 256));
    });
    let pnx = pnx8550_like();
    group.bench_function("pnx8550_like_width_256", |b| {
        b.iter(|| TimeTable::build(&pnx, 256));
    });
    group.finish();
}

criterion_group!(benches, bench_combine, bench_pareto, bench_timetable);
criterion_main!(benches);
