//! Criterion benchmarks timing the regeneration of each figure / table of
//! the paper's evaluation section. Each benchmark runs the same computation
//! as the corresponding `src/bin/` generator (with the Monte-Carlo die count
//! reduced), so `cargo bench` both exercises and times every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use soctest_ate::AteCostModel;
use soctest_bench::{
    fig6a_channel_counts, fig6b_depths, fig7a_contact_yields, fig7b_manufacturing_yields,
    paper_config, pnx_soc, table1_cases,
};
use soctest_multisite::optimizer::optimize;
use soctest_multisite::problem::MultiSiteOptions;
use soctest_multisite::sweep::{
    abort_on_fail_sweep, channel_sweep, contact_yield_sweep, cost_effectiveness, depth_sweep,
};
use soctest_tam::baseline::pack_with_table;
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;
use soctest_wafersim::{simulate_flow, FlowParams};

fn bench_fig5(c: &mut Criterion) {
    let soc = pnx_soc();
    let mut group = c.benchmark_group("fig5_throughput_vs_sites");
    group.sample_size(10);
    group.bench_function("no_broadcast", |b| {
        let config = paper_config();
        b.iter(|| optimize(&soc, &config).expect("feasible"));
    });
    group.bench_function("broadcast", |b| {
        let config = paper_config().with_options(MultiSiteOptions::baseline().with_broadcast());
        b.iter(|| optimize(&soc, &config).expect("feasible"));
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let soc = pnx_soc();
    let config = paper_config();
    let mut group = c.benchmark_group("fig6_sweeps");
    group.sample_size(10);
    group.bench_function("fig6a_channel_sweep", |b| {
        let channels = fig6a_channel_counts();
        b.iter(|| channel_sweep(&soc, &config, &channels).expect("feasible"));
    });
    group.bench_function("fig6b_depth_sweep", |b| {
        let depths = fig6b_depths();
        b.iter(|| depth_sweep(&soc, &config, &depths).expect("feasible"));
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let soc = pnx_soc();
    let config = paper_config();
    let mut group = c.benchmark_group("fig7_yield_effects");
    group.sample_size(10);
    group.bench_function("fig7a_contact_yield_sweep", |b| {
        // Two depths are enough to time the computation shape.
        let depths = [
            fig6b_depths()[0],
            *fig6b_depths().last().expect("non-empty"),
        ];
        b.iter(|| {
            contact_yield_sweep(&soc, &config, &depths, &fig7a_contact_yields()).expect("feasible")
        });
    });
    group.bench_function("fig7b_abort_on_fail_sweep", |b| {
        b.iter(|| {
            abort_on_fail_sweep(&soc, &config, 8, &fig7b_manufacturing_yields()).expect("feasible")
        });
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_itc02");
    group.sample_size(10);
    group.bench_function("all_socs_all_depths", |b| {
        let cases = table1_cases();
        let tables: Vec<(TimeTable, usize, Vec<u64>)> = cases
            .iter()
            .map(|(soc, channels, depths)| {
                (
                    TimeTable::build(soc, channels / 2),
                    *channels,
                    depths.clone(),
                )
            })
            .collect();
        b.iter(|| {
            for (table, channels, depths) in &tables {
                for &depth in depths {
                    let _ = design_with_table(table, *channels, depth).expect("feasible");
                    let _ = pack_with_table(table, *channels, depth).expect("feasible");
                }
            }
        });
    });
    group.finish();
}

fn bench_cost_and_mc(c: &mut Criterion) {
    let soc = pnx_soc();
    let config = paper_config();
    let mut group = c.benchmark_group("cost_and_validation");
    group.sample_size(10);
    group.bench_function("cost_analysis", |b| {
        b.iter(|| {
            cost_effectiveness(&soc, &config, &AteCostModel::paper_prices()).expect("feasible")
        });
    });
    group.bench_function("mc_validation_flow", |b| {
        let solution = optimize(&soc, &config).expect("feasible");
        let flow = FlowParams::from_solution(&solution, &config);
        b.iter(|| simulate_flow(&flow, flow.sites * 200, 7));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_table1,
    bench_cost_and_mc
);
criterion_main!(benches);
