//! Criterion benchmarks of the two-step optimizer and its building blocks
//! on the ITC'02 benchmark SOCs and the PNX8550 stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::{optimizer::optimize, problem::OptimizerConfig};
use soctest_soc_model::benchmarks::{d695, p22810, p34392, p93791};
use soctest_soc_model::Soc;
use soctest_tam::baseline::pack_with_table;
use soctest_tam::step1::design_with_table;
use soctest_tam::TimeTable;

fn table1_depth_for(soc: &Soc) -> u64 {
    match soc.name() {
        "d695" => 64 * 1024,
        "p22810" => 512 * 1024,
        "p34392" => 1_256_000,
        _ => 2_000_000,
    }
}

fn bench_step1(c: &mut Criterion) {
    let mut group = c.benchmark_group("step1");
    group.sample_size(20);
    for soc in [d695(), p22810(), p34392(), p93791()] {
        let depth = table1_depth_for(&soc);
        let table = TimeTable::build(&soc, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(soc.name()),
            &table,
            |b, table| {
                b.iter(|| design_with_table(table, 512, depth).expect("feasible"));
            },
        );
    }
    group.finish();
}

fn bench_baseline_packer(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_rectangle_packing");
    group.sample_size(20);
    for soc in [d695(), p93791()] {
        let depth = table1_depth_for(&soc);
        let table = TimeTable::build(&soc, 256);
        group.bench_with_input(
            BenchmarkId::from_parameter(soc.name()),
            &table,
            |b, table| {
                b.iter(|| pack_with_table(table, 512, depth).expect("feasible"));
            },
        );
    }
    group.finish();
}

fn bench_full_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_step_optimizer");
    group.sample_size(10);
    let config = OptimizerConfig::new(TestCell::new(
        AteSpec::new(512, 2_000_000, 5.0e6),
        ProbeStation::paper_probe_station(),
    ));
    for soc in [d695(), p22810(), p93791()] {
        group.bench_with_input(BenchmarkId::from_parameter(soc.name()), &soc, |b, soc| {
            b.iter(|| optimize(soc, &config).expect("feasible"));
        });
    }
    // The full-size PNX8550 stand-in on the paper's test cell.
    let pnx = soctest_soc_model::synthetic::pnx8550_like();
    let paper = OptimizerConfig::paper_section7();
    group.bench_function("pnx8550_like", |b| {
        b.iter(|| optimize(&pnx, &paper).expect("feasible"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_step1,
    bench_baseline_packer,
    bench_full_optimizer
);
criterion_main!(benches);
