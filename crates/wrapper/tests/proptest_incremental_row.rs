//! Property proof that the incremental row evaluation (prefix-seeded LPT +
//! floor skip) is bit-identical to the non-incremental reference loop over
//! random module shapes and the full width range, plus directed edge-case
//! tests at the region boundaries.

use proptest::prelude::*;
use soctest_soc_model::Module;
use soctest_wrapper::row::{test_time_row, test_time_row_reference, RowKernel};

prop_compose! {
    fn arb_module()(
        patterns in 1u64..300,
        inputs in 0u32..150,
        outputs in 0u32..150,
        bidirs in 0u32..30,
        chains in proptest::collection::vec(0u64..500, 0..24),
    ) -> Module {
        Module::builder("prop")
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

// Modules whose chains are near-balanced reach the floor early, which is
// exactly the regime the skip optimises — generate them explicitly so the
// skip path is exercised on every run, not only when randomness obliges.
prop_compose! {
    fn arb_balanced_module()(
        patterns in 1u64..200,
        io in 0u32..80,
        chain_count in 1usize..24,
        base in 1u64..300,
        jitter in proptest::collection::vec(0u64..3, 24),
    ) -> Module {
        Module::builder("balanced")
            .patterns(patterns)
            .inputs(io)
            .outputs(io)
            .scan_chains((0..chain_count).map(|i| base + jitter[i]))
            .build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_row_is_bit_identical_to_reference(
        module in arb_module(),
        max_width in 1usize..300,
    ) {
        prop_assert_eq!(
            test_time_row(&module, max_width),
            test_time_row_reference(&module, max_width),
            "module {:?}",
            module
        );
    }

    #[test]
    fn incremental_row_is_bit_identical_on_balanced_chains(
        module in arb_balanced_module(),
        max_width in 1usize..300,
    ) {
        prop_assert_eq!(
            test_time_row(&module, max_width),
            test_time_row_reference(&module, max_width)
        );
    }

    #[test]
    fn kernel_reuse_does_not_leak_floor_state(
        first in arb_balanced_module(),
        second in arb_module(),
        max_width in 1usize..120,
    ) {
        // A module that hits the floor (and early-returns) must leave the
        // kernel scratch in a state that still evaluates the next module
        // correctly.
        let mut kernel = RowKernel::new();
        let _ = kernel.compute(&first, max_width);
        prop_assert_eq!(
            kernel.compute(&second, max_width),
            test_time_row_reference(&second, max_width)
        );
    }
}

#[test]
fn width_one_matches_reference() {
    // Width 1 serialises every chain and every cell onto one wrapper chain;
    // it is the narrow-region boundary (no prefix beyond the first chain).
    let module = Module::builder("w1")
        .patterns(17)
        .inputs(9)
        .outputs(4)
        .scan_chains([250u64, 40, 40, 40])
        .build();
    assert_eq!(
        test_time_row(&module, 1),
        test_time_row_reference(&module, 1)
    );
    // All chains plus the input cells shift in (scan-in 379), all chains
    // plus the output cells shift out (scan-out 374).
    assert_eq!(test_time_row(&module, 1)[0], (1 + 370 + 9) * 17 + (370 + 4));
}

#[test]
fn width_at_and_beyond_chain_count_matches_reference() {
    // Widths >= the chain count take the wide region (no LPT at all); the
    // row must stay exact across the narrow/wide boundary and deep into the
    // floor-filled tail.
    let module = Module::builder("wide")
        .patterns(29)
        .inputs(31)
        .outputs(18)
        .scan_chains([300u64, 200, 100, 50, 25])
        .build();
    let chains = 5;
    let row = test_time_row(&module, 4 * chains);
    assert_eq!(row, test_time_row_reference(&module, 4 * chains));
    // At the floor the time is exactly (1 + L)·p + L with L the longest
    // chain: the wrapper cells have spread below the longest chain.
    assert_eq!(*row.last().unwrap(), (1 + 300) * 29 + 300);
}

#[test]
fn floor_fill_is_exact_for_single_chain_memories() {
    // The PNX8550 stand-in's 212 memories all take this shape: one chain,
    // floor reached at width 2, remaining 254 widths filled.
    let memory = Module::builder("mem")
        .patterns(1700)
        .inputs(24)
        .outputs(24)
        .scan_chain(2100)
        .build();
    let row = test_time_row(&memory, 256);
    assert_eq!(row, test_time_row_reference(&memory, 256));
    assert_eq!(row[255], (1 + 2100) * 1700 + 2100);
}
