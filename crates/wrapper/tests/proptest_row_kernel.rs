//! Property proof that the fast row kernel is exact: for random modules,
//! `test_time_row(m, W)[w-1]` equals the full COMBINE wrapper design's
//! test time at every width `w`.

use proptest::prelude::*;
use soctest_soc_model::Module;
use soctest_wrapper::combine::{design_wrapper, min_width_for_time, test_time_at_width};
use soctest_wrapper::row::{test_time_row, RowKernel};

prop_compose! {
    fn arb_module()(
        patterns in 1u64..300,
        inputs in 0u32..150,
        outputs in 0u32..150,
        bidirs in 0u32..30,
        chains in proptest::collection::vec(0u64..500, 0..16),
    ) -> Module {
        Module::builder("prop")
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn row_equals_per_width_wrapper_designs(module in arb_module(), max_width in 1usize..40) {
        let row = test_time_row(&module, max_width);
        prop_assert_eq!(row.len(), max_width);
        for width in 1..=max_width {
            let design = design_wrapper(&module, width);
            prop_assert_eq!(
                row[width - 1],
                design.test_time_cycles(),
                "width {} of {} (module {:?})",
                width,
                max_width,
                module
            );
        }
    }

    #[test]
    fn reused_kernel_matches_one_shot_rows(
        first in arb_module(),
        second in arb_module(),
        max_width in 1usize..32,
    ) {
        // Scratch left over from one module must not leak into the next.
        let mut kernel = RowKernel::new();
        let _ = kernel.compute(&first, max_width);
        let reused = kernel.compute(&second, max_width);
        prop_assert_eq!(reused, test_time_row(&second, max_width));
    }

    #[test]
    fn row_is_monotone_non_increasing(module in arb_module()) {
        let row = test_time_row(&module, 48);
        for pair in row.windows(2) {
            prop_assert!(pair[1] <= pair[0], "row not monotone: {:?}", row);
        }
    }

    #[test]
    fn min_width_for_time_agrees_with_row(module in arb_module(), probe_width in 1usize..16) {
        let budget = test_time_at_width(&module, probe_width);
        let result = min_width_for_time(&module, budget, 24);
        let row = test_time_row(&module, 24);
        let expected = row.iter().position(|&t| t <= budget).map(|i| i + 1);
        prop_assert_eq!(result, expected);
    }
}
