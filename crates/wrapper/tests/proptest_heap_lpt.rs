//! Property proofs for the heap-based LPT and the single-width shape path.
//!
//! * [`lpt_partition`] (heap bin choice) must produce the *identical*
//!   partition — assignment and load vector, not just the load multiset —
//!   as the linear-scan [`lpt_partition_reference`], because the
//!   `(load, index)` heap pops the lexicographic minimum, which is exactly
//!   the first-on-ties least-loaded bin of the scan.
//! * [`ModuleShape::time_at`] must be bit-identical to the corresponding
//!   [`RowKernel`] row entry at every width, since `soctest_tam`'s lazy
//!   table serves single cells through it while the eager table serves the
//!   kernel's rows.

use proptest::collection::vec;
use proptest::prelude::*;
use soctest_soc_model::Module;
use soctest_wrapper::lpt::{lpt_partition, lpt_partition_reference};
use soctest_wrapper::row::{ModuleShape, RowKernel, ShapeScratch};

prop_compose! {
    fn arb_module()(
        chains in vec(0u64..5000, 0..24),
        patterns in 1u64..2000,
        inputs in 0u32..200,
        outputs in 0u32..200,
        bidirs in 0u32..50,
    ) -> Module {
        Module::builder("prop")
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

proptest! {
    #[test]
    fn heap_lpt_is_identical_to_scalar_scan(
        items in vec(0u64..10_000, 0..64),
        bins in 1usize..48,
    ) {
        let heap = lpt_partition(&items, bins);
        let scan = lpt_partition_reference(&items, bins);
        prop_assert_eq!(&heap.assignment, &scan.assignment);
        prop_assert_eq!(&heap.loads, &scan.loads);
    }

    #[test]
    fn heap_lpt_with_tie_heavy_items_is_identical(
        value in 1u64..10,
        count in 1usize..40,
        bins in 1usize..16,
    ) {
        // All-equal items maximise tie-break pressure on the bin choice.
        let items = vec![value; count];
        let heap = lpt_partition(&items, bins);
        let scan = lpt_partition_reference(&items, bins);
        prop_assert_eq!(heap, scan);
    }

    #[test]
    fn shape_time_at_matches_row_kernel(module in arb_module()) {
        let max_width = module.scan_chains().len() + 6;
        let row = RowKernel::new().compute(&module, max_width);
        let shape = ModuleShape::of(&module);
        let mut scratch = ShapeScratch::new();
        for width in 1..=max_width {
            prop_assert_eq!(
                shape.time_at(width, &mut scratch),
                row[width - 1],
                "width {}", width
            );
        }
    }
}
