//! Property-based tests for wrapper design invariants.

use proptest::prelude::*;
use soctest_soc_model::Module;
use soctest_wrapper::combine::{design_wrapper, min_width_for_time, test_time_at_width};
use soctest_wrapper::pareto::pareto_widths;
use soctest_wrapper::sim::simulate;

prop_compose! {
    fn arb_module()(
        patterns in 1u64..200,
        inputs in 0u32..100,
        outputs in 0u32..100,
        bidirs in 0u32..20,
        chains in proptest::collection::vec(1u64..400, 0..12),
    ) -> Module {
        Module::builder("prop")
            .patterns(patterns)
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan_chains(chains)
            .build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn design_conserves_scan_chains_and_cells(module in arb_module(), width in 1usize..10) {
        let design = design_wrapper(&module, width);
        prop_assert_eq!(design.width(), width);
        let total_ff: u64 = design.chains.iter().map(|c| c.scan_flip_flops).sum();
        prop_assert_eq!(total_ff, module.total_scan_flip_flops());
        let total_in: u64 = design.chains.iter().map(|c| c.input_cells).sum();
        prop_assert_eq!(total_in, module.wrapper_input_cells());
        let total_out: u64 = design.chains.iter().map(|c| c.output_cells).sum();
        prop_assert_eq!(total_out, module.wrapper_output_cells());
        let mut indices: Vec<usize> = design
            .chains
            .iter()
            .flat_map(|c| c.scan_chain_indices.iter().copied())
            .collect();
        indices.sort_unstable();
        let expected: Vec<usize> = (0..module.num_scan_chains()).collect();
        prop_assert_eq!(indices, expected);
    }

    #[test]
    fn test_time_is_monotone_non_increasing(module in arb_module()) {
        let mut prev = u64::MAX;
        for width in 1..=12 {
            let t = test_time_at_width(&module, width);
            prop_assert!(t <= prev, "width {} time {} > {}", width, t, prev);
            prev = t;
        }
    }

    #[test]
    fn test_time_never_undershoots_module_floor(module in arb_module(), width in 1usize..12) {
        // The floor assumes one wrapper chain per scan element.
        prop_assert!(test_time_at_width(&module, width) >= module.patterns());
        prop_assert!(
            test_time_at_width(&module, 64) >= module.test_time_floor_cycles().min(
                test_time_at_width(&module, 64)
            )
        );
    }

    #[test]
    fn simulation_agrees_with_closed_form(module in arb_module(), width in 1usize..8) {
        // Cap patterns so the explicit simulation stays cheap.
        let capped = Module::builder(module.name())
            .patterns(module.patterns().min(8))
            .inputs(module.inputs().min(30))
            .outputs(module.outputs().min(30))
            .bidirs(module.bidirs().min(5))
            .scan_chains(module.scan_chains().iter().map(|c| c.length.min(60)))
            .build();
        let design = design_wrapper(&capped, width);
        prop_assert_eq!(simulate(&design).cycles, design.test_time_cycles());
    }

    #[test]
    fn min_width_is_consistent_with_direct_evaluation(module in arb_module()) {
        let budget = test_time_at_width(&module, 4);
        if let Some(w) = min_width_for_time(&module, budget, 16) {
            prop_assert!(test_time_at_width(&module, w) <= budget);
            if w > 1 {
                prop_assert!(test_time_at_width(&module, w - 1) > budget);
            }
        } else {
            prop_assert!(test_time_at_width(&module, 16) > budget);
        }
    }

    #[test]
    fn pareto_points_are_strictly_improving(module in arb_module()) {
        let points = pareto_widths(&module, 16);
        prop_assert!(!points.is_empty());
        for pair in points.windows(2) {
            prop_assert!(pair[1].test_time_cycles < pair[0].test_time_cycles);
        }
        // Every Pareto time must be achievable at its width.
        for p in &points {
            prop_assert_eq!(test_time_at_width(&module, p.width), p.test_time_cycles);
        }
    }
}
