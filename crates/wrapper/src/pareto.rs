//! Pareto-optimal TAM widths for a module.
//!
//! The test time of a wrapped module is a non-increasing staircase function
//! of the TAM width: beyond some width the longest internal scan chain
//! dominates and extra wrapper chains no longer help. The TAM optimization
//! only ever needs to consider the widths at which the test time actually
//! drops — the *Pareto-optimal* widths.

use crate::combine::test_time_at_width;
use serde::{Deserialize, Serialize};
use soctest_soc_model::Module;

/// One Pareto-optimal `(width, test time)` point of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// TAM width in wrapper chains.
    pub width: usize,
    /// Test application time in cycles at that width.
    pub test_time_cycles: u64,
}

/// Enumerates the Pareto-optimal widths of `module` from 1 up to
/// `max_width`.
///
/// The returned list is ordered by increasing width and strictly decreasing
/// test time; the first entry is always width 1.
///
/// # Panics
///
/// Panics if `max_width == 0`.
///
/// # Example
///
/// ```
/// use soctest_soc_model::Module;
/// use soctest_wrapper::pareto::pareto_widths;
///
/// let m = Module::builder("m").patterns(10).scan_chains([50, 50, 50, 50]).build();
/// let points = pareto_widths(&m, 8);
/// assert_eq!(points.first().unwrap().width, 1);
/// // Width 3 gives the same makespan as width 2 (two chains of 100 vs 100/50/50),
/// // so it is not Pareto-optimal.
/// assert!(points.iter().all(|p| p.width != 3));
/// ```
pub fn pareto_widths(module: &Module, max_width: usize) -> Vec<ParetoPoint> {
    assert!(max_width > 0, "max_width must be at least 1");
    let mut points = Vec::new();
    let mut best = u64::MAX;
    for width in 1..=max_width {
        let t = test_time_at_width(module, width);
        if t < best {
            points.push(ParetoPoint {
                width,
                test_time_cycles: t,
            });
            best = t;
        }
    }
    points
}

/// The smallest width at which the module reaches its minimum test time
/// (searching up to `max_width`). Widths beyond the saturation width waste
/// ATE channels.
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn saturation_width(module: &Module, max_width: usize) -> usize {
    pareto_widths(module, max_width)
        .last()
        .map(|p| p.width)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::Module;

    fn module() -> Module {
        Module::builder("m")
            .patterns(20)
            .inputs(10)
            .outputs(10)
            .scan_chains([60u64, 50, 40, 30, 20, 10])
            .build()
    }

    #[test]
    fn pareto_points_strictly_decrease() {
        let points = pareto_widths(&module(), 16);
        for pair in points.windows(2) {
            assert!(pair[1].test_time_cycles < pair[0].test_time_cycles);
            assert!(pair[1].width > pair[0].width);
        }
    }

    #[test]
    fn first_point_is_width_one() {
        let points = pareto_widths(&module(), 16);
        assert_eq!(points[0].width, 1);
    }

    #[test]
    fn saturation_width_is_last_pareto_width() {
        let m = module();
        let points = pareto_widths(&m, 32);
        assert_eq!(saturation_width(&m, 32), points.last().unwrap().width);
    }

    #[test]
    fn saturation_never_exceeds_useful_width() {
        let m = module();
        let sat = saturation_width(&m, 64);
        // Beyond one chain per scan chain plus one per IO cell there is nothing to gain.
        assert!(sat <= 6 + 20);
        // And the time at saturation equals the time at the maximum width.
        assert_eq!(test_time_at_width(&m, sat), test_time_at_width(&m, 64),);
    }

    #[test]
    fn memory_like_module_saturates_immediately() {
        let m = Module::builder("mem")
            .patterns(1000)
            .inputs(4)
            .outputs(4)
            .scan_chain(500)
            .build();
        // One long chain: width 1 already achieves (1+504)*1000 + ...; more
        // width only strips the few IO cells off.
        let sat = saturation_width(&m, 16);
        assert!(sat <= 3);
    }

    #[test]
    fn pareto_respects_max_width_cap() {
        let points = pareto_widths(&module(), 2);
        assert!(points.iter().all(|p| p.width <= 2));
    }

    #[test]
    #[should_panic(expected = "max_width")]
    fn zero_max_width_panics() {
        let _ = pareto_widths(&module(), 0);
    }
}
