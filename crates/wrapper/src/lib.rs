//! Core test-wrapper design and the E-RPCT chip-level wrapper.
//!
//! This crate implements the wrapper side of the on-chip test infrastructure
//! of Goel & Marinissen (DATE 2005):
//!
//! * [`combine`] — the COMBINE wrapper-design algorithm of Marinissen, Goel &
//!   Lousberg (ITC 2000, reference \[14\] of the paper): given a module and a
//!   TAM width `w`, partition the module's internal scan chains and its
//!   functional terminals over `w` wrapper chains such that the test
//!   application time is minimised,
//! * [`design`] — the resulting [`WrapperDesign`] and the test-time model
//!   `t(w) = (1 + max(si, so)) · p + min(si, so)`,
//! * [`row`] — the fast evaluation kernel: computes the whole test-time
//!   row `t(m, 1..=W)` allocation-free (one chain sort per module, LPT
//!   into reusable buffers, closed-form water-fill levels) without
//!   materialising wrapper designs,
//! * [`pareto`] — enumeration of Pareto-optimal TAM widths for a module,
//! * [`erpct`] — the Enhanced Reduced-Pin-Count-Test chip-level wrapper that
//!   converts `k` external ATE channels into `w` internal test terminals,
//! * [`sim`] — a cycle-accurate shift simulation used to validate the
//!   test-time formula against an explicit schedule.
//!
//! # Two levels of fidelity
//!
//! [`combine::design_wrapper`] is the full-fidelity path: it returns a
//! complete [`WrapperDesign`] (chain membership, cell placement) and is
//! what a DfT netlist would be generated from. [`row::test_time_row`] /
//! [`row::RowKernel`] is the fast path: it returns only the test times,
//! orders of magnitude faster, and is what the architecture optimizers
//! iterate on. Property tests prove the two agree at every width.
//!
//! # Example
//!
//! ```
//! use soctest_soc_model::Module;
//! use soctest_wrapper::combine::design_wrapper;
//!
//! let module = Module::builder("core")
//!     .patterns(100)
//!     .inputs(20)
//!     .outputs(30)
//!     .scan_chains([120, 110, 100, 90])
//!     .build();
//! let design = design_wrapper(&module, 4);
//! assert_eq!(design.width(), 4);
//! // Four wrapper chains of roughly (scan + io/4) bits each.
//! assert!(design.test_time_cycles() < design_wrapper(&module, 1).test_time_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combine;
pub mod design;
pub mod erpct;
pub mod lpt;
pub mod pareto;
pub mod row;
pub mod sim;

pub use combine::design_wrapper;
pub use design::{WrapperChain, WrapperDesign};
pub use erpct::{ErpctConfig, ErpctWrapper};
pub use pareto::{pareto_widths, saturation_width, ParetoPoint};
pub use row::{test_time_row, RowKernel};
