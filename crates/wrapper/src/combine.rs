//! The COMBINE wrapper-design algorithm.
//!
//! COMBINE (Marinissen, Goel & Lousberg, ITC 2000 — reference \[14\] of the
//! paper) designs a core test wrapper for a given TAM width `w`:
//!
//! 1. the module's internal scan chains are partitioned over the `w` wrapper
//!    chains with the LPT rule, minimising the longest concatenation of
//!    internal chains;
//! 2. the wrapper *input* cells (functional inputs + bidirectionals) are
//!    distributed over the wrapper chains such that the longest scan-in
//!    chain is minimised (water filling on the scan-in lengths);
//! 3. the wrapper *output* cells (functional outputs + bidirectionals) are
//!    distributed likewise on the scan-out side.
//!
//! Because wrapper cells are single bits, steps 2 and 3 are solved exactly;
//! only step 1 is heuristic (makespan minimisation is NP-hard).

use crate::design::{WrapperChain, WrapperDesign};
use crate::lpt::{lpt_partition, water_fill};
use soctest_soc_model::Module;

/// Designs a wrapper for `module` with exactly `width` wrapper chains using
/// the COMBINE heuristic.
///
/// Widths larger than the module can exploit simply leave wrapper chains
/// empty; the returned design always has `width` chains.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// use soctest_soc_model::Module;
/// use soctest_wrapper::combine::design_wrapper;
///
/// let m = Module::builder("m").patterns(10).inputs(6).outputs(2).scan_chains([30, 20, 10]).build();
/// let w1 = design_wrapper(&m, 1);
/// let w3 = design_wrapper(&m, 3);
/// assert!(w3.test_time_cycles() <= w1.test_time_cycles());
/// ```
pub fn design_wrapper(module: &Module, width: usize) -> WrapperDesign {
    assert!(width > 0, "wrapper width must be at least 1");

    let scan_lengths: Vec<u64> = module.scan_chains().iter().map(|c| c.length).collect();
    let partition = lpt_partition(&scan_lengths, width);

    let mut chains: Vec<WrapperChain> = (0..width).map(|_| WrapperChain::empty()).collect();
    for (scan_idx, &bin) in partition.assignment.iter().enumerate() {
        chains[bin].scan_chain_indices.push(scan_idx);
        chains[bin].scan_flip_flops += scan_lengths[scan_idx];
    }

    // Distribute input cells to minimise max scan-in length.
    let scan_in_loads: Vec<u64> = chains.iter().map(WrapperChain::scan_in_length).collect();
    let added_inputs = water_fill(&scan_in_loads, module.wrapper_input_cells());
    for (chain, add) in chains.iter_mut().zip(&added_inputs) {
        chain.input_cells += add;
    }

    // Distribute output cells to minimise max scan-out length.
    let scan_out_loads: Vec<u64> = chains.iter().map(WrapperChain::scan_out_length).collect();
    let added_outputs = water_fill(&scan_out_loads, module.wrapper_output_cells());
    for (chain, add) in chains.iter_mut().zip(&added_outputs) {
        chain.output_cells += add;
    }

    WrapperDesign {
        module_name: module.name().to_string(),
        patterns: module.patterns(),
        chains,
    }
}

/// Test application time (in cycles) of `module` when wrapped at `width`
/// wrapper chains — shorthand for `design_wrapper(module, width).test_time_cycles()`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn test_time_at_width(module: &Module, width: usize) -> u64 {
    design_wrapper(module, width).test_time_cycles()
}

/// The smallest width (starting from 1, up to `max_width`) at which the
/// module's test time does not exceed `max_cycles`, or `None` if even
/// `max_width` is insufficient.
///
/// This is the `k_min`-style query used by Step 1 of the paper's algorithm
/// (the TAM crate converts widths into ATE channels).
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn min_width_for_time(module: &Module, max_cycles: u64, max_width: usize) -> Option<usize> {
    assert!(max_width > 0, "max_width must be at least 1");
    // Test time is non-increasing in width, so binary search applies. The
    // row kernel already computes the whole table `t(m, 1..=max_width)` in
    // one allocation-light pass, cheaper than even a handful of full
    // per-width wrapper designs — so build the row once and search it.
    // (`soctest_tam::TimeTable::min_width_for_time` answers the same query
    // when a table is already available.)
    let row = crate::row::test_time_row(module, max_width);
    // Times are non-increasing, so the infeasible prefix ends at the first
    // feasible index.
    let first_feasible = row.partition_point(|&t| t > max_cycles);
    (first_feasible < row.len()).then_some(first_feasible + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::Module;

    fn module() -> Module {
        Module::builder("core")
            .patterns(50)
            .inputs(12)
            .outputs(20)
            .bidirs(4)
            .scan_chains([100u64, 90, 80, 60, 40, 30])
            .build()
    }

    #[test]
    fn all_scan_chains_are_assigned_exactly_once() {
        let d = design_wrapper(&module(), 3);
        let mut seen: Vec<usize> = d
            .chains
            .iter()
            .flat_map(|c| c.scan_chain_indices.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn all_io_cells_are_placed() {
        let m = module();
        let d = design_wrapper(&m, 4);
        let inputs: u64 = d.chains.iter().map(|c| c.input_cells).sum();
        let outputs: u64 = d.chains.iter().map(|c| c.output_cells).sum();
        assert_eq!(inputs, m.wrapper_input_cells());
        assert_eq!(outputs, m.wrapper_output_cells());
    }

    #[test]
    fn test_time_is_non_increasing_in_width() {
        let m = module();
        let mut prev = u64::MAX;
        for w in 1..=12 {
            let t = test_time_at_width(&m, w);
            assert!(t <= prev, "width {w}: time {t} > previous {prev}");
            prev = t;
        }
    }

    #[test]
    fn width_one_is_fully_serial() {
        let m = module();
        let d = design_wrapper(&m, 1);
        let si = m.total_scan_flip_flops() + m.wrapper_input_cells();
        let so = m.total_scan_flip_flops() + m.wrapper_output_cells();
        assert_eq!(d.scan_in_max(), si);
        assert_eq!(d.scan_out_max(), so);
        assert_eq!(d.test_time_cycles(), (1 + si.max(so)) * 50 + si.min(so));
    }

    #[test]
    fn wide_wrapper_reaches_the_module_floor() {
        let m = module();
        // With ample width, the longest internal scan chain dominates.
        let d = design_wrapper(&m, 64);
        assert_eq!(d.scan_in_max(), 100);
        assert!(d.test_time_cycles() <= m.test_time_floor_cycles());
    }

    #[test]
    fn combinational_core_uses_io_cells_only() {
        let m = Module::builder("comb")
            .patterns(12)
            .inputs(32)
            .outputs(32)
            .build();
        let d = design_wrapper(&m, 8);
        assert_eq!(d.scan_in_max(), 4);
        assert_eq!(d.scan_out_max(), 4);
        assert_eq!(d.test_time_cycles(), (1 + 4) * 12 + 4);
    }

    #[test]
    fn module_without_anything_still_produces_design() {
        let m = Module::builder("void").patterns(3).build();
        let d = design_wrapper(&m, 2);
        assert_eq!(d.test_time_cycles(), 3);
        assert_eq!(d.empty_chains(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let _ = design_wrapper(&module(), 0);
    }

    #[test]
    fn min_width_for_time_finds_smallest_feasible_width() {
        let m = module();
        let budget = test_time_at_width(&m, 3);
        let w = min_width_for_time(&m, budget, 32).unwrap();
        assert!(w <= 3);
        assert!(test_time_at_width(&m, w) <= budget);
        if w > 1 {
            assert!(test_time_at_width(&m, w - 1) > budget);
        }
    }

    #[test]
    fn min_width_for_time_none_when_infeasible() {
        let m = module();
        assert_eq!(min_width_for_time(&m, 10, 64), None);
    }

    #[test]
    fn min_width_handles_generous_budget() {
        let m = module();
        assert_eq!(min_width_for_time(&m, u64::MAX, 64), Some(1));
    }

    #[test]
    fn d695_width_16_matches_published_operating_point() {
        // The d695 benchmark is well studied: at a total TAM width of 16 its
        // SOC test time is in the low-40k cycle range. Check that the sum of
        // per-module times at width 16 (every module scheduled serially on
        // one 16-chain-wide TAM) lands in that ballpark, which anchors our
        // COMBINE implementation against the literature.
        let soc = soctest_soc_model::benchmarks::d695();
        let serial_at_16: u64 = soc
            .modules()
            .iter()
            .map(|m| test_time_at_width(m, 16))
            .sum();
        // Coarse bound around the published ~42k-cycle operating point.
        assert!(serial_at_16 > 25_000, "got {serial_at_16}");
        assert!(serial_at_16 < 80_000, "got {serial_at_16}");
    }
}
