//! The fast test-time row kernel.
//!
//! Every architecture-design algorithm in the workspace ultimately asks
//! "what is module `m`'s test time at TAM width `w`?" for *all* widths
//! `1..=W`. Answering through [`crate::combine::design_wrapper`] per width
//! materialises a full [`crate::design::WrapperDesign`] each time: a
//! `Vec<WrapperChain>` (each chain holding its own `Vec` of scan-chain
//! indices), a cloned module-name `String`, a fresh sort of the scan-chain
//! lengths, and two iterative water-fill passes. None of that is needed for
//! the test *time*, which only depends on
//!
//! * the multiset of per-wrapper-chain scan loads the LPT partition
//!   produces, and
//! * the makespan after the wrapper input/output cells are water-levelled
//!   onto those loads.
//!
//! [`RowKernel`] computes the whole row `t(m, 1..=W)` in one call:
//!
//! * scan-chain lengths are sorted **once** per module, not once per width;
//! * LPT runs into a reusable load buffer — no `WrapperChain`, no
//!   assignment vector, no `String`;
//! * for widths `w >= s(m)` (at least as many wrapper chains as internal
//!   scan chains) the LPT loads are exactly the sorted chain lengths, so
//!   the per-width work degenerates to two closed-form water-fill levels;
//! * the water-fill makespan is computed in closed form —
//!   `max(level, max_load)` with `level = ceil((prefix + cells) / k)` for
//!   the first `k` bins with enough capacity — instead of the iterative
//!   bulk-levelling loop in [`crate::lpt::water_fill`].
//!
//! # Incremental evaluation across widths
//!
//! On top of the per-width fast paths, [`RowKernel::compute_into`] exploits
//! two exact relations *between* consecutive widths instead of treating
//! every width as an independent problem:
//!
//! * **Prefix seeding.** LPT breaks ties towards the lowest bin index, so
//!   on `w` empty bins the first `w` (longest) chains always land in bins
//!   `0..w`, one each. The width-`w` partition therefore starts from the
//!   sorted chain prefix directly, and LPT only has to place the remaining
//!   `s - w` chains.
//! * **Floor skip.** Every wrapper-chain load is at least the longest
//!   internal scan chain `L`, so `t(w) >= t_floor = (1 + L)·p + L` at
//!   *every* width. Once some width reaches the floor (both the scan-in and
//!   scan-out makespans equal `L`), every larger width does too, and the
//!   rest of the row is filled with `t_floor` without running LPT or the
//!   water fill again. Exactness of the skip rests on two facts: the
//!   leveled makespan is non-increasing in the number of empty bins while
//!   bounded below by the largest load, and LPT keeps its makespan at `L`
//!   when bins are added once it has achieved `L` (ties in LPT are
//!   load-multiset-neutral, so this holds for the load multiset the kernel
//!   consumes). A literal reuse of the width-`w+1` *partition* at width `w`
//!   would **not** be exact — LPT exhibits Graham-style anomalies under
//!   that transformation — which is why the incremental scheme is
//!   seeding + bounds-skip rather than partition carry-over.
//!
//! The kernel is the fast path; [`crate::combine::design_wrapper`] remains
//! the full-fidelity path that materialises real wrapper designs. The two
//! are proven equal (`row[w-1] == design_wrapper(m, w).test_time_cycles()`)
//! by the property tests in `tests/proptest_row_kernel.rs`, and the
//! incremental path is additionally proven bit-identical to the
//! non-incremental [`test_time_row_reference`] loop over random module
//! shapes by `tests/proptest_incremental_row.rs`.
//!
//! # Width monotonicity
//!
//! Several lookups bet on the row being **non-increasing in width** —
//! `partition_point` in `soctest_tam::TimeTable::min_width_for_time` and
//! [`crate::combine::min_width_for_time`], and the probing binary search of
//! `soctest_tam::LazyTimeTable`. LPT is a greedy list schedule, and list
//! schedules are notorious for Graham-style anomalies, so this is not
//! obvious — but for *independent* items (no precedence constraints, which
//! is the case here: scan chains impose no ordering) it is a theorem:
//!
//! **Lemma (count dominance).** Place the same sequence of items, each into
//! its currently least-loaded bin, once on `m` bins (loads `B`) and once on
//! `m + 1` bins (loads `A`). Then after every prefix of items and for every
//! level `x`: `|{a ∈ A : a ≤ x}| ≥ |{b ∈ B : b ≤ x}|`.
//! *Proof.* Induction over placements. Initially all loads are zero and
//! `m + 1 ≥ m`. For the step, let `a₁ = min A ≤ b₁ = min B` (the `x = a₁`
//! instance of the hypothesis) and let the next item be `p`; the schedules
//! move `a₁ → a₁ + p` and `b₁ → b₁ + p`. For `x < a₁` no counted element
//! changes on either side. For `a₁ ≤ x < b₁` the whole of `B` exceeds `x`
//! (its minimum does), so the right-hand count is zero and the claim is
//! trivial. For `x ≥ b₁` both sides lose exactly one element (`a₁`, `b₁`
//! are both ≤ x) and the additions satisfy `[a₁ + p ≤ x] ≥ [b₁ + p ≤ x]`
//! because `a₁ + p ≤ b₁ + p`. ∎
//!
//! **Corollary 1 — the LPT makespan never grows with the width.** Bin loads
//! only grow, so every bin's final load is the completion `μ(j) + pⱼ` of the
//! last item placed in it, where `μ(j)` is the minimum load right before
//! item `j` was placed; hence `makespan = maxⱼ (μ(j) + pⱼ)`. The `k = 1`
//! instance of the lemma gives `μ_{m+1}(j) ≤ μ_m(j)` for every `j`, and the
//! max over `j` preserves the inequality.
//!
//! **Corollary 2 — the leveled (water-filled) makespan never grows with the
//! width.** The exact water fill of `c` unit cells yields the smallest
//! level `L` with `L ≥ max load` and `capacity(L) = Σᵢ max(0, L − loadᵢ) ≥
//! c`. For integer loads `capacity(L) = Σ_{x=0}^{L−1} |{i : loadᵢ ≤ x}|`,
//! which by the lemma is no smaller on `m + 1` bins at every `L`, while
//! `max load` is no larger (Corollary 1). Every level feasible on `m` bins
//! is therefore feasible on `m + 1`, and the minimum can only shrink.
//!
//! Both scan-in and scan-out lengths are leveled makespans, and
//! `t = (1 + max(si, so)) · p + min(si, so)` is monotone in `(si, so)` (the
//! degenerate `si = so = 0 → t = p` case is width-independent: it requires a
//! module with no scan bits and no wrapper cells at all). Hence `t(w + 1) ≤
//! t(w)` for every module — the rows really are non-increasing staircases,
//! and first-feasible lookups may binary-search them. The property test
//! `monotonicity` in `crates/tam/tests/proptest_min_width.rs` cross-checks
//! the theorem (and the `partition_point` lookups against a linear
//! first-feasible scan) on random module shapes.

use crate::lpt::LoadHeap;
use soctest_soc_model::Module;

/// Reusable scratch state for computing test-time rows.
///
/// Construct once and feed it any number of modules: between calls the
/// internal buffers are retained, so a row computation performs no heap
/// allocation beyond (optionally) the output row itself.
///
/// # Example
///
/// ```
/// use soctest_soc_model::Module;
/// use soctest_wrapper::combine::design_wrapper;
/// use soctest_wrapper::row::RowKernel;
///
/// let module = Module::builder("core")
///     .patterns(100)
///     .inputs(20)
///     .outputs(30)
///     .scan_chains([120, 110, 100, 90])
///     .build();
/// let mut kernel = RowKernel::new();
/// let row = kernel.compute(&module, 8);
/// for width in 1..=8 {
///     assert_eq!(row[width - 1], design_wrapper(&module, width).test_time_cycles());
/// }
/// ```
#[derive(Debug, Default)]
pub struct RowKernel {
    /// Scan-chain lengths sorted descending (LPT insertion order).
    desc: Vec<u64>,
    /// Scan-chain lengths sorted ascending (water-fill order).
    asc: Vec<u64>,
    /// `(load, bin)` min-heap for the LPT widths (`w < s(m)`).
    heap: LoadHeap,
    /// Ascending copy of the LPT loads for the closed-form water fill.
    sorted: Vec<u64>,
}

impl RowKernel {
    /// Creates a kernel with empty scratch buffers.
    pub fn new() -> Self {
        RowKernel::default()
    }

    /// Computes the test-time row of `module` for widths `1..=max_width`
    /// into `out` (cleared first): `out[w - 1]` is the module's test
    /// application time in cycles at TAM width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn compute_into(&mut self, module: &Module, max_width: usize, out: &mut Vec<u64>) {
        assert!(max_width > 0, "wrapper width must be at least 1");
        out.clear();
        out.reserve(max_width);

        self.desc.clear();
        self.desc
            .extend(module.scan_chains().iter().map(|c| c.length));
        self.desc.sort_unstable_by(|a, b| b.cmp(a));
        self.asc.clear();
        self.asc.extend(self.desc.iter().rev());

        let chains = self.desc.len();
        let cells_in = module.wrapper_input_cells();
        let cells_out = module.wrapper_output_cells();
        let patterns = module.patterns();
        // The longest internal scan chain: the width-independent floor on
        // every wrapper-chain load (and 0 for purely combinational modules).
        let longest = self.desc.first().copied().unwrap_or(0);

        // Narrow widths (w < s(m)): run LPT on the reusable (load, bin)
        // min-heap — O(log w) per placed chain instead of a linear scan,
        // with the identical first-on-ties bin choice — then level the I/O
        // cells in closed form on a sorted copy. The partition is seeded
        // with the first `w` chains — on empty bins LPT provably places
        // chain `i < w` in bin `i` — so only the remaining `s - w` chains
        // are placed by search.
        let lpt_widths = max_width.min(chains.saturating_sub(1));
        for width in 1..=lpt_widths {
            self.heap.seed(&self.desc[..width]);
            for &length in &self.desc[width..] {
                self.heap.add_to_min(length);
            }
            self.sorted.clear();
            self.heap.extend_loads_into(&mut self.sorted);
            self.sorted.sort_unstable();
            let scan_in = leveled_makespan(0, &self.sorted, cells_in);
            let scan_out = leveled_makespan(0, &self.sorted, cells_out);
            out.push(test_time(patterns, scan_in, scan_out));
            if scan_in == longest && scan_out == longest {
                // Floor reached: every remaining width yields the same time.
                out.resize(max_width, test_time(patterns, longest, longest));
                return;
            }
        }

        // Wide widths (w >= s(m)): LPT gives every scan chain its own
        // wrapper chain, so the load multiset is the sorted chain lengths
        // plus `w - s(m)` empty chains — no partitioning work at all.
        for width in (lpt_widths + 1)..=max_width {
            let empty_bins = width - chains;
            let scan_in = leveled_makespan(empty_bins, &self.asc, cells_in);
            let scan_out = leveled_makespan(empty_bins, &self.asc, cells_out);
            out.push(test_time(patterns, scan_in, scan_out));
            if scan_in == longest && scan_out == longest {
                out.resize(max_width, test_time(patterns, longest, longest));
                return;
            }
        }
    }

    /// Convenience wrapper around [`RowKernel::compute_into`] returning a
    /// fresh row vector.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn compute(&mut self, module: &Module, max_width: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(max_width);
        self.compute_into(module, max_width, &mut out);
        out
    }
}

/// One-shot row computation (allocates scratch; prefer [`RowKernel`] when
/// evaluating many modules).
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn test_time_row(module: &Module, max_width: usize) -> Vec<u64> {
    RowKernel::new().compute(module, max_width)
}

/// Non-incremental reference row: every width is evaluated from scratch —
/// LPT over all chains on empty bins, no prefix seeding, no floor skip.
///
/// This is the kernel as it existed before the incremental evaluation
/// landed, kept as the validation baseline: the property tests in
/// `tests/proptest_incremental_row.rs` prove `test_time_row` bit-identical
/// to this loop over random module shapes and the full width range, and
/// `perf_baseline` measures the incremental path against it.
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn test_time_row_reference(module: &Module, max_width: usize) -> Vec<u64> {
    assert!(max_width > 0, "wrapper width must be at least 1");
    let mut desc: Vec<u64> = module.scan_chains().iter().map(|c| c.length).collect();
    desc.sort_unstable_by(|a, b| b.cmp(a));
    let asc: Vec<u64> = desc.iter().rev().copied().collect();

    let chains = desc.len();
    let cells_in = module.wrapper_input_cells();
    let cells_out = module.wrapper_output_cells();
    let patterns = module.patterns();

    let mut out = Vec::with_capacity(max_width);
    let lpt_widths = max_width.min(chains.saturating_sub(1));
    for width in 1..=lpt_widths {
        let mut loads = vec![0u64; width];
        for &length in &desc {
            let bin = least_loaded(&loads);
            loads[bin] = loads[bin]
                .checked_add(length)
                .expect("wrapper-chain load overflows u64");
        }
        loads.sort_unstable();
        let scan_in = leveled_makespan(0, &loads, cells_in);
        let scan_out = leveled_makespan(0, &loads, cells_out);
        out.push(test_time(patterns, scan_in, scan_out));
    }
    for width in (lpt_widths + 1)..=max_width {
        let empty_bins = width - chains;
        let scan_in = leveled_makespan(empty_bins, &asc, cells_in);
        let scan_out = leveled_makespan(empty_bins, &asc, cells_out);
        out.push(test_time(patterns, scan_in, scan_out));
    }
    out
}

/// The width-independent state of one module's test-time function: sorted
/// scan-chain lengths plus the wrapper cell and pattern counts.
///
/// Where [`RowKernel`] evaluates a whole row `t(m, 1..=W)` in one sweep, a
/// `ModuleShape` answers *single-width* queries `t(m, w)` — the evaluation
/// mode of `soctest_tam::LazyTimeTable`, which only materialises the
/// `(module, width)` cells an optimizer actually probes. The chain sort is
/// paid once at construction; a query then costs O(s) for `w ≥ s(m)`
/// (closed-form water fill over the pre-sorted chains) or O(s log w) for
/// the narrow LPT region via the [`LoadHeap`].
///
/// Values are bit-identical to the corresponding [`RowKernel`] row entries
/// (same seeded LPT with the same first-on-ties rule, same closed-form
/// water fill), which `tests/proptest_heap_lpt.rs` proves over random
/// module shapes.
#[derive(Debug, Clone)]
pub struct ModuleShape {
    /// Scan-chain lengths sorted descending (LPT insertion order).
    desc: Vec<u64>,
    /// Scan-chain lengths sorted ascending (water-fill order).
    asc: Vec<u64>,
    /// Wrapper input cells.
    cells_in: u64,
    /// Wrapper output cells.
    cells_out: u64,
    /// Test pattern count.
    patterns: u64,
    /// Longest internal scan chain (0 for combinational modules).
    longest: u64,
}

impl ModuleShape {
    /// Extracts the shape of `module` (sorts the scan chains once).
    pub fn of(module: &Module) -> Self {
        let mut desc: Vec<u64> = module.scan_chains().iter().map(|c| c.length).collect();
        desc.sort_unstable_by(|a, b| b.cmp(a));
        let asc: Vec<u64> = desc.iter().rev().copied().collect();
        let longest = desc.first().copied().unwrap_or(0);
        ModuleShape {
            desc,
            asc,
            cells_in: module.wrapper_input_cells(),
            cells_out: module.wrapper_output_cells(),
            patterns: module.patterns(),
            longest,
        }
    }

    /// Number of internal scan chains.
    pub fn chains(&self) -> usize {
        self.desc.len()
    }

    /// The width-independent floor on the module's test time: every
    /// wrapper-chain load is at least the longest internal scan chain `L`,
    /// so no width beats `(1 + L) · p + L`.
    pub fn floor_time(&self) -> u64 {
        test_time(self.patterns, self.longest, self.longest)
    }

    /// The canonical byte encoding of the shape's identity: pattern count,
    /// wrapper cell counts, then every scan-chain length in descending
    /// order, each as a little-endian `u64` (with the chain count in
    /// between so `[1, 2]` and `[1]`+trailing garbage cannot collide by
    /// concatenation). Two modules encode identically **iff** their
    /// test-time rows are identical at every width — `time_at` reads
    /// nothing else — which is what makes the encoding a sound
    /// content-address for cross-SOC row sharing.
    pub fn content_key(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity(8 * (4 + self.desc.len()));
        for word in [
            self.patterns,
            self.cells_in,
            self.cells_out,
            self.desc.len() as u64,
        ] {
            key.extend_from_slice(&word.to_le_bytes());
        }
        for &length in &self.desc {
            key.extend_from_slice(&length.to_le_bytes());
        }
        key
    }

    /// FNV-1a 64-bit hash of [`ModuleShape::content_key`] — the fast-path
    /// key of the content-addressed row store (`soctest_tam`'s `RowStore`);
    /// collisions are disambiguated there by comparing the full key bytes.
    pub fn content_hash(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.content_key() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Test time at `width` wrapper chains — bit-identical to
    /// `RowKernel::compute(module, w)[width - 1]` for every `w >= width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn time_at(&self, width: usize, scratch: &mut ShapeScratch) -> u64 {
        assert!(width > 0, "wrapper width must be at least 1");
        let chains = self.desc.len();
        if width >= chains {
            // Wide region: every chain gets its own wrapper chain; the load
            // multiset is the sorted chain lengths plus empty chains.
            let empty_bins = width - chains;
            let scan_in = leveled_makespan(empty_bins, &self.asc, self.cells_in);
            let scan_out = leveled_makespan(empty_bins, &self.asc, self.cells_out);
            return test_time(self.patterns, scan_in, scan_out);
        }
        // Narrow region: seeded heap LPT (chain i < width lands in bin i on
        // empty bins, so only the remaining chains are placed by search).
        scratch.heap.seed(&self.desc[..width]);
        for &length in &self.desc[width..] {
            scratch.heap.add_to_min(length);
        }
        scratch.sorted.clear();
        scratch.heap.extend_loads_into(&mut scratch.sorted);
        scratch.sorted.sort_unstable();
        let scan_in = leveled_makespan(0, &scratch.sorted, self.cells_in);
        let scan_out = leveled_makespan(0, &scratch.sorted, self.cells_out);
        test_time(self.patterns, scan_in, scan_out)
    }
}

/// Reusable scratch buffers for [`ModuleShape::time_at`] — construct once
/// per thread and reuse, so single-width queries allocate nothing in steady
/// state.
#[derive(Debug, Default)]
pub struct ShapeScratch {
    heap: LoadHeap,
    sorted: Vec<u64>,
}

impl ShapeScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        ShapeScratch::default()
    }
}

/// Index of the least-loaded bin (first one on ties — the same rule as
/// [`crate::lpt::lpt_partition`], so load multisets match exactly).
fn least_loaded(loads: &[u64]) -> usize {
    let mut best = 0;
    for (index, &load) in loads.iter().enumerate() {
        if load < loads[best] {
            best = index;
        }
    }
    best
}

/// Closed-form water fill: the maximum bin load after distributing `cells`
/// unit items over `zero_bins` empty bins plus the bins in `ascending`
/// (sorted ascending), always adding to the currently lowest bin.
///
/// Equivalent to `loads + water_fill(loads, cells)` followed by `max()`,
/// but O(bins) arithmetic without allocating: greedy unit filling raises
/// the `k` lowest bins to a common level `ceil((prefix_k + cells) / k)`,
/// where `k` is the smallest bin count whose capacity up to the next load
/// covers `cells`.
///
/// Prefix sums and `prefix + cells` are evaluated in `u128`: near
/// `u64::MAX` chain lengths make the running load sum wrap in `u64`, which
/// in a release build would silently return a bogus (far too small) level.
/// The final level is checked back into the `u64` test-time domain by
/// [`fit_u64`].
fn leveled_makespan(zero_bins: usize, ascending: &[u64], cells: u64) -> u64 {
    let max_load = ascending.last().copied().unwrap_or(0);
    if cells == 0 {
        return max_load;
    }
    let total_bins = zero_bins + ascending.len();
    debug_assert!(total_bins > 0, "a wrapper has at least one chain");
    let cells = u128::from(cells);
    let mut prefix = 0u128;
    for (index, &next) in ascending.iter().enumerate() {
        let bins = zero_bins + index;
        // Capacity of the `bins` lowest bins before they reach `next`;
        // `prefix <= next · bins` because the prefix sums `bins` loads that
        // are each at most `next`, so the subtraction cannot underflow.
        if bins > 0 && u128::from(next) * bins as u128 - prefix >= cells {
            let level = (prefix + cells).div_ceil(bins as u128);
            return fit_u64(level).max(max_load);
        }
        prefix += u128::from(next);
    }
    // The fill spills past the tallest bin: all bins level out.
    fit_u64((prefix + cells).div_ceil(total_bins as u128))
}

/// The wrapper test-time model `t = (1 + max(si, so)) · p + min(si, so)`
/// with the degenerate no-bits case of one cycle per pattern.
///
/// The product is formed with `u128` `checked_mul`/`checked_add`: at the
/// magnitudes of the 10k-module tier (and adversarial near-`u64::MAX` chain
/// lengths or pattern counts) the naive `u64` expression wraps silently in
/// release builds, producing a tiny bogus test time that would corrupt
/// every downstream architecture decision. Out-of-domain inputs panic
/// instead (see [`fit_u64`] for the domain invariant).
fn test_time(patterns: u64, scan_in: u64, scan_out: u64) -> u64 {
    if scan_in == 0 && scan_out == 0 {
        // Even the degenerate one-cycle-per-pattern case must stay inside
        // the test-time domain (u64::MAX is the lazy-table sentinel).
        return fit_u64(u128::from(patterns));
    }
    let cycles = (1 + u128::from(scan_in.max(scan_out)))
        .checked_mul(u128::from(patterns))
        .and_then(|c| c.checked_add(u128::from(scan_in.min(scan_out))))
        .expect("wrapper test time overflows u128");
    fit_u64(cycles)
}

/// Checks a cycle count back into the `u64` test-time domain.
///
/// Invariant: every test time (and every scan length feeding one) fits in
/// `u64` *strictly below* `u64::MAX` — the all-ones value is reserved as
/// `soctest_tam::LazyTimeTable`'s not-yet-computed cell sentinel. Inputs
/// violating the invariant describe physically impossible modules (more
/// than 1.8 · 10¹⁹ cycles); failing loudly beats wrapping silently.
fn fit_u64(cycles: u128) -> u64 {
    assert!(
        cycles < u128::from(u64::MAX),
        "test time of {cycles} cycles overflows the u64 test-time domain"
    );
    cycles as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::design_wrapper;
    use crate::lpt::water_fill;

    fn module() -> Module {
        Module::builder("core")
            .patterns(50)
            .inputs(12)
            .outputs(20)
            .bidirs(4)
            .scan_chains([100u64, 90, 80, 60, 40, 30])
            .build()
    }

    #[test]
    fn row_matches_design_wrapper_at_every_width() {
        let m = module();
        let row = test_time_row(&m, 32);
        assert_eq!(row.len(), 32);
        for width in 1..=32 {
            assert_eq!(
                row[width - 1],
                design_wrapper(&m, width).test_time_cycles(),
                "width {width}"
            );
        }
    }

    #[test]
    fn kernel_is_reusable_across_modules() {
        let mut kernel = RowKernel::new();
        let small = Module::builder("s").patterns(3).inputs(2).build();
        let first = kernel.compute(&module(), 16);
        let second = kernel.compute(&small, 4);
        let third = kernel.compute(&module(), 16);
        assert_eq!(first, third);
        assert_eq!(second, test_time_row(&small, 4));
    }

    #[test]
    fn compute_into_reuses_the_output_buffer() {
        let mut kernel = RowKernel::new();
        let mut row = Vec::new();
        kernel.compute_into(&module(), 8, &mut row);
        assert_eq!(row.len(), 8);
        kernel.compute_into(&module(), 4, &mut row);
        assert_eq!(row, test_time_row(&module(), 4));
    }

    #[test]
    fn combinational_module_rows() {
        let m = Module::builder("comb")
            .patterns(12)
            .inputs(32)
            .outputs(32)
            .build();
        let row = test_time_row(&m, 8);
        assert_eq!(row[7], (1 + 4) * 12 + 4);
        assert_eq!(row[0], (1 + 32) * 12 + 32);
    }

    #[test]
    fn empty_module_rows_are_pattern_counts() {
        let m = Module::builder("void").patterns(3).build();
        assert_eq!(test_time_row(&m, 4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn zero_length_scan_chains_are_handled() {
        let m = Module::builder("zeros")
            .patterns(5)
            .inputs(3)
            .outputs(1)
            .scan_chains([7u64, 0, 0])
            .build();
        let row = test_time_row(&m, 6);
        for width in 1..=6 {
            assert_eq!(row[width - 1], design_wrapper(&m, width).test_time_cycles());
        }
    }

    #[test]
    fn leveled_makespan_matches_iterative_water_fill() {
        let cases: [(&[u64], u64); 6] = [
            (&[10, 4, 4], 8),
            (&[3, 3, 3], 7),
            (&[0, 0, 10], 6),
            (&[5], 100),
            (&[0, 0, 0], 1),
            (&[100, 50, 10], 1_000_000),
        ];
        for (loads, cells) in cases {
            let mut sorted = loads.to_vec();
            sorted.sort_unstable();
            let added = water_fill(loads, cells);
            let expected = loads.iter().zip(&added).map(|(l, a)| l + a).max().unwrap();
            assert_eq!(
                leveled_makespan(0, &sorted, cells),
                expected,
                "loads {loads:?} cells {cells}"
            );
        }
    }

    #[test]
    fn leveled_makespan_with_zero_bins_prefix() {
        // 3 empty bins + [5, 9]; 4 cells fill the empty bins to level 2.
        assert_eq!(leveled_makespan(3, &[5, 9], 4), 9);
        // Enough cells to flood everything: level = ceil((14+100)/5).
        assert_eq!(leveled_makespan(3, &[5, 9], 100), 23);
        // No chains at all.
        assert_eq!(leveled_makespan(4, &[], 10), 3);
        assert_eq!(leveled_makespan(4, &[], 0), 0);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let _ = test_time_row(&module(), 0);
    }

    #[test]
    fn module_shape_matches_row_kernel_at_every_width() {
        let m = module();
        let shape = ModuleShape::of(&m);
        let mut scratch = ShapeScratch::new();
        let row = test_time_row(&m, 32);
        for width in 1..=32 {
            assert_eq!(
                shape.time_at(width, &mut scratch),
                row[width - 1],
                "width {width}"
            );
        }
        assert_eq!(shape.chains(), 6);
        assert_eq!(shape.floor_time(), *row.last().unwrap());
    }

    #[test]
    fn module_shape_handles_degenerate_modules() {
        let mut scratch = ShapeScratch::new();
        let void = Module::builder("void").patterns(3).build();
        let shape = ModuleShape::of(&void);
        assert_eq!(shape.time_at(1, &mut scratch), 3);
        assert_eq!(shape.time_at(7, &mut scratch), 3);
        assert_eq!(shape.floor_time(), 3);

        let comb = Module::builder("comb")
            .patterns(12)
            .inputs(32)
            .outputs(32)
            .build();
        let shape = ModuleShape::of(&comb);
        assert_eq!(shape.time_at(8, &mut scratch), (1 + 4) * 12 + 4);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn module_shape_zero_width_panics() {
        let shape = ModuleShape::of(&module());
        let _ = shape.time_at(0, &mut ShapeScratch::new());
    }

    #[test]
    fn content_key_is_chain_order_insensitive_and_content_sensitive() {
        let a = Module::builder("a")
            .patterns(10)
            .inputs(4)
            .outputs(3)
            .scan_chain(7)
            .scan_chain(19)
            .build();
        // Same chains in the other declaration order, different name.
        let b = Module::builder("b")
            .patterns(10)
            .inputs(4)
            .outputs(3)
            .scan_chain(19)
            .scan_chain(7)
            .build();
        let (sa, sb) = (ModuleShape::of(&a), ModuleShape::of(&b));
        assert_eq!(sa.content_key(), sb.content_key());
        assert_eq!(sa.content_hash(), sb.content_hash());

        // Any row-relevant difference must change the key.
        let variants = [
            Module::builder("c")
                .patterns(11)
                .inputs(4)
                .outputs(3)
                .scan_chain(7)
                .scan_chain(19)
                .build(),
            Module::builder("d")
                .patterns(10)
                .inputs(5)
                .outputs(3)
                .scan_chain(7)
                .scan_chain(19)
                .build(),
            Module::builder("e")
                .patterns(10)
                .inputs(4)
                .outputs(2)
                .scan_chain(7)
                .scan_chain(19)
                .build(),
            Module::builder("f")
                .patterns(10)
                .inputs(4)
                .outputs(3)
                .scan_chain(7)
                .scan_chain(20)
                .build(),
            Module::builder("g")
                .patterns(10)
                .inputs(4)
                .outputs(3)
                .scan_chain(26)
                .build(),
        ];
        for variant in &variants {
            let shape = ModuleShape::of(variant);
            assert_ne!(shape.content_key(), sa.content_key(), "{}", variant.name());
        }
    }

    #[test]
    fn content_key_length_framing_blocks_concatenation_collisions() {
        // [1] with cells that "look like" a chain vs. [1, 2] as chains:
        // the chain-count word keeps the encodings distinct.
        let one = Module::builder("one")
            .patterns(5)
            .scan_chain(2)
            .scan_chain(1)
            .build();
        let two = Module::builder("two").patterns(5).scan_chain(2).build();
        assert_ne!(
            ModuleShape::of(&one).content_key(),
            ModuleShape::of(&two).content_key()
        );
    }

    #[test]
    fn near_max_inputs_compute_exactly_when_in_domain() {
        // (1 + max(si, so)) · p + min(si, so) right below the u64 boundary:
        // a single ~2^32-cycle chain with ~2^31 patterns stays in domain and
        // must match the u128 ground truth exactly (no silent wrap).
        let chain = (1u64 << 32) - 17;
        let patterns = (1u64 << 31) - 5;
        let m = Module::builder("big")
            .patterns(patterns)
            .scan_chain(chain)
            .build();
        let row = test_time_row(&m, 2);
        let expected = (1 + u128::from(chain)) * u128::from(patterns) + u128::from(chain);
        assert_eq!(u128::from(row[0]), expected);
        assert_eq!(row[1], row[0], "one chain saturates at width 1");
    }

    #[test]
    #[should_panic(expected = "overflows the u64 test-time domain")]
    fn near_max_chain_and_patterns_panic_instead_of_wrapping() {
        // u64::MAX/4 cycles per pattern times 8 patterns wraps in u64; the
        // hardened kernel must panic, not return the wrapped value.
        let m = Module::builder("absurd")
            .patterns(8)
            .scan_chain(u64::MAX / 4)
            .build();
        let _ = test_time_row(&m, 1);
    }

    #[test]
    #[should_panic(expected = "wrapper-chain load overflows u64")]
    fn near_max_bin_load_panics_instead_of_wrapping() {
        // Three near-max chains forced into one bin: the load accumulation
        // itself overflows u64 before any makespan arithmetic runs, and
        // must fail loudly rather than wrap to a tiny bogus load.
        let m = Module::builder("absurd3")
            .patterns(1)
            .scan_chains([u64::MAX / 2, u64::MAX / 2, u64::MAX / 2])
            .build();
        let _ = test_time_row(&m, 1);
    }

    #[test]
    #[should_panic(expected = "overflows the u64 test-time domain")]
    fn sentinel_pattern_count_is_rejected_even_without_scan_bits() {
        // The degenerate no-scan-bits case returns the raw pattern count;
        // u64::MAX is reserved as LazyTimeTable's cell sentinel and must be
        // rejected, not returned.
        let m = Module::builder("void_max").patterns(u64::MAX).build();
        let _ = test_time_row(&m, 1);
    }

    #[test]
    fn largest_in_domain_pattern_count_is_served() {
        let m = Module::builder("void_almost")
            .patterns(u64::MAX - 1)
            .build();
        assert_eq!(test_time_row(&m, 2), vec![u64::MAX - 1, u64::MAX - 1]);
    }

    #[test]
    #[should_panic(expected = "overflows the u64 test-time domain")]
    fn near_max_water_fill_level_panics_instead_of_wrapping() {
        // Two near-max chains: the width-1 wrapper load sum (prefix + cells)
        // exceeds u64 already inside the leveled water fill.
        let m = Module::builder("absurd2")
            .patterns(1)
            .inputs(3)
            .scan_chains([u64::MAX / 2, u64::MAX / 2])
            .build();
        let _ = test_time_row(&m, 1);
    }
}
