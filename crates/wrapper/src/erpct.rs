//! The Enhanced Reduced-Pin-Count-Test (E-RPCT) chip-level wrapper.
//!
//! RPCT reduces the number of SOC pins that must be contacted by the ATE to
//! the scan terminals, test control and clock pins; all other functional
//! pins are reached through the boundary-scan chain. *Enhanced* RPCT
//! (Vranken et al., ITC 2001 — reference \[9\] of the paper) additionally
//! routes the internal scan chains through the boundary-scan architecture,
//! so that `k` external test inputs/outputs can drive `w` internal test
//! inputs/outputs for any `k ≤ w` (the externally visible width can be
//! narrowed arbitrarily, at the cost of a serialisation factor `⌈w / k⌉` in
//! shift time).
//!
//! In this reproduction the E-RPCT wrapper is modelled structurally: the
//! optimizer decides the external channel count `k` (what the ATE pays for)
//! and the internal TAM width (what the channel groups of the test
//! architecture use); [`ErpctWrapper`] captures that pair, the pin budget
//! and the serialisation overhead, and checks the feasibility rules that the
//! paper states (`k` even, `1 ≤ k/2 ≤ w`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by [`ErpctWrapper::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErpctError {
    /// The external channel count must be even (half stimulus, half
    /// response).
    OddExternalChannels(usize),
    /// The external channel count must be at least 2.
    TooFewExternalChannels(usize),
    /// The internal width must be at least 1.
    ZeroInternalWidth,
    /// The external side may not be wider than the internal side
    /// (`k/2 > w` would leave ATE channels unused).
    ExternalWiderThanInternal {
        /// External stimulus/response channel pairs (`k/2`).
        external_pairs: usize,
        /// Internal TAM width `w`.
        internal_width: usize,
    },
}

impl fmt::Display for ErpctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErpctError::OddExternalChannels(k) => {
                write!(f, "external channel count {k} must be even")
            }
            ErpctError::TooFewExternalChannels(k) => {
                write!(f, "external channel count {k} must be at least 2")
            }
            ErpctError::ZeroInternalWidth => write!(f, "internal width must be at least 1"),
            ErpctError::ExternalWiderThanInternal {
                external_pairs,
                internal_width,
            } => write!(
                f,
                "external width {external_pairs} exceeds internal width {internal_width}"
            ),
        }
    }
}

impl std::error::Error for ErpctError {}

/// Static configuration of an SOC's test-pin environment used when sizing
/// the E-RPCT wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErpctConfig {
    /// Total functional pins of the SOC (not contacted during E-RPCT wafer
    /// test).
    pub functional_pins: usize,
    /// Test control pins that must always be contacted (TCK/TMS/TRST-like).
    pub control_pins: usize,
    /// Clock pins that must always be contacted.
    pub clock_pins: usize,
    /// Power/ground pads that must always be contacted.
    pub power_pins: usize,
}

impl Default for ErpctConfig {
    fn default() -> Self {
        // A typical large SOC: a handful of test control and clock pins and
        // a generous power/ground budget.
        ErpctConfig {
            functional_pins: 500,
            control_pins: 5,
            clock_pins: 2,
            power_pins: 40,
        }
    }
}

/// A sized E-RPCT wrapper: `external_channels` ATE channels are converted to
/// `internal_width` internal test inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErpctWrapper {
    external_channels: usize,
    internal_width: usize,
    config: ErpctConfig,
}

impl ErpctWrapper {
    /// Creates an E-RPCT wrapper converting `external_channels` ATE channels
    /// (`k`, must be even and ≥ 2) into `internal_width` (`w ≥ k/2`)
    /// internal test inputs and outputs.
    ///
    /// # Errors
    ///
    /// Returns an [`ErpctError`] when the `(k, w)` pair violates the
    /// feasibility rules listed on the variants.
    ///
    /// # Example
    ///
    /// ```
    /// use soctest_wrapper::erpct::{ErpctConfig, ErpctWrapper};
    /// let wrapper = ErpctWrapper::new(16, 32, ErpctConfig::default())?;
    /// assert_eq!(wrapper.serialization_factor(), 4);
    /// # Ok::<(), soctest_wrapper::erpct::ErpctError>(())
    /// ```
    pub fn new(
        external_channels: usize,
        internal_width: usize,
        config: ErpctConfig,
    ) -> Result<Self, ErpctError> {
        if external_channels < 2 {
            return Err(ErpctError::TooFewExternalChannels(external_channels));
        }
        if !external_channels.is_multiple_of(2) {
            return Err(ErpctError::OddExternalChannels(external_channels));
        }
        if internal_width == 0 {
            return Err(ErpctError::ZeroInternalWidth);
        }
        if external_channels / 2 > internal_width {
            return Err(ErpctError::ExternalWiderThanInternal {
                external_pairs: external_channels / 2,
                internal_width,
            });
        }
        Ok(ErpctWrapper {
            external_channels,
            internal_width,
            config,
        })
    }

    /// The external ATE channel count `k`.
    pub fn external_channels(&self) -> usize {
        self.external_channels
    }

    /// External stimulus (or response) channel count `k/2`.
    pub fn external_pairs(&self) -> usize {
        self.external_channels / 2
    }

    /// The internal TAM width `w`.
    pub fn internal_width(&self) -> usize {
        self.internal_width
    }

    /// The pin-environment configuration.
    pub fn config(&self) -> ErpctConfig {
        self.config
    }

    /// How many internal shift cycles are needed per external shift cycle:
    /// `⌈w / (k/2)⌉`. A factor of 1 means the external interface is as wide
    /// as the internal TAM and no serialisation happens.
    pub fn serialization_factor(&self) -> usize {
        self.internal_width.div_ceil(self.external_pairs())
    }

    /// Number of probe pads that must be contacted at wafer test: the E-RPCT
    /// channels plus test control, clock and power pins.
    ///
    /// This is the pin count `x` that enters the contact-yield model
    /// (Equation 4.2 of the paper).
    pub fn contacted_pads(&self) -> usize {
        self.external_channels
            + self.config.control_pins
            + self.config.clock_pins
            + self.config.power_pins
    }

    /// Number of pads contacted at final (packaged) test, where every pin is
    /// touched.
    pub fn final_test_pads(&self) -> usize {
        self.config.functional_pins
            + self.config.control_pins
            + self.config.clock_pins
            + self.config.power_pins
    }

    /// The reduction in contacted pads that RPCT buys at wafer test,
    /// compared to contacting every pin.
    pub fn pad_reduction(&self) -> usize {
        self.final_test_pads().saturating_sub(self.contacted_pads())
    }

    /// Length of the boundary-scan register implied by the functional pins
    /// (one boundary cell per functional pin).
    pub fn boundary_scan_length(&self) -> usize {
        self.config.functional_pins
    }
}

impl fmt::Display for ErpctWrapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E-RPCT {}↔{} (serialisation x{}, {} pads contacted)",
            self.external_channels,
            self.internal_width,
            self.serialization_factor(),
            self.contacted_pads()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_wrapper_reports_widths() {
        let w = ErpctWrapper::new(8, 16, ErpctConfig::default()).unwrap();
        assert_eq!(w.external_channels(), 8);
        assert_eq!(w.external_pairs(), 4);
        assert_eq!(w.internal_width(), 16);
        assert_eq!(w.serialization_factor(), 4);
    }

    #[test]
    fn matching_widths_have_no_serialisation() {
        let w = ErpctWrapper::new(32, 16, ErpctConfig::default()).unwrap();
        assert_eq!(w.serialization_factor(), 1);
    }

    #[test]
    fn odd_channels_rejected() {
        assert_eq!(
            ErpctWrapper::new(7, 8, ErpctConfig::default()),
            Err(ErpctError::OddExternalChannels(7))
        );
    }

    #[test]
    fn too_few_channels_rejected() {
        assert!(matches!(
            ErpctWrapper::new(0, 8, ErpctConfig::default()),
            Err(ErpctError::TooFewExternalChannels(0))
        ));
    }

    #[test]
    fn zero_internal_width_rejected() {
        assert_eq!(
            ErpctWrapper::new(4, 0, ErpctConfig::default()),
            Err(ErpctError::ZeroInternalWidth)
        );
    }

    #[test]
    fn external_wider_than_internal_rejected() {
        let err = ErpctWrapper::new(10, 4, ErpctConfig::default()).unwrap_err();
        assert!(matches!(err, ErpctError::ExternalWiderThanInternal { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn contacted_pads_counts_test_infrastructure_only() {
        let config = ErpctConfig {
            functional_pins: 700,
            control_pins: 6,
            clock_pins: 3,
            power_pins: 50,
        };
        let w = ErpctWrapper::new(20, 40, config).unwrap();
        assert_eq!(w.contacted_pads(), 20 + 6 + 3 + 50);
        assert_eq!(w.final_test_pads(), 700 + 6 + 3 + 50);
        assert_eq!(w.pad_reduction(), 700 - 20);
        assert_eq!(w.boundary_scan_length(), 700);
    }

    #[test]
    fn display_is_informative() {
        let w = ErpctWrapper::new(8, 24, ErpctConfig::default()).unwrap();
        let text = w.to_string();
        assert!(text.contains("8"));
        assert!(text.contains("24"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<ErpctError>();
    }
}
