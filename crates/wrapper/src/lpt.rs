//! Largest-Processing-Time-first (LPT) multiway number partitioning.
//!
//! The COMBINE wrapper-design algorithm assigns a module's internal scan
//! chains to wrapper chains so that the longest wrapper chain is as short as
//! possible. This is the classic makespan-minimisation problem on identical
//! machines; LPT (sort the items by decreasing size, always assign to the
//! currently least-loaded bin) is the standard 4/3-approximation used by the
//! original COMBINE publication.

/// Result of partitioning items over a fixed number of bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// For each input item (by original index), the bin it was assigned to.
    pub assignment: Vec<usize>,
    /// Total load per bin.
    pub loads: Vec<u64>,
}

impl Partition {
    /// The maximum bin load (the makespan).
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The minimum bin load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }
}

/// A reusable `(load, bin index)` min-heap implementing the LPT bin-choice
/// rule in O(log bins) per item.
///
/// The heap is ordered lexicographically by `(load, index)`, so its root is
/// always the bin a linear least-loaded scan with first-on-ties tie-breaking
/// would select: among the minimum loads the pair with the smallest index is
/// the unique lexicographic minimum. Every placement sequence — and hence
/// every load multiset and assignment — is therefore *identical* to the
/// scalar scan ([`lpt_partition_reference`] proves this property-wise),
/// while a placement costs O(log bins) instead of O(bins).
///
/// The buffer is retained across [`LoadHeap::seed`] calls, so a caller
/// evaluating many partitions (e.g. the row kernel's width loop) performs
/// no per-partition heap allocation.
#[derive(Debug, Default, Clone)]
pub struct LoadHeap {
    /// Binary min-heap of `(load, bin index)`, lexicographic order.
    entries: Vec<(u64, u32)>,
}

impl LoadHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        LoadHeap::default()
    }

    /// Number of bins currently on the heap.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the heap holds no bins.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-seeds the heap with one bin per entry of `loads` (bin `i`
    /// starting at `loads[i]`), replacing any previous contents.
    pub fn seed(&mut self, loads: &[u64]) {
        assert!(loads.len() <= u32::MAX as usize, "too many bins");
        self.entries.clear();
        self.entries
            .extend(loads.iter().enumerate().map(|(i, &l)| (l, i as u32)));
        // Floyd heapify: O(bins).
        for pos in (0..self.entries.len() / 2).rev() {
            self.sift_down(pos);
        }
    }

    /// Re-seeds the heap with `bins` empty bins.
    pub fn seed_empty(&mut self, bins: usize) {
        assert!(bins <= u32::MAX as usize, "too many bins");
        self.entries.clear();
        self.entries.extend((0..bins).map(|i| (0u64, i as u32)));
        // (0, 0), (0, 1), ... is already a valid lexicographic min-heap.
    }

    /// Adds `amount` to the current minimum bin — the same bin a linear
    /// first-on-ties least-loaded scan would pick — and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty, or if the bin's load would overflow
    /// `u64` — a silent wrap here would hand a tiny bogus load to the
    /// (otherwise `u128`-hardened) makespan arithmetic downstream.
    pub fn add_to_min(&mut self, amount: u64) -> usize {
        let (load, bin) = self.entries[0];
        let new_load = load
            .checked_add(amount)
            .expect("wrapper-chain load overflows u64");
        self.entries[0] = (new_load, bin);
        self.sift_down(0);
        bin as usize
    }

    /// The current minimum load.
    ///
    /// # Panics
    ///
    /// Panics if the heap is empty.
    pub fn min_load(&self) -> u64 {
        self.entries[0].0
    }

    /// Iterates over `(load, bin index)` pairs in unspecified order.
    pub fn loads(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.entries.iter().map(|&(l, i)| (l, i as usize))
    }

    /// Appends the per-bin loads (in unspecified bin order) to `out`.
    pub fn extend_loads_into(&self, out: &mut Vec<u64>) {
        out.extend(self.entries.iter().map(|&(l, _)| l));
    }

    fn sift_down(&mut self, mut pos: usize) {
        let n = self.entries.len();
        loop {
            let left = 2 * pos + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < n && self.entries[right] < self.entries[left] {
                child = right;
            }
            if self.entries[child] < self.entries[pos] {
                self.entries.swap(pos, child);
                pos = child;
            } else {
                break;
            }
        }
    }
}

/// Partitions `items` (sizes) over `bins` bins using the LPT rule.
///
/// Items of size zero are assigned like any other item. When `bins` exceeds
/// the item count the surplus bins stay empty.
///
/// Bin selection goes through the [`LoadHeap`] (O(items · log bins));
/// [`lpt_partition_reference`] keeps the O(items · bins) linear-scan
/// formulation, and the two are proven to produce identical partitions by
/// `tests/proptest_heap_lpt.rs`.
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// use soctest_wrapper::lpt::lpt_partition;
/// let p = lpt_partition(&[7, 5, 4, 3, 1], 2);
/// assert_eq!(p.loads.iter().sum::<u64>(), 20);
/// assert!(p.makespan() <= 11); // optimal is 10, LPT guarantees <= 4/3 OPT
/// ```
pub fn lpt_partition(items: &[u64], bins: usize) -> Partition {
    assert!(bins > 0, "cannot partition into zero bins");
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Decreasing size; ties broken by original index for determinism.
    order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));

    let mut heap = LoadHeap::new();
    heap.seed_empty(bins);
    let mut assignment = vec![0usize; items.len()];
    for &idx in &order {
        assignment[idx] = heap.add_to_min(items[idx]);
    }
    let mut loads = vec![0u64; bins];
    for (load, bin) in heap.loads() {
        loads[bin] = load;
    }
    Partition { assignment, loads }
}

/// The linear-scan LPT formulation (O(items · bins)): the exact algorithm
/// [`lpt_partition`] used before the heap landed, kept as the validation
/// baseline. `tests/proptest_heap_lpt.rs` proves the two produce identical
/// assignments and load vectors on random inputs.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn lpt_partition_reference(items: &[u64], bins: usize) -> Partition {
    assert!(bins > 0, "cannot partition into zero bins");
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));

    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; items.len()];
    for &idx in &order {
        let bin = least_loaded(&loads);
        assignment[idx] = bin;
        loads[bin] = loads[bin]
            .checked_add(items[idx])
            .expect("wrapper-chain load overflows u64");
    }
    Partition { assignment, loads }
}

/// Index of the least-loaded bin (first one on ties, for determinism).
fn least_loaded(loads: &[u64]) -> usize {
    let mut best = 0;
    for (i, &load) in loads.iter().enumerate() {
        if load < loads[best] {
            best = i;
        }
    }
    best
}

/// Distributes `amount` indivisible unit items (e.g. wrapper I/O cells) over
/// bins that already have the given `loads`, so that the resulting maximum
/// load is minimised ("water filling").
///
/// Returns the per-bin number of added units.
///
/// # Panics
///
/// Panics if `loads` is empty.
///
/// # Example
///
/// ```
/// use soctest_wrapper::lpt::water_fill;
/// let added = water_fill(&[10, 4, 4], 8);
/// assert_eq!(added.iter().sum::<u64>(), 8);
/// // The two short bins receive the cells first.
/// assert_eq!(added[0], 0);
/// ```
pub fn water_fill(loads: &[u64], amount: u64) -> Vec<u64> {
    assert!(!loads.is_empty(), "cannot water-fill zero bins");
    let mut current: Vec<u64> = loads.to_vec();
    let mut added = vec![0u64; loads.len()];
    // Exact greedy: repeatedly add to the lowest bin. To avoid O(amount)
    // iterations for large cell counts, level in bulk.
    let mut remaining = amount;
    while remaining > 0 {
        // Find the minimum level and how many bins sit at it.
        let min = *current.iter().min().expect("non-empty");
        let at_min: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == min)
            .map(|(i, _)| i)
            .collect();
        // Next level above the minimum (or unbounded if all equal).
        let next = current
            .iter()
            .copied()
            .filter(|&l| l > min)
            .min()
            .unwrap_or(u64::MAX);
        let capacity_to_next = if next == u64::MAX {
            remaining
        } else {
            (next - min)
                .saturating_mul(at_min.len() as u64)
                .min(remaining)
        };
        if capacity_to_next >= at_min.len() as u64 {
            // Raise all minimum bins by an equal integer amount.
            let per_bin = capacity_to_next / at_min.len() as u64;
            for &i in &at_min {
                current[i] += per_bin;
                added[i] += per_bin;
            }
            remaining -= per_bin * at_min.len() as u64;
        } else {
            // Fewer units than bins at the minimum: hand out one each.
            for &i in at_min.iter().take(remaining as usize) {
                current[i] += 1;
                added[i] += 1;
            }
            remaining = 0;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_preserves_total_load() {
        let items = [5u64, 9, 3, 3, 7, 1];
        let p = lpt_partition(&items, 3);
        assert_eq!(p.loads.iter().sum::<u64>(), items.iter().sum::<u64>());
        assert_eq!(p.assignment.len(), items.len());
        assert!(p.assignment.iter().all(|&b| b < 3));
    }

    #[test]
    fn single_bin_gets_everything() {
        let p = lpt_partition(&[4, 4, 4], 1);
        assert_eq!(p.loads, vec![12]);
        assert_eq!(p.makespan(), 12);
    }

    #[test]
    fn more_bins_than_items_leaves_empty_bins() {
        let p = lpt_partition(&[10, 20], 5);
        assert_eq!(p.loads.iter().filter(|&&l| l == 0).count(), 3);
        assert_eq!(p.makespan(), 20);
    }

    #[test]
    fn lpt_is_within_four_thirds_of_optimum_on_known_case() {
        // Classic example: optimal makespan 10 with items below on 2 bins.
        let p = lpt_partition(&[7, 5, 4, 3, 1], 2);
        assert!(p.makespan() <= 11);
    }

    #[test]
    fn empty_items_give_zero_loads() {
        let p = lpt_partition(&[], 4);
        assert_eq!(p.makespan(), 0);
        assert_eq!(p.min_load(), 0);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_panics() {
        let _ = lpt_partition(&[1], 0);
    }

    #[test]
    fn deterministic_on_ties() {
        let a = lpt_partition(&[5, 5, 5, 5], 2);
        let b = lpt_partition(&[5, 5, 5, 5], 2);
        assert_eq!(a, b);
    }

    #[test]
    fn heap_partition_matches_reference_scan() {
        let cases: [(&[u64], usize); 6] = [
            (&[7, 5, 4, 3, 1], 2),
            (&[5, 5, 5, 5], 3),
            (&[0, 0, 0], 2),
            (&[9, 9, 7, 6, 5, 5], 4),
            (&[1], 8),
            (&[], 3),
        ];
        for (items, bins) in cases {
            assert_eq!(
                lpt_partition(items, bins),
                lpt_partition_reference(items, bins),
                "items {items:?} bins {bins}"
            );
        }
    }

    #[test]
    fn load_heap_pops_first_min_index_on_ties() {
        let mut heap = LoadHeap::new();
        heap.seed(&[4, 2, 2, 7]);
        // Bin 1 and 2 tie at load 2; the scan rule picks bin 1.
        assert_eq!(heap.add_to_min(10), 1);
        assert_eq!(heap.add_to_min(1), 2);
        assert_eq!(heap.min_load(), 3);
        let mut loads: Vec<(u64, usize)> = heap.loads().collect();
        loads.sort_unstable_by_key(|&(_, i)| i);
        assert_eq!(loads, vec![(4, 0), (12, 1), (3, 2), (7, 3)]);
    }

    #[test]
    fn load_heap_seed_reuses_buffer() {
        let mut heap = LoadHeap::new();
        heap.seed_empty(5);
        assert_eq!(heap.len(), 5);
        assert_eq!(heap.add_to_min(3), 0);
        heap.seed(&[9, 1]);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
        assert_eq!(heap.add_to_min(2), 1);
        let mut out = Vec::new();
        heap.extend_loads_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![3, 9]);
    }

    #[test]
    fn water_fill_distributes_exactly() {
        let added = water_fill(&[3, 3, 3], 7);
        assert_eq!(added.iter().sum::<u64>(), 7);
        let max = added.iter().max().unwrap();
        let min = added.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn water_fill_levels_uneven_bins() {
        let added = water_fill(&[10, 0, 0], 6);
        assert_eq!(added[0], 0);
        assert_eq!(added[1] + added[2], 6);
        assert!(added[1].abs_diff(added[2]) <= 1);
    }

    #[test]
    fn water_fill_with_zero_amount_is_noop() {
        assert_eq!(water_fill(&[1, 2, 3], 0), vec![0, 0, 0]);
    }

    #[test]
    fn water_fill_large_amount_is_fast_and_balanced() {
        let added = water_fill(&[100, 50, 10], 1_000_000);
        assert_eq!(added.iter().sum::<u64>(), 1_000_000);
        let final_loads: Vec<u64> = [100u64, 50, 10]
            .iter()
            .zip(&added)
            .map(|(a, b)| a + b)
            .collect();
        let max = final_loads.iter().max().unwrap();
        let min = final_loads.iter().min().unwrap();
        assert!(max - min <= 1, "final loads not level: {final_loads:?}");
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn water_fill_zero_bins_panics() {
        let _ = water_fill(&[], 3);
    }
}
