//! Largest-Processing-Time-first (LPT) multiway number partitioning.
//!
//! The COMBINE wrapper-design algorithm assigns a module's internal scan
//! chains to wrapper chains so that the longest wrapper chain is as short as
//! possible. This is the classic makespan-minimisation problem on identical
//! machines; LPT (sort the items by decreasing size, always assign to the
//! currently least-loaded bin) is the standard 4/3-approximation used by the
//! original COMBINE publication.

/// Result of partitioning items over a fixed number of bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// For each input item (by original index), the bin it was assigned to.
    pub assignment: Vec<usize>,
    /// Total load per bin.
    pub loads: Vec<u64>,
}

impl Partition {
    /// The maximum bin load (the makespan).
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The minimum bin load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }
}

/// Partitions `items` (sizes) over `bins` bins using the LPT rule.
///
/// Items of size zero are assigned like any other item. When `bins` exceeds
/// the item count the surplus bins stay empty.
///
/// # Panics
///
/// Panics if `bins == 0`.
///
/// # Example
///
/// ```
/// use soctest_wrapper::lpt::lpt_partition;
/// let p = lpt_partition(&[7, 5, 4, 3, 1], 2);
/// assert_eq!(p.loads.iter().sum::<u64>(), 20);
/// assert!(p.makespan() <= 11); // optimal is 10, LPT guarantees <= 4/3 OPT
/// ```
pub fn lpt_partition(items: &[u64], bins: usize) -> Partition {
    assert!(bins > 0, "cannot partition into zero bins");
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Decreasing size; ties broken by original index for determinism.
    order.sort_by(|&a, &b| items[b].cmp(&items[a]).then(a.cmp(&b)));

    let mut loads = vec![0u64; bins];
    let mut assignment = vec![0usize; items.len()];
    for &idx in &order {
        let bin = least_loaded(&loads);
        assignment[idx] = bin;
        loads[bin] += items[idx];
    }
    Partition { assignment, loads }
}

/// Index of the least-loaded bin (first one on ties, for determinism).
fn least_loaded(loads: &[u64]) -> usize {
    let mut best = 0;
    for (i, &load) in loads.iter().enumerate() {
        if load < loads[best] {
            best = i;
        }
    }
    best
}

/// Distributes `amount` indivisible unit items (e.g. wrapper I/O cells) over
/// bins that already have the given `loads`, so that the resulting maximum
/// load is minimised ("water filling").
///
/// Returns the per-bin number of added units.
///
/// # Panics
///
/// Panics if `loads` is empty.
///
/// # Example
///
/// ```
/// use soctest_wrapper::lpt::water_fill;
/// let added = water_fill(&[10, 4, 4], 8);
/// assert_eq!(added.iter().sum::<u64>(), 8);
/// // The two short bins receive the cells first.
/// assert_eq!(added[0], 0);
/// ```
pub fn water_fill(loads: &[u64], amount: u64) -> Vec<u64> {
    assert!(!loads.is_empty(), "cannot water-fill zero bins");
    let mut current: Vec<u64> = loads.to_vec();
    let mut added = vec![0u64; loads.len()];
    // Exact greedy: repeatedly add to the lowest bin. To avoid O(amount)
    // iterations for large cell counts, level in bulk.
    let mut remaining = amount;
    while remaining > 0 {
        // Find the minimum level and how many bins sit at it.
        let min = *current.iter().min().expect("non-empty");
        let at_min: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == min)
            .map(|(i, _)| i)
            .collect();
        // Next level above the minimum (or unbounded if all equal).
        let next = current
            .iter()
            .copied()
            .filter(|&l| l > min)
            .min()
            .unwrap_or(u64::MAX);
        let capacity_to_next = if next == u64::MAX {
            remaining
        } else {
            (next - min)
                .saturating_mul(at_min.len() as u64)
                .min(remaining)
        };
        if capacity_to_next >= at_min.len() as u64 {
            // Raise all minimum bins by an equal integer amount.
            let per_bin = capacity_to_next / at_min.len() as u64;
            for &i in &at_min {
                current[i] += per_bin;
                added[i] += per_bin;
            }
            remaining -= per_bin * at_min.len() as u64;
        } else {
            // Fewer units than bins at the minimum: hand out one each.
            for &i in at_min.iter().take(remaining as usize) {
                current[i] += 1;
                added[i] += 1;
            }
            remaining = 0;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_preserves_total_load() {
        let items = [5u64, 9, 3, 3, 7, 1];
        let p = lpt_partition(&items, 3);
        assert_eq!(p.loads.iter().sum::<u64>(), items.iter().sum::<u64>());
        assert_eq!(p.assignment.len(), items.len());
        assert!(p.assignment.iter().all(|&b| b < 3));
    }

    #[test]
    fn single_bin_gets_everything() {
        let p = lpt_partition(&[4, 4, 4], 1);
        assert_eq!(p.loads, vec![12]);
        assert_eq!(p.makespan(), 12);
    }

    #[test]
    fn more_bins_than_items_leaves_empty_bins() {
        let p = lpt_partition(&[10, 20], 5);
        assert_eq!(p.loads.iter().filter(|&&l| l == 0).count(), 3);
        assert_eq!(p.makespan(), 20);
    }

    #[test]
    fn lpt_is_within_four_thirds_of_optimum_on_known_case() {
        // Classic example: optimal makespan 10 with items below on 2 bins.
        let p = lpt_partition(&[7, 5, 4, 3, 1], 2);
        assert!(p.makespan() <= 11);
    }

    #[test]
    fn empty_items_give_zero_loads() {
        let p = lpt_partition(&[], 4);
        assert_eq!(p.makespan(), 0);
        assert_eq!(p.min_load(), 0);
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn zero_bins_panics() {
        let _ = lpt_partition(&[1], 0);
    }

    #[test]
    fn deterministic_on_ties() {
        let a = lpt_partition(&[5, 5, 5, 5], 2);
        let b = lpt_partition(&[5, 5, 5, 5], 2);
        assert_eq!(a, b);
    }

    #[test]
    fn water_fill_distributes_exactly() {
        let added = water_fill(&[3, 3, 3], 7);
        assert_eq!(added.iter().sum::<u64>(), 7);
        let max = added.iter().max().unwrap();
        let min = added.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn water_fill_levels_uneven_bins() {
        let added = water_fill(&[10, 0, 0], 6);
        assert_eq!(added[0], 0);
        assert_eq!(added[1] + added[2], 6);
        assert!(added[1].abs_diff(added[2]) <= 1);
    }

    #[test]
    fn water_fill_with_zero_amount_is_noop() {
        assert_eq!(water_fill(&[1, 2, 3], 0), vec![0, 0, 0]);
    }

    #[test]
    fn water_fill_large_amount_is_fast_and_balanced() {
        let added = water_fill(&[100, 50, 10], 1_000_000);
        assert_eq!(added.iter().sum::<u64>(), 1_000_000);
        let final_loads: Vec<u64> = [100u64, 50, 10]
            .iter()
            .zip(&added)
            .map(|(a, b)| a + b)
            .collect();
        let max = final_loads.iter().max().unwrap();
        let min = final_loads.iter().min().unwrap();
        assert!(max - min <= 1, "final loads not level: {final_loads:?}");
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn water_fill_zero_bins_panics() {
        let _ = water_fill(&[], 3);
    }
}
