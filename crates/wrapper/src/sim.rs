//! Cycle-accurate shift simulation of a wrapper design.
//!
//! The analytic test-time formula of [`crate::design::WrapperDesign`] is the
//! foundation of the whole optimization; this module validates it by
//! explicitly simulating the scan schedule of a wrapped module, cycle by
//! cycle, and counting how many test-clock cycles elapse until the last
//! response bit has been unloaded.
//!
//! The simulated schedule is the standard overlapped scan protocol:
//!
//! 1. for each pattern, shift for `max(si, so)` cycles — stimulus `i+1`
//!    shifts in while response `i` shifts out;
//! 2. one capture cycle per pattern;
//! 3. after the last capture, shift for `min(si, so)`... — strictly, the
//!    last unload takes `so` cycles, but `so − min(si, so)` of them were
//!    already accounted for in the per-pattern `max`; the remaining
//!    `min(si, so)` cycles are the tail.
//!
//! The simulator tracks per-chain bit positions rather than actual data
//! values — the quantity of interest is the cycle count, not the test
//! response.

use crate::design::WrapperDesign;
use serde::{Deserialize, Serialize};

/// Outcome of simulating a wrapper design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Total test clock cycles until the last response bit is unloaded.
    pub cycles: u64,
    /// Number of capture cycles (equals the pattern count).
    pub captures: u64,
    /// Total stimulus bits shifted in.
    pub stimulus_bits: u64,
    /// Total response bits shifted out.
    pub response_bits: u64,
}

/// Simulates the overlapped scan schedule of `design` and returns the cycle
/// count and data-volume bookkeeping.
///
/// The result's `cycles` field always equals
/// [`WrapperDesign::test_time_cycles`]; the simulation exists to demonstrate
/// that the closed-form expression and an explicit schedule agree.
///
/// # Example
///
/// ```
/// use soctest_soc_model::Module;
/// use soctest_wrapper::{combine::design_wrapper, sim::simulate};
///
/// let m = Module::builder("m").patterns(4).inputs(3).outputs(5).scan_chains([10, 8]).build();
/// let design = design_wrapper(&m, 2);
/// let outcome = simulate(&design);
/// assert_eq!(outcome.cycles, design.test_time_cycles());
/// ```
pub fn simulate(design: &WrapperDesign) -> SimulationOutcome {
    let si: Vec<u64> = design.chains.iter().map(|c| c.scan_in_length()).collect();
    let so: Vec<u64> = design.chains.iter().map(|c| c.scan_out_length()).collect();
    let si_max = si.iter().copied().max().unwrap_or(0);
    let so_max = so.iter().copied().max().unwrap_or(0);

    let mut cycles: u64 = 0;
    let mut stimulus_bits: u64 = 0;
    let mut response_bits: u64 = 0;
    let mut captures: u64 = 0;

    if si_max == 0 && so_max == 0 {
        // Pure functional test: one capture per pattern, nothing to shift.
        return SimulationOutcome {
            cycles: design.patterns,
            captures: design.patterns,
            stimulus_bits: 0,
            response_bits: 0,
        };
    }

    // Whether a previous response is pending in the chains.
    let mut response_pending = false;
    for _pattern in 0..design.patterns {
        // Overlapped shift phase: load the next stimulus while unloading the
        // previous response. Per cycle, every chain that still has stimulus
        // bits to load shifts one in, and every chain that still has
        // response bits to dump shifts one out.
        let shift_cycles = if response_pending {
            si_max.max(so_max)
        } else {
            si_max
        };
        for cycle in 0..shift_cycles {
            for chain in 0..design.chains.len() {
                if cycle < si[chain] {
                    stimulus_bits += 1;
                }
                if response_pending && cycle < so[chain] {
                    response_bits += 1;
                }
            }
        }
        cycles += shift_cycles;
        // Capture cycle.
        cycles += 1;
        captures += 1;
        response_pending = true;
    }

    // Final unload: the last response still sits in the chains. Of its
    // `so_max` cycles, none can overlap with a subsequent load, so they are
    // all paid — but the closed form bills `min(si, so)` here and the excess
    // `so_max - min` inside the per-pattern `max`; the simulation simply
    // pays the full unload and reconciles below.
    if response_pending {
        for cycle in 0..so_max {
            for &chain_so in &so {
                if cycle < chain_so {
                    response_bits += 1;
                }
            }
        }
        cycles += so_max;
    }

    // Reconcile with the closed form: the simulation above charges the first
    // pattern's load as `si_max` (no overlap available) and the last unload
    // as `so_max`, i.e. in total `si_max + (p-1)*max + p + so_max`, whereas
    // the closed form is `(1+max)*p + min`. The two are identical:
    //   si_max + so_max = max + min.
    SimulationOutcome {
        cycles,
        captures,
        stimulus_bits,
        response_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::design_wrapper;
    use soctest_soc_model::Module;

    fn check(module: &Module, width: usize) {
        let design = design_wrapper(module, width);
        let outcome = simulate(&design);
        assert_eq!(
            outcome.cycles,
            design.test_time_cycles(),
            "module {} width {width}",
            module.name()
        );
        assert_eq!(outcome.captures, module.patterns());
    }

    #[test]
    fn simulation_matches_formula_for_balanced_core() {
        let m = Module::builder("bal")
            .patterns(7)
            .inputs(6)
            .outputs(6)
            .scan_chains([20u64, 20, 20, 20])
            .build();
        for width in 1..=6 {
            check(&m, width);
        }
    }

    #[test]
    fn simulation_matches_formula_for_asymmetric_io() {
        let m = Module::builder("asym")
            .patterns(5)
            .inputs(40)
            .outputs(3)
            .scan_chains([15u64, 9])
            .build();
        for width in 1..=5 {
            check(&m, width);
        }
    }

    #[test]
    fn simulation_matches_formula_for_combinational_core() {
        let m = Module::builder("comb")
            .patterns(9)
            .inputs(12)
            .outputs(20)
            .build();
        for width in 1..=4 {
            check(&m, width);
        }
    }

    #[test]
    fn pure_capture_test_has_no_shift_bits() {
        let m = Module::builder("void").patterns(11).build();
        let design = design_wrapper(&m, 2);
        let outcome = simulate(&design);
        assert_eq!(outcome.cycles, 11);
        assert_eq!(outcome.stimulus_bits, 0);
        assert_eq!(outcome.response_bits, 0);
    }

    #[test]
    fn stimulus_bits_match_data_volume() {
        let m = Module::builder("vol")
            .patterns(3)
            .inputs(5)
            .outputs(2)
            .scan_chains([8u64, 4])
            .build();
        let design = design_wrapper(&m, 2);
        let outcome = simulate(&design);
        // Every pattern loads all scan-in bits; every pattern unloads all
        // scan-out bits.
        let per_pattern_in: u64 = design.chains.iter().map(|c| c.scan_in_length()).sum();
        let per_pattern_out: u64 = design.chains.iter().map(|c| c.scan_out_length()).sum();
        assert_eq!(outcome.stimulus_bits, per_pattern_in * 3);
        assert_eq!(outcome.response_bits, per_pattern_out * 3);
    }

    #[test]
    fn d695_cores_validate_against_formula() {
        let soc = soctest_soc_model::benchmarks::d695();
        // Keep the simulation cheap: scale pattern counts down.
        for (_, module) in soc.iter() {
            let small = Module::builder(module.name())
                .patterns(module.patterns().min(5))
                .inputs(module.inputs())
                .outputs(module.outputs())
                .bidirs(module.bidirs())
                .scan_chains(module.scan_chains().iter().map(|c| c.length))
                .build();
            for width in [1usize, 2, 3, 8] {
                check(&small, width);
            }
        }
    }
}
