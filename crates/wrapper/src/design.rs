//! Wrapper designs and the test application time model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One wrapper chain of a core test wrapper.
///
/// A wrapper chain concatenates (a subset of) the module's internal scan
/// chains with wrapper input cells on the stimulus side and wrapper output
/// cells on the response side. Its *scan-in length* is the number of bits
/// that must be shifted in to load a stimulus, its *scan-out length* the
/// number of bits shifted out to unload a response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrapperChain {
    /// Indices (into the module's scan chain list) of the internal scan
    /// chains placed on this wrapper chain.
    pub scan_chain_indices: Vec<usize>,
    /// Total internal scan flip-flops on this wrapper chain.
    pub scan_flip_flops: u64,
    /// Wrapper input cells placed on this wrapper chain.
    pub input_cells: u64,
    /// Wrapper output cells placed on this wrapper chain.
    pub output_cells: u64,
}

impl WrapperChain {
    /// Creates an empty wrapper chain.
    pub fn empty() -> Self {
        WrapperChain {
            scan_chain_indices: Vec::new(),
            scan_flip_flops: 0,
            input_cells: 0,
            output_cells: 0,
        }
    }

    /// Scan-in length of this wrapper chain (input cells + scan flip-flops).
    pub fn scan_in_length(&self) -> u64 {
        self.input_cells + self.scan_flip_flops
    }

    /// Scan-out length of this wrapper chain (scan flip-flops + output
    /// cells).
    pub fn scan_out_length(&self) -> u64 {
        self.output_cells + self.scan_flip_flops
    }

    /// Whether the chain carries no bits at all.
    pub fn is_empty(&self) -> bool {
        self.scan_in_length() == 0 && self.scan_out_length() == 0
    }
}

impl fmt::Display for WrapperChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain(si={}, so={}, scan={} ff, in={} cells, out={} cells)",
            self.scan_in_length(),
            self.scan_out_length(),
            self.scan_flip_flops,
            self.input_cells,
            self.output_cells
        )
    }
}

/// A complete wrapper design for one module at a given TAM width.
///
/// Produced by [`crate::combine::design_wrapper`]. The test application time
/// follows the standard wrapper test-time model (reference \[11\]\[14\] of the
/// paper):
///
/// ```text
/// t = (1 + max(si, so)) · p + min(si, so)
/// ```
///
/// where `si` / `so` are the longest wrapper scan-in / scan-out chains and
/// `p` the number of test patterns: each pattern shifts in while the
/// previous response shifts out (hence the `max`), one capture cycle per
/// pattern, and the last response still has to be shifted out at the end
/// (the trailing `min`, because the final unload overlaps with nothing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrapperDesign {
    /// Name of the module this wrapper belongs to.
    pub module_name: String,
    /// Number of test patterns of the module.
    pub patterns: u64,
    /// The wrapper chains (the design's TAM width is their count).
    pub chains: Vec<WrapperChain>,
}

impl WrapperDesign {
    /// The TAM width (number of wrapper chains).
    pub fn width(&self) -> usize {
        self.chains.len()
    }

    /// The longest scan-in chain `si`.
    pub fn scan_in_max(&self) -> u64 {
        self.chains
            .iter()
            .map(WrapperChain::scan_in_length)
            .max()
            .unwrap_or(0)
    }

    /// The longest scan-out chain `so`.
    pub fn scan_out_max(&self) -> u64 {
        self.chains
            .iter()
            .map(WrapperChain::scan_out_length)
            .max()
            .unwrap_or(0)
    }

    /// Test application time in test clock cycles.
    ///
    /// Degenerate cases: a module with patterns but no scannable bits takes
    /// one cycle per pattern (pure functional/capture test).
    pub fn test_time_cycles(&self) -> u64 {
        let si = self.scan_in_max();
        let so = self.scan_out_max();
        if si == 0 && so == 0 {
            return self.patterns;
        }
        (1 + si.max(so)) * self.patterns + si.min(so)
    }

    /// Total number of stimulus plus response bits transported for the whole
    /// test (used by data-volume lower bounds).
    pub fn test_data_bits(&self) -> u64 {
        let in_bits: u64 = self.chains.iter().map(WrapperChain::scan_in_length).sum();
        let out_bits: u64 = self.chains.iter().map(WrapperChain::scan_out_length).sum();
        (in_bits + out_bits) * self.patterns
    }

    /// Number of completely empty wrapper chains (width was larger than the
    /// module could use).
    pub fn empty_chains(&self) -> usize {
        self.chains.iter().filter(|c| c.is_empty()).count()
    }
}

impl fmt::Display for WrapperDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wrapper[{}] w={} si={} so={} t={} cycles",
            self.module_name,
            self.width(),
            self.scan_in_max(),
            self.scan_out_max(),
            self.test_time_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(scan: u64, inp: u64, out: u64) -> WrapperChain {
        WrapperChain {
            scan_chain_indices: vec![],
            scan_flip_flops: scan,
            input_cells: inp,
            output_cells: out,
        }
    }

    #[test]
    fn chain_lengths() {
        let c = chain(100, 7, 9);
        assert_eq!(c.scan_in_length(), 107);
        assert_eq!(c.scan_out_length(), 109);
        assert!(!c.is_empty());
        assert!(WrapperChain::empty().is_empty());
    }

    #[test]
    fn test_time_formula_matches_reference_example() {
        // si = 107, so = 109, p = 10 -> (1+109)*10 + 107 = 1207
        let d = WrapperDesign {
            module_name: "m".into(),
            patterns: 10,
            chains: vec![chain(100, 7, 9)],
        };
        assert_eq!(d.test_time_cycles(), 1207);
    }

    #[test]
    fn test_time_uses_longest_chains() {
        let d = WrapperDesign {
            module_name: "m".into(),
            patterns: 5,
            chains: vec![chain(50, 0, 0), chain(10, 0, 40), chain(5, 30, 0)],
        };
        assert_eq!(d.scan_in_max(), 50);
        assert_eq!(d.scan_out_max(), 50);
        assert_eq!(d.test_time_cycles(), (1 + 50) * 5 + 50);
    }

    #[test]
    fn degenerate_design_without_bits_takes_one_cycle_per_pattern() {
        let d = WrapperDesign {
            module_name: "comb".into(),
            patterns: 42,
            chains: vec![WrapperChain::empty()],
        };
        assert_eq!(d.test_time_cycles(), 42);
    }

    #[test]
    fn data_bits_counts_both_directions() {
        let d = WrapperDesign {
            module_name: "m".into(),
            patterns: 3,
            chains: vec![chain(10, 2, 4)],
        };
        assert_eq!(d.test_data_bits(), (12 + 14) * 3);
    }

    #[test]
    fn empty_chain_count() {
        let d = WrapperDesign {
            module_name: "m".into(),
            patterns: 1,
            chains: vec![chain(1, 0, 0), WrapperChain::empty(), WrapperChain::empty()],
        };
        assert_eq!(d.empty_chains(), 2);
        assert_eq!(d.width(), 3);
    }

    #[test]
    fn display_mentions_module_and_time() {
        let d = WrapperDesign {
            module_name: "uart".into(),
            patterns: 2,
            chains: vec![chain(3, 1, 1)],
        };
        let text = d.to_string();
        assert!(text.contains("uart"));
        assert!(text.contains("cycles"));
    }
}
