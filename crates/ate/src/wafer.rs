//! Wafer and die-grid geometry.
//!
//! The Monte-Carlo wafer-test simulator needs to know how many dies a wafer
//! carries and how many touchdowns a probe card with `n` sites needs to
//! cover them. The paper ignores the multi-site losses at the wafer
//! periphery; [`WaferMap::touchdowns`] therefore also provides the idealised
//! count (full utilisation of all sites) next to the exact grid-based count.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of a wafer and its die grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferMap {
    /// Wafer diameter in millimetres (typical: 300 mm).
    pub diameter_mm: f64,
    /// Die width in millimetres, including scribe lines.
    pub die_width_mm: f64,
    /// Die height in millimetres, including scribe lines.
    pub die_height_mm: f64,
    /// Edge exclusion in millimetres (outer ring unusable for product dies).
    pub edge_exclusion_mm: f64,
}

impl WaferMap {
    /// Creates a wafer map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive or the edge exclusion is
    /// negative.
    pub fn new(
        diameter_mm: f64,
        die_width_mm: f64,
        die_height_mm: f64,
        edge_exclusion_mm: f64,
    ) -> Self {
        assert!(diameter_mm > 0.0, "wafer diameter must be positive");
        assert!(
            die_width_mm > 0.0 && die_height_mm > 0.0,
            "die size must be positive"
        );
        assert!(
            edge_exclusion_mm >= 0.0,
            "edge exclusion must be non-negative"
        );
        WaferMap {
            diameter_mm,
            die_width_mm,
            die_height_mm,
            edge_exclusion_mm,
        }
    }

    /// A 300 mm wafer with a 10 x 10 mm "monster chip" die — in the same
    /// size class as the PNX8550.
    pub fn monster_chip_300mm() -> Self {
        WaferMap::new(300.0, 10.0, 10.0, 3.0)
    }

    /// Number of whole dies whose centre lies within the usable wafer
    /// radius.
    pub fn gross_dies(&self) -> usize {
        let radius = self.diameter_mm / 2.0 - self.edge_exclusion_mm;
        if radius <= 0.0 {
            return 0;
        }
        let mut count = 0usize;
        // Walk the die grid symmetric around the wafer centre.
        let nx = (self.diameter_mm / self.die_width_mm).ceil() as i64 + 2;
        let ny = (self.diameter_mm / self.die_height_mm).ceil() as i64 + 2;
        for ix in -nx..=nx {
            for iy in -ny..=ny {
                let cx = (ix as f64 + 0.5) * self.die_width_mm;
                let cy = (iy as f64 + 0.5) * self.die_height_mm;
                // The die is usable when all four corners fall inside the
                // usable radius.
                let hx = self.die_width_mm / 2.0;
                let hy = self.die_height_mm / 2.0;
                let far_x = cx.abs() + hx;
                let far_y = cy.abs() + hy;
                if (far_x * far_x + far_y * far_y).sqrt() <= radius {
                    count += 1;
                }
            }
        }
        count
    }

    /// Number of probe touchdowns needed to test every die with an
    /// `n`-site probe card.
    ///
    /// `ideal` ignores peripheral losses (as the paper does):
    /// `⌈gross_dies / n⌉`. The `with_edge_losses` variant adds a
    /// configurable inefficiency factor to model partially filled
    /// touchdowns at the wafer edge.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0`.
    pub fn touchdowns(&self, sites: usize) -> usize {
        assert!(sites > 0, "a probe card has at least one site");
        self.gross_dies().div_ceil(sites)
    }

    /// Touchdowns including a simple edge-loss model: a fraction
    /// `edge_loss` (0.0..1.0) of site positions is wasted on average.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or `edge_loss` is outside `0.0..1.0`.
    pub fn touchdowns_with_edge_losses(&self, sites: usize, edge_loss: f64) -> usize {
        assert!(sites > 0, "a probe card has at least one site");
        assert!(
            (0.0..1.0).contains(&edge_loss),
            "edge loss must be in 0.0..1.0"
        );
        let effective_sites = (sites as f64 * (1.0 - edge_loss)).max(1.0);
        (self.gross_dies() as f64 / effective_sites).ceil() as usize
    }
}

impl Default for WaferMap {
    fn default() -> Self {
        WaferMap::monster_chip_300mm()
    }
}

impl fmt::Display for WaferMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mm wafer, {:.1} x {:.1} mm dies, {} gross dies",
            self.diameter_mm,
            self.die_width_mm,
            self.die_height_mm,
            self.gross_dies()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monster_chip_wafer_has_hundreds_of_dies() {
        let map = WaferMap::monster_chip_300mm();
        let dies = map.gross_dies();
        // A 10x10 mm die on a 300 mm wafer yields roughly 500-650 gross dies.
        assert!(dies > 400, "got {dies}");
        assert!(dies < 700, "got {dies}");
    }

    #[test]
    fn smaller_dies_give_more_dies_per_wafer() {
        let big = WaferMap::new(300.0, 12.0, 12.0, 3.0).gross_dies();
        let small = WaferMap::new(300.0, 6.0, 6.0, 3.0).gross_dies();
        assert!(small > 3 * big);
    }

    #[test]
    fn touchdowns_divide_dies_by_sites() {
        let map = WaferMap::monster_chip_300mm();
        let dies = map.gross_dies();
        assert_eq!(map.touchdowns(1), dies);
        assert_eq!(map.touchdowns(4), dies.div_ceil(4));
        assert!(map.touchdowns(8) <= map.touchdowns(4));
    }

    #[test]
    fn edge_losses_increase_touchdowns() {
        let map = WaferMap::monster_chip_300mm();
        assert!(map.touchdowns_with_edge_losses(8, 0.2) >= map.touchdowns(8));
    }

    #[test]
    fn tiny_wafer_has_no_dies() {
        let map = WaferMap::new(10.0, 20.0, 20.0, 0.0);
        assert_eq!(map.gross_dies(), 0);
        assert_eq!(map.touchdowns(4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_panics() {
        let _ = WaferMap::monster_chip_300mm().touchdowns(0);
    }

    #[test]
    #[should_panic(expected = "edge loss")]
    fn invalid_edge_loss_panics() {
        let _ = WaferMap::monster_chip_300mm().touchdowns_with_edge_losses(4, 1.5);
    }

    #[test]
    #[should_panic(expected = "die size")]
    fn invalid_die_size_panics() {
        let _ = WaferMap::new(300.0, 0.0, 10.0, 3.0);
    }

    #[test]
    fn display_mentions_gross_dies() {
        let text = WaferMap::monster_chip_300mm().to_string();
        assert!(text.contains("gross dies"));
    }
}
