//! The probe-station model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A wafer probe station, characterised by the two fixed per-touchdown time
/// components of the paper's cost model (Section 4):
///
/// * the *index time* `t_i` — the time needed to position the probe
///   interface and make contact with the bonding pads of the SOC(s) under
///   test (typical value: 100 ms),
/// * the *contact-test time* `t_c` — the time of the contact test that
///   verifies all probed terminals are properly connected (typical value:
///   1 ms; all terminals are checked simultaneously, so this does not grow
///   with the pin count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeStation {
    /// Index time `t_i` in seconds.
    pub index_time_s: f64,
    /// Contact-test time `t_c` in seconds.
    pub contact_test_time_s: f64,
}

impl ProbeStation {
    /// Creates a probe station model.
    ///
    /// # Panics
    ///
    /// Panics if either time is negative or not finite.
    pub fn new(index_time_s: f64, contact_test_time_s: f64) -> Self {
        assert!(
            index_time_s.is_finite() && index_time_s >= 0.0,
            "index time must be non-negative"
        );
        assert!(
            contact_test_time_s.is_finite() && contact_test_time_s >= 0.0,
            "contact test time must be non-negative"
        );
        ProbeStation {
            index_time_s,
            contact_test_time_s,
        }
    }

    /// The probe station assumed in the paper: `t_i = 100 ms`,
    /// `t_c = 1 ms`.
    pub fn paper_probe_station() -> Self {
        ProbeStation::new(0.1, 0.001)
    }

    /// Fixed per-touchdown overhead (index time plus contact test).
    pub fn touchdown_overhead_s(&self) -> f64 {
        self.index_time_s + self.contact_test_time_s
    }
}

impl Default for ProbeStation {
    fn default() -> Self {
        ProbeStation::paper_probe_station()
    }
}

impl fmt::Display for ProbeStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probe station: index {:.1} ms, contact test {:.1} ms",
            self.index_time_s * 1e3,
            self.contact_test_time_s * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let p = ProbeStation::paper_probe_station();
        assert!((p.index_time_s - 0.1).abs() < 1e-12);
        assert!((p.contact_test_time_s - 0.001).abs() < 1e-12);
        assert!((p.touchdown_overhead_s() - 0.101).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper_station() {
        assert_eq!(ProbeStation::default(), ProbeStation::paper_probe_station());
    }

    #[test]
    fn zero_overhead_station_is_allowed() {
        let p = ProbeStation::new(0.0, 0.0);
        assert_eq!(p.touchdown_overhead_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "index time")]
    fn negative_index_time_panics() {
        let _ = ProbeStation::new(-1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "contact test time")]
    fn nan_contact_time_panics() {
        let _ = ProbeStation::new(0.1, f64::NAN);
    }

    #[test]
    fn display_uses_milliseconds() {
        let text = ProbeStation::paper_probe_station().to_string();
        assert!(text.contains("100.0 ms"));
        assert!(text.contains("1.0 ms"));
    }
}
