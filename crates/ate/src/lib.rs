//! Models of the fixed test cell: ATE, probe station, wafer and upgrade
//! costs.
//!
//! The paper assumes a *given and fixed* target test cell — an ATE with `K`
//! channels of vector-memory depth `D` and a probe station with a fixed
//! index time — and designs the on-chip DfT around it. This crate provides
//! those environment models:
//!
//! * [`AteSpec`] — channel count, per-channel vector memory depth and test
//!   clock frequency,
//! * [`ProbeStation`] — index time and contact-test time,
//! * [`TestCell`] — the combination of both, with the paper's parameter
//!   values available as [`TestCell::paper_wafer_test_cell`],
//! * [`cost::AteCostModel`] — the channel-versus-memory upgrade price model
//!   used in the cost-effectiveness analysis of Section 7,
//! * [`wafer::WaferMap`] — die-grid geometry used by the Monte-Carlo wafer
//!   simulator.
//!
//! # Example
//!
//! ```
//! use soctest_ate::{AteSpec, TestCell};
//!
//! let cell = TestCell::paper_wafer_test_cell();
//! assert_eq!(cell.ate.channels, 512);
//! assert_eq!(cell.ate.vector_memory_depth, 7 * 1024 * 1024);
//! let wider = cell.ate.with_channels(1024);
//! assert_eq!(wider.channels, 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod probe;
pub mod spec;
pub mod wafer;

pub use cost::AteCostModel;
pub use probe::ProbeStation;
pub use spec::AteSpec;
pub use wafer::WaferMap;

use serde::{Deserialize, Serialize};

/// A complete test cell: ATE plus probe station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestCell {
    /// The ATE.
    pub ate: AteSpec,
    /// The probe station.
    pub probe: ProbeStation,
}

impl TestCell {
    /// Creates a test cell from its two parts.
    pub fn new(ate: AteSpec, probe: ProbeStation) -> Self {
        TestCell { ate, probe }
    }

    /// The wafer-test cell used throughout Section 7 of the paper:
    /// a 512-channel ATE with 7 M vectors per channel, a 5 MHz test clock,
    /// 100 ms index time and 1 ms contact-test time.
    pub fn paper_wafer_test_cell() -> Self {
        TestCell {
            ate: AteSpec::paper_ate(),
            probe: ProbeStation::paper_probe_station(),
        }
    }

    /// Time (in seconds) to run a manufacturing test of `cycles` test clock
    /// cycles on this cell's ATE.
    pub fn manufacturing_test_time_s(&self, cycles: u64) -> f64 {
        self.ate.cycles_to_seconds(cycles)
    }
}

impl Default for TestCell {
    fn default() -> Self {
        TestCell::paper_wafer_test_cell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cell_parameters() {
        let cell = TestCell::paper_wafer_test_cell();
        assert_eq!(cell.ate.channels, 512);
        assert_eq!(cell.ate.vector_memory_depth, 7 * 1024 * 1024);
        assert!((cell.ate.test_clock_hz - 5.0e6).abs() < 1.0);
        assert!((cell.probe.index_time_s - 0.1).abs() < 1e-12);
        assert!((cell.probe.contact_test_time_s - 0.001).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper_cell() {
        assert_eq!(TestCell::default(), TestCell::paper_wafer_test_cell());
    }

    #[test]
    fn manufacturing_time_uses_clock() {
        let cell = TestCell::paper_wafer_test_cell();
        let t = cell.manufacturing_test_time_s(5_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
