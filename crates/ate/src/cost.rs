//! ATE upgrade cost model.
//!
//! Section 7 of the paper compares two ways of spending money on the test
//! cell: buying additional ATE channels versus deepening the vector memory
//! of the existing channels, quoting market prices of roughly USD 8,000 for
//! 16 extra channels (at 7 M depth) and USD 1,500 for doubling the memory of
//! 16 channels from 7 M to 14 M. This module captures that price model so
//! the cost-effectiveness experiment can be regenerated.

use crate::spec::AteSpec;
use serde::{Deserialize, Serialize};

/// Price model for ATE upgrades, in USD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AteCostModel {
    /// Price of 16 additional channels (with baseline memory depth).
    pub usd_per_16_channels: f64,
    /// Price of doubling the vector memory of 16 existing channels.
    pub usd_per_16_channel_memory_doubling: f64,
}

impl AteCostModel {
    /// The market prices quoted in the paper (2005): USD 8,000 per 16
    /// channels, USD 1,500 per 16-channel memory doubling.
    pub fn paper_prices() -> Self {
        AteCostModel {
            usd_per_16_channels: 8_000.0,
            usd_per_16_channel_memory_doubling: 1_500.0,
        }
    }

    /// Cost of extending an ATE from `from_channels` to `to_channels`
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if `to_channels < from_channels`.
    pub fn channel_upgrade_cost(&self, from_channels: usize, to_channels: usize) -> f64 {
        assert!(
            to_channels >= from_channels,
            "cannot downgrade from {from_channels} to {to_channels} channels"
        );
        (to_channels - from_channels) as f64 / 16.0 * self.usd_per_16_channels
    }

    /// Cost of doubling the vector memory of every channel of `ate`
    /// `doublings` times (e.g. 7 M -> 14 M is one doubling).
    pub fn memory_doubling_cost(&self, ate: &AteSpec, doublings: u32) -> f64 {
        ate.channels as f64 / 16.0 * self.usd_per_16_channel_memory_doubling * f64::from(doublings)
    }

    /// How many whole extra channels the given budget buys.
    pub fn channels_affordable(&self, budget_usd: f64) -> usize {
        if budget_usd <= 0.0 {
            return 0;
        }
        (budget_usd / self.usd_per_16_channels * 16.0).floor() as usize
    }

    /// How many whole memory doublings of the full ATE the given budget
    /// buys.
    pub fn memory_doublings_affordable(&self, ate: &AteSpec, budget_usd: f64) -> u32 {
        let per_doubling = self.memory_doubling_cost(ate, 1);
        if budget_usd <= 0.0 || per_doubling <= 0.0 {
            return 0;
        }
        (budget_usd / per_doubling).floor() as u32
    }
}

impl Default for AteCostModel {
    fn default() -> Self {
        AteCostModel::paper_prices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices_match_quoted_values() {
        let model = AteCostModel::paper_prices();
        assert_eq!(model.usd_per_16_channels, 8_000.0);
        assert_eq!(model.usd_per_16_channel_memory_doubling, 1_500.0);
    }

    #[test]
    fn doubling_memory_of_512_channels_costs_48k() {
        // The paper: 512 / 16 * 1500 = USD 48,000.
        let model = AteCostModel::paper_prices();
        let ate = AteSpec::paper_ate();
        let cost = model.memory_doubling_cost(&ate, 1);
        assert!((cost - 48_000.0).abs() < 1e-9);
    }

    #[test]
    fn forty_eight_thousand_buys_roughly_96_channels() {
        // The paper: "For this money, we can buy roughly 96 channels".
        let model = AteCostModel::paper_prices();
        assert_eq!(model.channels_affordable(48_000.0), 96);
    }

    #[test]
    fn channel_upgrade_cost_is_linear() {
        let model = AteCostModel::paper_prices();
        assert_eq!(model.channel_upgrade_cost(512, 512), 0.0);
        assert!((model.channel_upgrade_cost(512, 528) - 8_000.0).abs() < 1e-9);
        assert!((model.channel_upgrade_cost(512, 1024) - 256_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "downgrade")]
    fn downgrade_panics() {
        let _ = AteCostModel::paper_prices().channel_upgrade_cost(512, 256);
    }

    #[test]
    fn affordability_handles_non_positive_budget() {
        let model = AteCostModel::paper_prices();
        assert_eq!(model.channels_affordable(0.0), 0);
        assert_eq!(model.channels_affordable(-10.0), 0);
        assert_eq!(
            model.memory_doublings_affordable(&AteSpec::paper_ate(), -1.0),
            0
        );
    }

    #[test]
    fn memory_doublings_affordable_for_paper_budget() {
        let model = AteCostModel::paper_prices();
        let ate = AteSpec::paper_ate();
        assert_eq!(model.memory_doublings_affordable(&ate, 48_000.0), 1);
        assert_eq!(model.memory_doublings_affordable(&ate, 100_000.0), 2);
    }
}
