//! The ATE specification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One mega-vector of per-channel memory depth (the unit used in the paper's
/// tables: "7 M" means `7 * 1024 * 1024` vectors).
pub const MEGA_VECTORS: u64 = 1024 * 1024;

/// An Automatic Test Equipment specification.
///
/// The three parameters that matter to the optimization are the number of
/// digital channels `K`, the vector-memory depth per channel `D` (in
/// vectors, i.e. test clock cycles that fit in a single load) and the test
/// clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AteSpec {
    /// Number of digital ATE channels `K`.
    pub channels: usize,
    /// Vector memory depth per channel `D`, in vectors.
    pub vector_memory_depth: u64,
    /// Test clock frequency in hertz.
    pub test_clock_hz: f64,
}

impl AteSpec {
    /// Creates an ATE spec.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero / non-positive.
    pub fn new(channels: usize, vector_memory_depth: u64, test_clock_hz: f64) -> Self {
        assert!(channels > 0, "ATE must have at least one channel");
        assert!(
            vector_memory_depth > 0,
            "vector memory depth must be positive"
        );
        assert!(
            test_clock_hz.is_finite() && test_clock_hz > 0.0,
            "test clock must be positive"
        );
        AteSpec {
            channels,
            vector_memory_depth,
            test_clock_hz,
        }
    }

    /// The ATE used in the paper's experiments: 512 channels, 7 M vectors
    /// per channel, 5 MHz test clock.
    pub fn paper_ate() -> Self {
        AteSpec::new(512, 7 * MEGA_VECTORS, 5.0e6)
    }

    /// Returns a copy with a different channel count.
    pub fn with_channels(self, channels: usize) -> Self {
        AteSpec::new(channels, self.vector_memory_depth, self.test_clock_hz)
    }

    /// Returns a copy with a different per-channel memory depth (in
    /// vectors).
    pub fn with_depth(self, vector_memory_depth: u64) -> Self {
        AteSpec::new(self.channels, vector_memory_depth, self.test_clock_hz)
    }

    /// Returns a copy with the memory depth given in mega-vectors.
    pub fn with_depth_megavectors(self, megavectors: u64) -> Self {
        self.with_depth(megavectors * MEGA_VECTORS)
    }

    /// Converts a number of test clock cycles into seconds on this ATE.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.test_clock_hz
    }

    /// Converts seconds into (rounded-down) test clock cycles.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.test_clock_hz).floor().max(0.0) as u64
    }

    /// Total vector memory across all channels, in vectors.
    pub fn total_vector_memory(&self) -> u64 {
        self.vector_memory_depth * self.channels as u64
    }

    /// The longest manufacturing test (in seconds) that fits in a single
    /// memory load.
    pub fn max_test_time_s(&self) -> f64 {
        self.cycles_to_seconds(self.vector_memory_depth)
    }
}

impl Default for AteSpec {
    fn default() -> Self {
        AteSpec::paper_ate()
    }
}

impl fmt::Display for AteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ATE: {} channels x {:.1} M vectors @ {:.1} MHz",
            self.channels,
            self.vector_memory_depth as f64 / MEGA_VECTORS as f64,
            self.test_clock_hz / 1.0e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ate_values() {
        let ate = AteSpec::paper_ate();
        assert_eq!(ate.channels, 512);
        assert_eq!(ate.vector_memory_depth, 7 * MEGA_VECTORS);
        assert_eq!(ate.total_vector_memory(), 512 * 7 * MEGA_VECTORS);
    }

    #[test]
    fn with_helpers_replace_single_fields() {
        let ate = AteSpec::paper_ate()
            .with_channels(640)
            .with_depth_megavectors(14);
        assert_eq!(ate.channels, 640);
        assert_eq!(ate.vector_memory_depth, 14 * MEGA_VECTORS);
        assert!((ate.test_clock_hz - 5.0e6).abs() < 1.0);
    }

    #[test]
    fn cycle_second_conversion_round_trips() {
        let ate = AteSpec::paper_ate();
        let cycles = 3_456_789u64;
        let seconds = ate.cycles_to_seconds(cycles);
        assert_eq!(ate.seconds_to_cycles(seconds), cycles);
    }

    #[test]
    fn max_test_time_is_depth_over_clock() {
        let ate = AteSpec::new(16, 5_000_000, 5.0e6);
        assert!((ate.max_test_time_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = AteSpec::new(0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "memory depth")]
    fn zero_depth_panics() {
        let _ = AteSpec::new(1, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "test clock")]
    fn non_positive_clock_panics() {
        let _ = AteSpec::new(1, 1, 0.0);
    }

    #[test]
    fn display_mentions_channels_and_depth() {
        let text = AteSpec::paper_ate().to_string();
        assert!(text.contains("512"));
        assert!(text.contains("7.0 M"));
    }
}
