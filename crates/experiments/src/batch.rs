//! The `soc-batch` service layer: JSON batch requests in, JSON responses
//! out.
//!
//! This is the file-based face of the session-oriented
//! [`soctest_multisite::engine::Engine`]: a [`BatchRequestFile`] names one
//! SOC and carries any number of typed
//! [`OptimizeRequest`]s; [`run_batch_file`] builds one engine for the SOC
//! and serves the whole batch over a single shared time table, answering
//! with a [`BatchResponseFile`] in request order. Each request gets its
//! own outcome — an infeasible request reports its error without
//! poisoning the rest of the batch — which makes the optimizer drivable
//! as a service: write a request file, run `soc-batch`, read the response
//! file.
//!
//! The canonical [`sample_request`] (committed as
//! `crates/experiments/data/sample_batch_request.json`, with its response
//! golden next to it) doubles as the wire-format reference and as a CI
//! determinism check: `soc-batch <request> --check <golden>` byte-compares
//! a fresh run against the committed response.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest, OptimizeResponse, SweepAxis};
use soctest_multisite::problem::OptimizerConfig;
use soctest_soc_model::Soc;

/// A batch request file: one SOC, any number of requests against it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRequestFile {
    /// Name of the SOC all requests target (see [`resolve_soc`]).
    pub soc: String,
    /// The requests; the response answers them in this order.
    pub requests: Vec<OptimizeRequest>,
}

/// The outcome of one request, so a single infeasible request does not
/// fail the batch.
///
/// On the wire this renders as `{"response": ..., "error": null}` /
/// `{"response": null, "error": "..."}` — the hand-written serde impls
/// keep that two-field shape (friendly to non-Rust consumers) while the
/// Rust type makes a both-set or both-null outcome unrepresentable;
/// deserialisation rejects files that violate the invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// The engine's answer: the request succeeded.
    Response(OptimizeResponse),
    /// The error rendering: the request failed.
    Error(String),
}

impl BatchOutcome {
    /// The engine's answer, when the request succeeded.
    pub fn response(&self) -> Option<&OptimizeResponse> {
        match self {
            BatchOutcome::Response(response) => Some(response),
            BatchOutcome::Error(_) => None,
        }
    }

    /// The error rendering, when the request failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            BatchOutcome::Response(_) => None,
            BatchOutcome::Error(error) => Some(error),
        }
    }
}

impl Serialize for BatchOutcome {
    fn to_value(&self) -> Value {
        let (response, error) = match self {
            BatchOutcome::Response(response) => (response.to_value(), Value::Null),
            BatchOutcome::Error(error) => (Value::Null, error.to_value()),
        };
        Value::Object(vec![
            ("response".to_string(), response),
            ("error".to_string(), error),
        ])
    }
}

impl Deserialize for BatchOutcome {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let response: Option<OptimizeResponse> =
            serde::get_field(value, "response", "BatchOutcome")?;
        let error: Option<String> = serde::get_field(value, "error", "BatchOutcome")?;
        match (response, error) {
            (Some(response), None) => Ok(BatchOutcome::Response(response)),
            (None, Some(error)) => Ok(BatchOutcome::Error(error)),
            _ => Err(SerdeError::custom(
                "BatchOutcome requires exactly one of `response` / `error`",
            )),
        }
    }
}

/// A batch response file: the SOC echoed back plus one outcome per
/// request, in request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResponseFile {
    /// The SOC name of the request file.
    pub soc: String,
    /// One outcome per request, in request order.
    pub results: Vec<BatchOutcome>,
}

/// Resolves a request file's SOC name: one of the embedded ITC'02
/// benchmarks (`d695`, `p22810`, `p34392`, `p93791`) or the synthetic
/// `pnx8550_like` stand-in.
///
/// # Errors
///
/// Returns a human-readable message for unknown names.
pub fn resolve_soc(name: &str) -> Result<Soc, String> {
    // One catalogue for the whole workspace: the streaming service and
    // the batch driver must agree on what a name means.
    soctest_multisite::service::resolve_named_soc(name)
}

/// Serves a parsed batch request file: one engine, one shared table, all
/// requests in order.
///
/// # Errors
///
/// Fails only when the SOC name does not resolve; per-request failures
/// land in the corresponding [`BatchOutcome::error`].
pub fn run_batch_file(file: &BatchRequestFile) -> Result<BatchResponseFile, String> {
    run_batch_file_with_store(file, None)
}

/// [`run_batch_file`] with an optional shared module-row store: when
/// given, the engine consults `store` before computing any `(module
/// shape, width)` time cell and publishes what it computes, so a
/// pre-warmed store (e.g. loaded from a `--cache-dir`) means zero rows
/// rebuilt. Responses are bit-identical with and without a store.
///
/// # Errors
///
/// As [`run_batch_file`].
pub fn run_batch_file_with_store(
    file: &BatchRequestFile,
    store: Option<std::sync::Arc<soctest_tam::RowStore>>,
) -> Result<BatchResponseFile, String> {
    let soc = resolve_soc(&file.soc)?;
    let mut builder = Engine::builder(&soc);
    if let Some(store) = store {
        builder = builder.row_store(store);
    }
    let engine = builder.build();
    let results = engine
        .run_batch(&file.requests)
        .into_iter()
        .map(|result| match result {
            Ok(response) => BatchOutcome::Response(response),
            Err(err) => BatchOutcome::Error(err.to_string()),
        })
        .collect();
    Ok(BatchResponseFile {
        soc: file.soc.clone(),
        results,
    })
}

/// Parses a JSON request file, serves it, and renders the pretty-printed
/// JSON response (trailing newline included). Deterministic: the same
/// request text always renders byte-identical response text.
///
/// # Errors
///
/// Fails on malformed JSON or an unknown SOC name.
pub fn run_request_text(text: &str) -> Result<String, String> {
    run_request_text_with_store(text, None)
}

/// [`run_request_text`] through [`run_batch_file_with_store`].
///
/// # Errors
///
/// As [`run_request_text`].
pub fn run_request_text_with_store(
    text: &str,
    store: Option<std::sync::Arc<soctest_tam::RowStore>>,
) -> Result<String, String> {
    let file: BatchRequestFile =
        serde_json::from_str(text).map_err(|err| format!("malformed request file: {err}"))?;
    let response = run_batch_file_with_store(&file, store)?;
    Ok(render_json(&response))
}

/// Renders a serialisable value as pretty JSON with a trailing newline —
/// the on-disk format of both request and response files.
///
/// # Panics
///
/// Panics if the value contains a non-finite float (the crate's own
/// request/response types never do).
pub fn render_json<T: Serialize>(value: &T) -> String {
    let json = serde_json::to_string_pretty(value).expect("batch files serialise");
    format!("{json}\n")
}

/// The canonical sample batch: a heterogeneous request mix on the d695
/// benchmark — one plain optimization, all four sweep axes, and one
/// deliberately infeasible request demonstrating per-request errors.
pub fn sample_request() -> BatchRequestFile {
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    let config = OptimizerConfig::new(cell);
    let mut tiny = config;
    tiny.test_cell.ate = tiny.test_cell.ate.with_channels(4);
    BatchRequestFile {
        soc: "d695".to_string(),
        requests: vec![
            OptimizeRequest::new(config),
            OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(vec![128, 192, 256])),
            OptimizeRequest::new(config).with_sweep(SweepAxis::DepthVectors(vec![
                64 * 1024,
                96 * 1024,
                128 * 1024,
            ])),
            OptimizeRequest::new(config).with_sweep(SweepAxis::ContactYield {
                depths: vec![96 * 1024],
                contact_yields: vec![0.99, 1.0],
            }),
            OptimizeRequest::new(config).with_sweep(SweepAxis::ManufacturingYield {
                max_sites: 4,
                manufacturing_yields: vec![1.0, 0.9],
            }),
            OptimizeRequest::new(tiny),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_request_round_trips_through_json() {
        let sample = sample_request();
        let text = render_json(&sample);
        let back: BatchRequestFile = serde_json::from_str(&text).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn sample_batch_serves_every_request_with_one_error() {
        let response = run_batch_file(&sample_request()).unwrap();
        assert_eq!(response.soc, "d695");
        assert_eq!(response.results.len(), 6);
        // The first five succeed; the 4-channel request fails, alone.
        for outcome in &response.results[..5] {
            assert!(outcome.response().is_some() && outcome.error().is_none());
        }
        let failed = &response.results[5];
        assert!(failed.response().is_none());
        assert!(failed.error().unwrap().contains("architecture"));
    }

    #[test]
    fn outcomes_round_trip_and_reject_invariant_violations() {
        let error = BatchOutcome::Error("boom".to_string());
        let text = render_json(&error);
        assert_eq!(serde_json::from_str::<BatchOutcome>(&text).unwrap(), error);
        // Exactly one of response/error must be set.
        assert!(
            serde_json::from_str::<BatchOutcome>("{\"response\":null,\"error\":null}").is_err()
        );
    }

    #[test]
    fn unknown_socs_are_rejected_with_the_known_list() {
        let err = resolve_soc("nonexistent").unwrap_err();
        assert!(err.contains("pnx8550_like"));
        let mut file = sample_request();
        file.soc = "nonexistent".to_string();
        assert!(run_batch_file(&file).is_err());
    }

    #[test]
    fn responses_are_deterministic() {
        let text = render_json(&sample_request());
        let first = run_request_text(&text).unwrap();
        let second = run_request_text(&text).unwrap();
        assert_eq!(first, second);
    }
}
