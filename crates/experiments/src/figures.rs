//! Regeneration of the paper's Figure 5, 6 and 7 artifacts on dense grids.
//!
//! Each function runs the corresponding Section 7 experiment on the
//! PNX8550 stand-in — the same experiment as the seed binaries in
//! `soctest-bench`, but on the 4x-denser grids of [`crate::grids`] — and
//! renders the result as an [`Artifact`] (JSON + markdown).
//!
//! All experiments are served by the session-oriented
//! [`soctest_multisite::engine::Engine`]: each generator builds one engine
//! for the PNX stand-in and submits its grid as a typed request, so every
//! sweep shares a single demand-driven time table across its points.

use crate::artifact::{markdown_table, Artifact};
use crate::grids;
use crate::plot;
use serde::Serialize;
use soctest_bench::{format_depth, paper_config, pnx_soc};
use soctest_multisite::engine::{Engine, OptimizeRequest, SweepAxis};
use soctest_multisite::optimizer::step1_only_curve;
use soctest_multisite::problem::MultiSiteOptions;
use soctest_multisite::sweep::{SweepCurve, SweepPoint};

/// A one-SOC engine session for the PNX8550 stand-in.
fn pnx_engine() -> Engine {
    Engine::new(&pnx_soc())
}

/// Runs one sweeping request and unwraps the resulting curves.
fn run_sweep(engine: &Engine, request: &OptimizeRequest, figure: &str) -> Vec<SweepCurve> {
    engine
        .run(request)
        .unwrap_or_else(|err| panic!("all {figure} points are feasible: {err}"))
        .into_curves()
        .expect("a sweeping request answers with curves")
}

/// One row of a single-parameter optimizer sweep (Figures 6(a)/6(b)).
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// The swept parameter value (channel count or depth in vectors).
    pub parameter: u64,
    /// Maximum multi-site at this parameter value.
    pub max_sites: usize,
    /// Throughput-optimal site count.
    pub optimal_sites: usize,
    /// ATE channels per site at the optimum.
    pub channels_per_site: usize,
    /// SOC manufacturing test time at the optimum, in seconds.
    pub test_time_s: f64,
    /// Throughput at the optimum, devices per hour.
    pub devices_per_hour: f64,
}

impl SweepRow {
    fn from_point(point: &SweepPoint) -> Self {
        SweepRow {
            parameter: point.parameter.as_u64(),
            max_sites: point.max_sites,
            optimal_sites: point.optimal.sites,
            channels_per_site: point.optimal.channels_per_site,
            test_time_s: point.optimal.manufacturing_test_time_s,
            devices_per_hour: point.optimal.devices_per_hour,
        }
    }
}

fn sweep_markdown(title: &str, parameter: &str, depth_format: bool, rows: &[SweepRow]) -> String {
    let table = markdown_table(
        &[
            parameter,
            "n_max",
            "n_opt",
            "k/site",
            "t_m [s]",
            "D_th [/h]",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    if depth_format {
                        format_depth(r.parameter)
                    } else {
                        r.parameter.to_string()
                    },
                    r.max_sites.to_string(),
                    r.optimal_sites.to_string(),
                    r.channels_per_site.to_string(),
                    format!("{:.4}", r.test_time_s),
                    format!("{:.1}", r.devices_per_hour),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("# {title}\n\n{table}")
}

/// Figure 6(a): throughput vs. ATE channel count, 512..1024 step 16.
pub fn fig6a() -> Artifact {
    let engine = pnx_engine();
    let request = OptimizeRequest::new(paper_config())
        .with_sweep(SweepAxis::Channels(grids::fig6a_channel_counts_dense()));
    let curves = run_sweep(&engine, &request, "fig6a");
    let rows: Vec<SweepRow> = curves[0].points.iter().map(SweepRow::from_point).collect();
    let markdown = sweep_markdown(
        "Figure 6(a): throughput vs. ATE channels (PNX8550 stand-in)",
        "channels",
        false,
        &rows,
    );
    plot::attach(Artifact::render(
        "fig6a_channels",
        "Figure 6(a): throughput vs. ATE channel count, 33-point grid",
        &rows,
        markdown,
    ))
}

/// Figure 6(b): throughput vs. vector-memory depth, 5 M..14 M step 256 K.
pub fn fig6b() -> Artifact {
    let engine = pnx_engine();
    let request = OptimizeRequest::new(paper_config())
        .with_sweep(SweepAxis::DepthVectors(grids::fig6b_depths_dense()));
    let curves = run_sweep(&engine, &request, "fig6b");
    let rows: Vec<SweepRow> = curves[0].points.iter().map(SweepRow::from_point).collect();
    let markdown = sweep_markdown(
        "Figure 6(b): throughput vs. vector-memory depth (PNX8550 stand-in)",
        "depth",
        true,
        &rows,
    );
    plot::attach(Artifact::render(
        "fig6b_depth",
        "Figure 6(b): throughput vs. vector-memory depth, 37-point grid",
        &rows,
        markdown,
    ))
}

/// One curve of Figure 7(a): unique throughput over the depth grid at a
/// fixed contact yield.
#[derive(Debug, Clone, Serialize)]
pub struct ContactYieldCurve {
    /// The contact yield `p_c` of this curve.
    pub contact_yield: f64,
    /// Unique-device throughput per depth grid point, in sweep order.
    pub unique_devices_per_hour: Vec<f64>,
}

/// Figure 7(a) record: the shared depth grid plus one curve per yield.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7aRecord {
    /// Vector-memory depths (the x axis), in vectors.
    pub depths: Vec<u64>,
    /// One curve per contact yield, best yield first.
    pub curves: Vec<ContactYieldCurve>,
}

/// Figure 7(a): unique throughput vs. depth for the paper's contact
/// yields, re-test enabled, on the dense depth grid.
pub fn fig7a() -> Artifact {
    let engine = pnx_engine();
    let depths = grids::fig6b_depths_dense();
    let request = OptimizeRequest::new(paper_config()).with_sweep(SweepAxis::ContactYield {
        depths: depths.clone(),
        contact_yields: grids::fig7a_contact_yields(),
    });
    let curves = run_sweep(&engine, &request, "fig7a");
    let record = Fig7aRecord {
        depths: depths.clone(),
        curves: curves
            .iter()
            .zip(grids::fig7a_contact_yields())
            .map(|(curve, contact_yield)| ContactYieldCurve {
                contact_yield,
                unique_devices_per_hour: curve
                    .points
                    .iter()
                    .map(|p| p.optimal.unique_devices_per_hour)
                    .collect(),
            })
            .collect(),
    };
    let headers: Vec<String> = std::iter::once("depth".to_string())
        .chain(
            record
                .curves
                .iter()
                .map(|c| format!("pc={}", c.contact_yield)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = depths
        .iter()
        .enumerate()
        .map(|(i, &depth)| {
            std::iter::once(format_depth(depth))
                .chain(
                    record
                        .curves
                        .iter()
                        .map(|c| format!("{:.1}", c.unique_devices_per_hour[i])),
                )
                .collect()
        })
        .collect();
    let markdown = format!(
        "# Figure 7(a): unique throughput [/h] vs. depth per contact yield (re-test on)\n\n{}",
        markdown_table(&header_refs, &rows)
    );
    plot::attach(Artifact::render(
        "fig7a_contact_yield",
        "Figure 7(a): unique throughput vs. depth per contact yield, 37-point grid",
        &record,
        markdown,
    ))
}

/// One curve of Figure 7(b): expected test time per site count at a fixed
/// manufacturing yield.
#[derive(Debug, Clone, Serialize)]
pub struct AbortOnFailCurve {
    /// The manufacturing yield `p_m` of this curve.
    pub manufacturing_yield: f64,
    /// Expected test application time per touchdown in seconds, for site
    /// counts `1..=FIG7B_MAX_SITES` in order.
    pub expected_test_time_s: Vec<f64>,
}

/// Figure 7(b): expected test time vs. site count under abort-on-fail, on
/// the dense yield grid and doubled site range.
pub fn fig7b() -> Artifact {
    let engine = pnx_engine();
    let yields = grids::fig7b_manufacturing_yields_dense();
    let request = OptimizeRequest::new(paper_config()).with_sweep(SweepAxis::ManufacturingYield {
        max_sites: grids::FIG7B_MAX_SITES,
        manufacturing_yields: yields.clone(),
    });
    let curves = run_sweep(&engine, &request, "fig7b");
    let record: Vec<AbortOnFailCurve> = curves
        .iter()
        .zip(&yields)
        .map(|(curve, &manufacturing_yield)| AbortOnFailCurve {
            manufacturing_yield,
            expected_test_time_s: curve
                .points
                .iter()
                .map(|p| p.optimal.expected_test_time_s)
                .collect(),
        })
        .collect();
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(
            record
                .iter()
                .map(|c| format!("pm={}", c.manufacturing_yield)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..grids::FIG7B_MAX_SITES)
        .map(|row| {
            std::iter::once((row + 1).to_string())
                .chain(
                    record
                        .iter()
                        .map(|c| format!("{:.4}", c.expected_test_time_s[row])),
                )
                .collect()
        })
        .collect();
    let markdown = format!(
        "# Figure 7(b): expected test time [s] vs. sites per manufacturing yield (abort-on-fail)\n\n{}",
        markdown_table(&header_refs, &rows)
    );
    plot::attach(Artifact::render(
        "fig7b_abort_on_fail",
        "Figure 7(b): expected test time vs. site count per manufacturing yield, 16 sites x 13 yields",
        &record,
        markdown,
    ))
}

/// One throughput-curve row of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Site count `n`.
    pub sites: usize,
    /// Steps 1+2 throughput (channel redistribution applied).
    pub devices_per_hour: f64,
    /// Step 1-only throughput (architecture frozen at channel-minimal).
    pub step1_only_devices_per_hour: f64,
}

/// One variant (with/without stimulus broadcast) of Figure 5.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Variant {
    /// Whether stimulus broadcast was assumed.
    pub stimulus_broadcast: bool,
    /// Maximum multi-site `n_max`.
    pub max_sites: usize,
    /// Throughput-optimal site count `n_opt`.
    pub optimal_sites: usize,
    /// Step 2 gain over stopping at `n_max`, as a fraction.
    pub step2_gain: f64,
    /// The throughput curves, `n = 1..=n_max`.
    pub curve: Vec<Fig5Row>,
}

/// Figure 5: throughput vs. site count, Steps 1+2 against Step 1 only,
/// with and without stimulus broadcast.
pub fn fig5() -> Artifact {
    let engine = pnx_engine();
    let mut variants = Vec::new();
    let mut markdown =
        String::from("# Figure 5: throughput [/h] vs. number of sites (PNX8550 stand-in)\n");
    for (broadcast, options) in [
        (false, MultiSiteOptions::baseline()),
        (true, MultiSiteOptions::baseline().with_broadcast()),
    ] {
        let config = paper_config().with_options(options);
        let solution = engine
            .run(&OptimizeRequest::new(config))
            .expect("PNX8550 stand-in fits the paper ATE")
            .into_solution()
            .expect("a plain request answers with a solution");
        let step1 = step1_only_curve(&solution.step1_architecture, &config, solution.max_sites);
        let curve: Vec<Fig5Row> = solution
            .curve
            .iter()
            .zip(&step1)
            .map(|(full, step1_only)| Fig5Row {
                sites: full.sites,
                devices_per_hour: full.devices_per_hour,
                step1_only_devices_per_hour: step1_only.devices_per_hour,
            })
            .collect();
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|r| {
                vec![
                    r.sites.to_string(),
                    format!("{:.1}", r.devices_per_hour),
                    format!("{:.1}", r.step1_only_devices_per_hour),
                ]
            })
            .collect();
        let label = if broadcast {
            "with stimulus broadcast"
        } else {
            "without stimulus broadcast"
        };
        markdown.push_str(&format!(
            "\n## {label} (n_max = {}, n_opt = {}, Step 2 gain {:.1}%)\n\n{}",
            solution.max_sites,
            solution.optimal.sites,
            100.0 * solution.step2_gain(),
            markdown_table(&["n", "Steps 1+2", "Step 1 only"], &rows)
        ));
        variants.push(Fig5Variant {
            stimulus_broadcast: broadcast,
            max_sites: solution.max_sites,
            optimal_sites: solution.optimal.sites,
            step2_gain: solution.step2_gain(),
            curve,
        });
    }
    plot::attach(Artifact::render(
        "fig5_sites",
        "Figure 5: throughput vs. site count, Steps 1+2 vs. Step 1 only, +/- stimulus broadcast",
        &variants,
        markdown,
    ))
}
