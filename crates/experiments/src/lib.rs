//! Paper-artifact reproduction driver.
//!
//! One deterministic run regenerates every artifact of Goel & Marinissen,
//! *"On-Chip Test Infrastructure Design for Optimal Multi-Site Testing of
//! System Chips"* (DATE 2005), at 4x the paper's grid density, plus a
//! scaled synthetic workload tier the paper's hardware could not have
//! touched:
//!
//! * [`figures::fig5`] — throughput vs. site count, Steps 1+2 vs. Step 1
//!   only, with and without stimulus broadcast,
//! * [`figures::fig6a`] / [`figures::fig6b`] — throughput vs. ATE channel
//!   count / vector-memory depth,
//! * [`figures::fig7a`] / [`figures::fig7b`] — contact-yield re-test and
//!   abort-on-fail yield sweeps,
//! * [`table1::table1`] — the ITC'02 channel-count and multi-site
//!   comparison against the bin-packing baseline,
//! * [`scaled::scaled_tier`] — two-step optimization of synthetic SOCs
//!   from 100 to 10000 modules, including NoC-style profiles (the 5k/10k
//!   rows ride on the demand-driven `LazyTimeTable`),
//! * [`flat::flat_tier`] — Problem 2: flattened ITC'02 and NoC chips
//!   through the single-wrapper degenerate case of the optimizer.
//!
//! Each experiment renders to an [`Artifact`]: machine-readable JSON plus
//! a markdown table — and, for the Figure 5–7 experiments, a
//! deterministic SVG chart ([`plot`]) — written under `artifacts/` and
//! committed as goldens. The `soctest-repro` binary regenerates them
//! (`--check` byte-compares against the committed goldens instead, which
//! is what CI runs).
//!
//! The sibling `soc-batch` binary ([`batch`]) drives the optimizer as a
//! file-based service: a JSON request file (one SOC, a list of typed
//! `OptimizeRequest`s) in, deterministic JSON responses out, all served
//! by one table-sharing `soctest_multisite::engine::Engine` session; a
//! committed sample request/response pair under `data/` is byte-checked
//! in CI.
//!
//! The `soc-serve` binary ([`serve`]) is the streaming sibling: a
//! persistent NDJSON stdin/stdout service over
//! `soctest_multisite::service` with a warm-session registry,
//! cancellation, deadlines, bounded admission, and a fault-injection
//! harness; its committed sample session transcript under `data/` is
//! byte-checked in CI too.
//!
//! # Example
//!
//! ```
//! use soctest_experiments::figures::fig6a;
//!
//! // Artifacts are deterministic: two runs render byte-identical output.
//! let first = fig6a();
//! assert_eq!(first.json, fig6a().json);
//! assert!(first.markdown.starts_with("# Figure 6(a)"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod figures;
pub mod flat;
pub mod grids;
pub mod plot;
pub mod scaled;
pub mod serve;
pub mod table1;

pub use artifact::{check, write_all, write_files, Artifact, Drift};

/// One entry of the artifact registry: stable metadata plus the generator.
///
/// Name and title are duplicated from the generator's [`Artifact`] so
/// callers (`soctest-repro --list`, `--only`) can enumerate or select
/// artifacts without running every experiment; a test asserts the two
/// stay in sync.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// File stem, equal to the generated artifact's `name`.
    pub name: &'static str,
    /// Index title, equal to the generated artifact's `title`.
    pub title: &'static str,
    /// Runs the experiment and renders the artifact.
    pub generate: fn() -> Artifact,
}

/// The artifact registry, in index order.
pub fn registry() -> [RegistryEntry; 8] {
    [
        RegistryEntry {
            name: "fig5_sites",
            title: "Figure 5: throughput vs. site count, Steps 1+2 vs. Step 1 only, +/- stimulus broadcast",
            generate: figures::fig5,
        },
        RegistryEntry {
            name: "fig6a_channels",
            title: "Figure 6(a): throughput vs. ATE channel count, 33-point grid",
            generate: figures::fig6a,
        },
        RegistryEntry {
            name: "fig6b_depth",
            title: "Figure 6(b): throughput vs. vector-memory depth, 37-point grid",
            generate: figures::fig6b,
        },
        RegistryEntry {
            name: "fig7a_contact_yield",
            title: "Figure 7(a): unique throughput vs. depth per contact yield, 37-point grid",
            generate: figures::fig7a,
        },
        RegistryEntry {
            name: "fig7b_abort_on_fail",
            title: "Figure 7(b): expected test time vs. site count per manufacturing yield, 16 sites x 13 yields",
            generate: figures::fig7b,
        },
        RegistryEntry {
            name: "table1_itc02",
            title: "Table 1: ITC'02 channel counts and maximum multi-site, 41 depths per SOC",
            generate: table1::table1,
        },
        RegistryEntry {
            name: "scaled_tier",
            title: "Scaled synthetic tier: optimizer results from 100 to 10000 modules, incl. NoC profiles",
            generate: scaled::scaled_tier,
        },
        RegistryEntry {
            name: "flat_soc",
            title: "Flat-SOC tier (Problem 2): flattened ITC'02 + NoC chips, single-wrapper operating points",
            generate: flat::flat_tier,
        },
    ]
}

/// Generates every artifact, in index order. Deterministic: repeated calls
/// render byte-identical output.
pub fn generate_all() -> Vec<Artifact> {
    registry().iter().map(|entry| (entry.generate)()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_metadata_matches_the_generated_artifacts() {
        // The registry duplicates each generator's name/title so that
        // --list/--only need not run every experiment; keep them in sync.
        for entry in registry() {
            let artifact = (entry.generate)();
            assert_eq!(entry.name, artifact.name);
            assert_eq!(entry.title, artifact.title);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
    }
}
