//! `soc-batch` — drive the optimizer engine as a file-based service.
//!
//! ```text
//! soc-batch REQUEST.json                serve the batch, response to stdout
//! soc-batch REQUEST.json --out FILE     ... response to FILE instead
//! soc-batch REQUEST.json --check GOLDEN byte-compare the response against
//!                                       GOLDEN; exit 1 on any difference
//! soc-batch REQUEST.json --cache-dir D  reuse/persist module time rows in
//!                                       D/rows.v1 (responses are identical
//!                                       with or without the cache)
//! soc-batch ... --max-store-bytes N     bound D/rows.v1: the save drops the
//!                                       coldest-touched rows until it fits
//! soc-batch --emit-sample-request       print the canonical sample request
//! soc-batch --list-socs                 print the named-SOC catalogue and exit
//! ```
//!
//! A request file names one SOC (`d695`, `p22810`, `p34392`, `p93791` or
//! `pnx8550_like`) and lists typed optimizer requests — plain
//! optimizations and parameter sweeps; the whole batch is served by one
//! `Engine` over one shared time table, and the response answers in
//! request order with per-request outcomes (an infeasible request reports
//! its error without failing the batch). Responses are deterministic, so
//! `--check` against a committed golden is a CI-grade drift detector —
//! the committed sample pair lives in `crates/experiments/data/`.

use soctest_experiments::batch::{render_json, run_request_text_with_store, sample_request};
use soctest_experiments::serve::render_soc_catalogue;
use soctest_tam::RowStore;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    request: Option<PathBuf>,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
    max_store_bytes: Option<u64>,
    emit_sample: bool,
    list_socs: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: soc-batch REQUEST.json [--out FILE | --check GOLDEN] [--cache-dir DIR] \
         [--max-store-bytes N]\n\
         \x20      soc-batch --emit-sample-request | --list-socs\n\
         serves a JSON optimizer-request batch through one engine session; \
         --check byte-compares the response against GOLDEN and exits 1 on drift; \
         --cache-dir reuses and persists module time rows in DIR/rows.v1, and \
         --max-store-bytes drops the coldest rows at save time until the file fits"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut options = Options {
        request: None,
        out: None,
        check: None,
        cache_dir: None,
        max_store_bytes: None,
        emit_sample: false,
        list_socs: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-sample-request" => options.emit_sample = true,
            "--list-socs" => options.list_socs = true,
            "--out" => match args.next() {
                Some(file) => options.out = Some(PathBuf::from(file)),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(file) => options.check = Some(PathBuf::from(file)),
                None => usage(),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => options.cache_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--max-store-bytes" => match args.next().and_then(|raw| raw.parse().ok()) {
                Some(bytes) => options.max_store_bytes = Some(bytes),
                None => usage(),
            },
            other if !other.starts_with('-') && options.request.is_none() => {
                options.request = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    // Reject conflicting combinations instead of silently preferring one:
    // --check and --out are different modes, and --emit-sample-request
    // ignores everything else.
    if options.check.is_some() && options.out.is_some() {
        usage();
    }
    if (options.emit_sample || options.list_socs)
        && (options.request.is_some() || options.out.is_some() || options.check.is_some())
    {
        usage();
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();

    if options.emit_sample {
        print!("{}", render_json(&sample_request()));
        return ExitCode::SUCCESS;
    }

    if options.list_socs {
        print!("{}", render_soc_catalogue());
        return ExitCode::SUCCESS;
    }

    let Some(request_path) = options.request else {
        usage();
    };
    let request_text = match std::fs::read_to_string(&request_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("failed to read {}: {err}", request_path.display());
            return ExitCode::FAILURE;
        }
    };
    // With --cache-dir, warm the row store from DIR/rows.v1 before the
    // batch and persist it after: responses are bit-identical either
    // way, only the compute is skipped. A bad cache file is a stderr
    // warning and a cold store, never a failure.
    let store = options.cache_dir.as_ref().map(|dir| {
        let store = Arc::new(RowStore::new());
        let path = dir.join("rows.v1");
        if let Err(err) = store.load_if_present(&path) {
            eprintln!("warning: ignoring row cache {}: {err}", path.display());
        }
        store
    });
    let response = match run_request_text_with_store(&request_text, store.clone()) {
        Ok(response) => response,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(dir), Some(store)) = (&options.cache_dir, &store) {
        let path = dir.join("rows.v1");
        let cap = options.max_store_bytes.unwrap_or(u64::MAX);
        let saved = std::fs::create_dir_all(dir)
            .map_err(soctest_tam::StoreError::from)
            .and_then(|()| {
                store
                    .save_capped(&path, cap)
                    .map_err(soctest_tam::StoreError::from)
            });
        if let Err(err) = saved {
            eprintln!(
                "warning: failed to save row cache {}: {err}",
                path.display()
            );
        }
    }

    if let Some(golden_path) = options.check {
        let golden = match std::fs::read_to_string(&golden_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to read golden {}: {err}", golden_path.display());
                return ExitCode::FAILURE;
            }
        };
        if golden != response {
            eprintln!(
                "FAIL: response drifted from golden {} — regenerate with \
                 `soc-batch {} --out {}` and commit the diff if intentional",
                golden_path.display(),
                request_path.display(),
                golden_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "OK: response matches golden {} byte-for-byte",
            golden_path.display()
        );
        return ExitCode::SUCCESS;
    }

    match options.out {
        Some(out_path) => match std::fs::write(&out_path, &response) {
            Ok(()) => {
                println!("wrote {}", out_path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("failed to write {}: {err}", out_path.display());
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{response}");
            ExitCode::SUCCESS
        }
    }
}
