//! `soctest-repro` — regenerate (or verify) every paper artifact.
//!
//! ```text
//! soctest-repro                 regenerate artifacts/ in the working dir
//! soctest-repro --check         verify artifacts/ against a fresh run
//! soctest-repro --out DIR       use DIR instead of artifacts/
//! soctest-repro --only NAME     restrict to one artifact (write mode only)
//! soctest-repro --list          list artifact names and exit
//! ```
//!
//! `--check` exits 1 on any drift or missing golden, making result drift a
//! CI failure; regeneration is deterministic, so a clean tree stays clean.

use soctest_experiments::{check, generate_all, registry, write_all, write_files};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    out: PathBuf,
    check: bool,
    list: bool,
    only: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: soctest-repro [--check] [--out DIR] [--only NAME] [--list]\n\
         regenerates every paper artifact (JSON + markdown, SVG charts for \
         the figures) under DIR (default: artifacts/);\n--check verifies DIR \
         against a fresh run instead and exits 1 on drift"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut options = Options {
        out: PathBuf::from("artifacts"),
        check: false,
        list: false,
        only: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => options.check = true,
            "--list" => options.list = true,
            "--out" => match args.next() {
                Some(dir) => options.out = PathBuf::from(dir),
                None => usage(),
            },
            "--only" => match args.next() {
                Some(name) => options.only = Some(name),
                None => usage(),
            },
            _ => usage(),
        }
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();

    if options.list {
        // Metadata comes from the registry — no experiment runs.
        for entry in registry() {
            println!("{:<22} {}", entry.name, entry.title);
        }
        return ExitCode::SUCCESS;
    }

    if options.check {
        if options.only.is_some() {
            eprintln!("--check verifies the full golden set; drop --only");
            return ExitCode::from(2);
        }
        let artifacts = generate_all();
        let drifts = check(&artifacts, &options.out);
        if drifts.is_empty() {
            println!(
                "OK: {} artifacts match the goldens in {}",
                artifacts.len(),
                options.out.display()
            );
            return ExitCode::SUCCESS;
        }
        for drift in &drifts {
            eprintln!("FAIL: {drift}");
        }
        let golden_files: usize = artifacts
            .iter()
            .map(soctest_experiments::Artifact::file_count)
            .sum::<usize>()
            + 1;
        eprintln!(
            "{} of {golden_files} golden files drifted; regenerate with `soctest-repro` \
             and commit the diff if the change is intentional",
            drifts.len(),
        );
        return ExitCode::FAILURE;
    }

    let written = match &options.only {
        Some(only) => match registry().iter().find(|entry| entry.name == only) {
            // A partial run generates just the selected artifact and must
            // not rewrite the index, which lists the full set.
            Some(entry) => write_files(&[(entry.generate)()], &options.out),
            None => {
                eprintln!("unknown artifact {only:?}; try --list");
                return ExitCode::from(2);
            }
        },
        None => write_all(&generate_all(), &options.out),
    };
    match written {
        Ok(written) => {
            println!("wrote {written} files to {}", options.out.display());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("failed to write {}: {err}", options.out.display());
            ExitCode::FAILURE
        }
    }
}
