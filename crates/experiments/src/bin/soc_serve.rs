//! `soc-serve` — the persistent streaming optimizer service on
//! stdin/stdout.
//!
//! ```text
//! soc-serve                           serve NDJSON frames until EOF/Shutdown
//! soc-serve --queue-cap N             bound the admission queue (default 64)
//! soc-serve --max-sessions N          bound the warm-session LRU (default 8)
//! soc-serve --max-table-bytes N       bound charged table memory (default 256 MiB)
//! soc-serve --cache-dir DIR           persist the module-row store in DIR/rows.v1
//! soc-serve --max-result-entries N    bound the solution cache entries (default 256)
//! soc-serve --max-result-bytes N      bound the solution cache bytes (default 64 MiB)
//! soc-serve --faults SPEC             arm the fault-injection harness
//! soc-serve --emit-sample-session     print the canonical sample input
//! soc-serve --emit-sample-session-stats
//!                                     print the stats-enabled sample input
//! soc-serve --stats-summary           after serving, print an ASCII
//!                                     utilization summary on stderr
//! soc-serve --check GOLDEN            serve stdin, byte-compare the
//!                                     transcript against GOLDEN; exit 1 on drift
//! ```
//!
//! One JSON frame per line in each direction: `{"Optimize": {...}}`,
//! `{"Cancel": {...}}`, `"Shutdown"` in; `{"Result": {...}}`,
//! `{"Error": {...}}`, and a final `{"Bye": {...}}` out, in admission
//! order. Requests name a SOC (embedded benchmark or inline `.soc`
//! text); identical SOC content shares one warm engine session behind an
//! LRU with memory accounting. Requests are isolated: a panicking
//! request answers a typed `Internal` error and the server keeps
//! serving. Identical `(SOC, request)` pairs are answered from an
//! exact-hit solution cache (in-flight duplicates coalesce onto one
//! computation), and with `--cache-dir` the content-addressed module
//! time rows persist across processes, so a restarted server rebuilds
//! zero rows — the final `Bye` frame's `cache` block reports both.
//! Requests that set `"stats": true` are answered with a per-request
//! `stats` block (cache provenance plus race-deterministic table
//! deltas) and the `Bye` gains an aggregate `trace` block;
//! `--stats-summary` additionally traces every request in-process and
//! prints a human-readable utilization summary on stderr after the
//! session ends, keeping timing and pool counters off the wire. The
//! fault spec (`--faults`, or the `SOCTEST_FAULTS` environment variable
//! when the flag is absent) is `stage:kind[:arg][@request_id]`,
//! comma-separated — e.g. `optimize:panic@r2,respond:delay:50,
//! store:panic@load`.

use soctest_experiments::serve::{
    render_stats_summary, run_session_text, sample_session, sample_session_stats,
};
use soctest_multisite::service::{FaultPlan, Server, ServerConfig};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    config: ServerConfig,
    emit_sample: bool,
    emit_sample_stats: bool,
    stats_summary: bool,
    check: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: soc-serve [--queue-cap N] [--max-sessions N] [--max-table-bytes N] \
         [--cache-dir DIR] [--max-result-entries N] [--max-result-bytes N] \
         [--faults SPEC] [--stats-summary] [--check GOLDEN]\n\
         \x20      soc-serve --emit-sample-session | --emit-sample-session-stats\n\
         serves NDJSON optimizer frames on stdin/stdout; --check byte-compares \
         the transcript against GOLDEN and exits 1 on drift"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut config = ServerConfig::default();
    let mut emit_sample = false;
    let mut emit_sample_stats = false;
    let mut stats_summary = false;
    let mut check = None;
    let mut faults_flag: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-sample-session" => emit_sample = true,
            "--emit-sample-session-stats" => emit_sample_stats = true,
            "--stats-summary" => stats_summary = true,
            "--queue-cap" => config.queue_capacity = parse_number(args.next()),
            "--max-sessions" => config.max_sessions = parse_number(args.next()),
            "--max-table-bytes" => config.max_table_bytes = parse_number(args.next()),
            "--max-result-entries" => config.max_result_entries = parse_number(args.next()),
            "--max-result-bytes" => config.max_result_bytes = parse_number(args.next()),
            "--cache-dir" => match args.next() {
                Some(dir) => config.cache_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--faults" => match args.next() {
                Some(spec) => faults_flag = Some(spec),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(file) => check = Some(PathBuf::from(file)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if (emit_sample || emit_sample_stats) && check.is_some() {
        usage();
    }
    if stats_summary {
        config.trace_all = true;
    }
    let faults = match faults_flag {
        Some(spec) => FaultPlan::parse(&spec),
        None => FaultPlan::from_env(),
    };
    config.faults = match faults {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("invalid fault spec: {message}");
            std::process::exit(2)
        }
    };
    Options {
        config,
        emit_sample,
        emit_sample_stats,
        stats_summary,
        check,
    }
}

fn parse_number<N: std::str::FromStr>(arg: Option<String>) -> N {
    match arg.and_then(|raw| raw.parse().ok()) {
        Some(value) => value,
        None => usage(),
    }
}

fn main() -> ExitCode {
    let options = parse_args();

    if options.emit_sample {
        print!("{}", sample_session());
        return ExitCode::SUCCESS;
    }

    if options.emit_sample_stats {
        print!("{}", sample_session_stats());
        return ExitCode::SUCCESS;
    }

    if let Some(golden_path) = options.check {
        // Byte-compare the whole transcript: read stdin fully, serve
        // in-process, diff against the committed golden.
        let mut input = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut input) {
            eprintln!("failed to read stdin: {err}");
            return ExitCode::FAILURE;
        }
        let transcript = match run_session_text(&input, options.config) {
            Ok(transcript) => transcript,
            Err(err) => {
                eprintln!("session failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let golden = match std::fs::read_to_string(&golden_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to read golden {}: {err}", golden_path.display());
                return ExitCode::FAILURE;
            }
        };
        if golden != transcript {
            eprintln!(
                "FAIL: transcript drifted from golden {} — regenerate with \
                 `soc-serve --emit-sample-session | soc-serve > {}` and commit \
                 the diff if intentional",
                golden_path.display(),
                golden_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "OK: transcript matches golden {} byte-for-byte",
            golden_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let server = Server::new(options.config);
    let stdin = std::io::stdin();
    let served = server.serve(stdin.lock(), std::io::stdout());
    if options.stats_summary {
        eprint!("{}", render_stats_summary(&server.session_trace()));
    }
    match served {
        Ok(_) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("write error on stdout: {err}");
            ExitCode::FAILURE
        }
    }
}
