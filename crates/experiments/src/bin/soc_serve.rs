//! `soc-serve` — the persistent streaming optimizer service, on
//! stdin/stdout by default or on a socket with `--listen`.
//!
//! ```text
//! soc-serve                           serve NDJSON frames until EOF/Shutdown
//! soc-serve --listen PATH|HOST:PORT   accept concurrent connections on a
//!                                     Unix socket path or TCP address; each
//!                                     runs its own session over the shared
//!                                     server (drain on SIGTERM/SIGINT)
//! soc-serve --executors N             executor workers draining the shared
//!                                     admission queue (default 1)
//! soc-serve --drain-ms N              grace for in-flight requests once a
//!                                     drain starts (default 2000)
//! soc-serve --write-timeout-ms N      per-socket write timeout; a client
//!                                     that stops reading becomes a dead
//!                                     sink instead of blocking an
//!                                     executor (default 30000)
//! soc-serve --queue-cap N             bound the admission queue (default 64)
//! soc-serve --max-sessions N          bound the warm-session LRU (default 8)
//! soc-serve --max-table-bytes N       bound charged table memory (default 256 MiB)
//! soc-serve --cache-dir DIR           persist the module-row store in DIR/rows.v1
//!                                     and the solution cache in DIR/solutions.v1
//! soc-serve --max-store-bytes N       bound DIR/rows.v1: saves drop the
//!                                     coldest-touched rows until it fits
//!                                     (default unbounded)
//! soc-serve --max-result-entries N    bound the solution cache entries (default 256)
//! soc-serve --max-result-bytes N      bound the solution cache bytes (default 64 MiB)
//! soc-serve --faults SPEC             arm the fault-injection harness
//! soc-serve --list-socs               print the named-SOC catalogue and exit
//! soc-serve --emit-sample-session     print the canonical sample input
//! soc-serve --emit-sample-session-stats
//!                                     print the stats-enabled sample input
//! soc-serve --stats-summary           after serving, print an ASCII
//!                                     utilization summary on stderr
//! soc-serve --check GOLDEN            serve stdin, byte-compare the
//!                                     transcript against GOLDEN; exit 1 on drift
//! ```
//!
//! In socket mode the server announces `listening on <addr>` on stderr
//! once bound (with a TCP `:0` operand that line carries the real
//! port), serves until `SIGTERM`/`SIGINT`, then drains: it stops
//! accepting, lets in-flight requests finish within `--drain-ms`
//! (overdue ones answer `deadline_exceeded`; a connection that still
//! refuses to finish is abandoned and counted lost rather than allowed
//! to wedge the drain), ends every connection with its own `Bye`, and
//! persists the row store once — even when the listener exits on an
//! accept error. All
//! connections share one session registry, one row store, one solution
//! cache, and one admission queue drained by `--executors` workers;
//! per-connection responses keep admission order at any executor
//! count, and each connection's `Bye` carries connection-scoped
//! counters plus a `connection` identity block.
//!
//! One JSON frame per line in each direction: `{"Optimize": {...}}`,
//! `{"Cancel": {...}}`, `"Shutdown"` in; `{"Result": {...}}`,
//! `{"Error": {...}}`, and a final `{"Bye": {...}}` out, in admission
//! order. Requests name a SOC (embedded benchmark or inline `.soc`
//! text); identical SOC content shares one warm engine session behind an
//! LRU with memory accounting. Requests are isolated: a panicking
//! request answers a typed `Internal` error and the server keeps
//! serving. Identical `(SOC, request)` pairs are answered from an
//! exact-hit solution cache (in-flight duplicates coalesce onto one
//! computation), and with `--cache-dir` both the content-addressed
//! module time rows (`rows.v1`, bounded by `--max-store-bytes`) and the
//! successful responses themselves (`solutions.v1`) persist across
//! processes, so a restarted server rebuilds zero rows and replays
//! repeat requests as cache hits — the final `Bye` frame's `cache`
//! block reports both.
//! Requests that set `"stats": true` are answered with a per-request
//! `stats` block (cache provenance plus race-deterministic table
//! deltas) and the `Bye` gains an aggregate `trace` block;
//! `--stats-summary` additionally traces every request in-process and
//! prints a human-readable utilization summary on stderr after the
//! session ends, keeping timing and pool counters off the wire. The
//! fault spec (`--faults`, or the `SOCTEST_FAULTS` environment variable
//! when the flag is absent) is `stage:kind[:arg][@request_id]`,
//! comma-separated — e.g. `optimize:panic@r2,respond:delay:50,
//! store:panic@load`.

use soctest_experiments::serve::{
    render_soc_catalogue, render_stats_summary, run_session_text, sample_session,
    sample_session_stats,
};
use soctest_multisite::service::{
    BoundListener, FaultPlan, ListenAddr, Server, ServerConfig, TransportConfig,
};
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

struct Options {
    config: ServerConfig,
    listen: Option<String>,
    drain_ms: u64,
    write_timeout_ms: u64,
    emit_sample: bool,
    emit_sample_stats: bool,
    list_socs: bool,
    stats_summary: bool,
    check: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: soc-serve [--listen PATH|HOST:PORT] [--executors N] [--drain-ms N] \
         [--write-timeout-ms N] [--queue-cap N] [--max-sessions N] [--max-table-bytes N] \
         [--cache-dir DIR] [--max-store-bytes N] [--max-result-entries N] [--max-result-bytes N] \
         [--faults SPEC] [--stats-summary] [--check GOLDEN]\n\
         \x20      soc-serve --list-socs\n\
         \x20      soc-serve --emit-sample-session | --emit-sample-session-stats\n\
         serves NDJSON optimizer frames on stdin/stdout, or accepts concurrent \
         connections with --listen (drains on SIGTERM/SIGINT); --check \
         byte-compares the transcript against GOLDEN and exits 1 on drift"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut config = ServerConfig::default();
    let mut listen = None;
    let mut drain_ms = 2000;
    let mut write_timeout_ms = 30_000;
    let mut emit_sample = false;
    let mut emit_sample_stats = false;
    let mut list_socs = false;
    let mut stats_summary = false;
    let mut check = None;
    let mut faults_flag: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-sample-session" => emit_sample = true,
            "--emit-sample-session-stats" => emit_sample_stats = true,
            "--list-socs" => list_socs = true,
            "--stats-summary" => stats_summary = true,
            "--queue-cap" => config.queue_capacity = parse_number(args.next()),
            "--max-sessions" => config.max_sessions = parse_number(args.next()),
            "--max-table-bytes" => config.max_table_bytes = parse_number(args.next()),
            "--max-store-bytes" => config.max_store_bytes = Some(parse_number(args.next())),
            "--max-result-entries" => config.max_result_entries = parse_number(args.next()),
            "--max-result-bytes" => config.max_result_bytes = parse_number(args.next()),
            "--executors" => config.executors = parse_number(args.next()),
            "--drain-ms" => drain_ms = parse_number(args.next()),
            "--write-timeout-ms" => write_timeout_ms = parse_number(args.next()),
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => usage(),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => config.cache_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--faults" => match args.next() {
                Some(spec) => faults_flag = Some(spec),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(file) => check = Some(PathBuf::from(file)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    if (emit_sample || emit_sample_stats || list_socs) && (check.is_some() || listen.is_some()) {
        usage();
    }
    if check.is_some() && listen.is_some() {
        usage();
    }
    if stats_summary {
        config.trace_all = true;
    }
    let faults = match faults_flag {
        Some(spec) => FaultPlan::parse(&spec),
        None => FaultPlan::from_env(),
    };
    config.faults = match faults {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("invalid fault spec: {message}");
            std::process::exit(2)
        }
    };
    Options {
        config,
        listen,
        drain_ms,
        write_timeout_ms,
        emit_sample,
        emit_sample_stats,
        list_socs,
        stats_summary,
        check,
    }
}

/// Set by the `SIGTERM`/`SIGINT` handler; the transport accept loop
/// polls it and starts the graceful drain when it flips.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_signal: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the drain trigger for socket mode. The only non-library
/// code in the repo that needs `unsafe`: registering a handler for
/// `SIGTERM` (15) and `SIGINT` (2) via the C `signal` entry point —
/// the handler itself only flips an atomic, which is async-signal-safe.
fn install_drain_signals() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, request_shutdown);
        signal(SIGTERM, request_shutdown);
    }
}

/// Socket mode: bind, announce, serve until a drain signal, report the
/// server-lifetime aggregate on stderr.
fn serve_listener(addr_text: &str, options: &Options) -> ExitCode {
    let addr = match ListenAddr::parse(addr_text) {
        Ok(addr) => addr,
        Err(message) => {
            eprintln!("invalid --listen address: {message}");
            return ExitCode::from(2);
        }
    };
    let listener = match BoundListener::bind(&addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("failed to bind {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    // Announced on stderr so scripts (and the e2e suite) can discover a
    // TCP `:0` port without racing the first client.
    eprintln!("listening on {}", listener.local_addr());
    install_drain_signals();
    let server = Server::new(options.config.clone());
    let mut transport = TransportConfig::default();
    transport.drain_grace = Duration::from_millis(options.drain_ms);
    transport.write_timeout = Duration::from_millis(options.write_timeout_ms.max(1));
    match listener.serve(&server, &transport, &SHUTDOWN) {
        Ok(stats) => {
            eprintln!(
                "drained: {} connection(s), {} served, {} error(s) ({} internal), \
                 {} refused accept(s), {} lost, {} row(s) persisted",
                stats.connections,
                stats.served,
                stats.errors,
                stats.internal_errors,
                stats.refused_accepts,
                stats.lost_connections,
                stats.store_rows_saved,
            );
            if options.stats_summary {
                eprint!("{}", render_stats_summary(&server.session_trace()));
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("listener failed: {error}");
            ExitCode::FAILURE
        }
    }
}

fn parse_number<N: std::str::FromStr>(arg: Option<String>) -> N {
    match arg.and_then(|raw| raw.parse().ok()) {
        Some(value) => value,
        None => usage(),
    }
}

fn main() -> ExitCode {
    let options = parse_args();

    if options.emit_sample {
        print!("{}", sample_session());
        return ExitCode::SUCCESS;
    }

    if options.emit_sample_stats {
        print!("{}", sample_session_stats());
        return ExitCode::SUCCESS;
    }

    if options.list_socs {
        print!("{}", render_soc_catalogue());
        return ExitCode::SUCCESS;
    }

    if let Some(addr_text) = &options.listen {
        return serve_listener(addr_text, &options);
    }

    if let Some(golden_path) = options.check {
        // Byte-compare the whole transcript: read stdin fully, serve
        // in-process, diff against the committed golden.
        let mut input = String::new();
        if let Err(err) = std::io::stdin().read_to_string(&mut input) {
            eprintln!("failed to read stdin: {err}");
            return ExitCode::FAILURE;
        }
        let transcript = match run_session_text(&input, options.config) {
            Ok(transcript) => transcript,
            Err(err) => {
                eprintln!("session failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let golden = match std::fs::read_to_string(&golden_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("failed to read golden {}: {err}", golden_path.display());
                return ExitCode::FAILURE;
            }
        };
        if golden != transcript {
            eprintln!(
                "FAIL: transcript drifted from golden {} — regenerate with \
                 `soc-serve --emit-sample-session | soc-serve > {}` and commit \
                 the diff if intentional",
                golden_path.display(),
                golden_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "OK: transcript matches golden {} byte-for-byte",
            golden_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let server = Server::new(options.config);
    let stdin = std::io::stdin();
    let served = server.serve(stdin.lock(), std::io::stdout());
    if options.stats_summary {
        eprint!("{}", render_stats_summary(&server.session_trace()));
    }
    match served {
        Ok(_) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("write error on stdout: {err}");
            ExitCode::FAILURE
        }
    }
}
