//! `soc-client` — pipe an NDJSON session to a listening `soc-serve`.
//!
//! ```text
//! soc-client PATH|HOST:PORT [--fail-on-error]
//! ```
//!
//! Connects to a `soc-serve --listen` socket (Unix path or TCP
//! address), streams stdin to the server line-by-line, half-closes the
//! write side at stdin EOF, and prints every response frame to stdout
//! until the server's final `Bye`. The transcript on stdout is exactly
//! what the same input would produce over stdin/stdout mode (modulo the
//! `Bye` frame's connection-scoped counters), so replies can be diffed
//! against goldens or a local replay.
//!
//! Exit codes:
//!
//! * `0` — clean session: the server answered a final `Bye`;
//! * `1` — transport failure: connect, read, or write error, a response
//!   that is not a valid server frame, or a stream that ended without
//!   `Bye`;
//! * `2` — usage error;
//! * `3` — with `--fail-on-error`: the session completed but at least
//!   one `Error` frame was answered (useful in CI pipelines).

use soctest_multisite::service::{ClientStream, ListenAddr, ServerFrame};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: soc-client PATH|HOST:PORT [--fail-on-error]\n\
         pipes NDJSON optimizer frames from stdin to a listening soc-serve \
         and prints the responses; exits 3 with --fail-on-error if any \
         Error frame was answered"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut addr_text = None;
    let mut fail_on_error = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fail-on-error" => fail_on_error = true,
            _ if addr_text.is_none() && !arg.starts_with('-') => addr_text = Some(arg),
            _ => usage(),
        }
    }
    let Some(addr_text) = addr_text else { usage() };
    let addr = match ListenAddr::parse(&addr_text) {
        Ok(addr) => addr,
        Err(message) => {
            eprintln!("invalid address: {message}");
            return ExitCode::from(2);
        }
    };
    let stream = match ClientStream::connect(&addr) {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("failed to connect to {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let mut write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(error) => {
            eprintln!("failed to clone connection: {error}");
            return ExitCode::FAILURE;
        }
    };

    // Uplink on its own thread: stdin may be an interactive pipe that
    // only closes after responses have started flowing, so the two
    // directions must not block each other. Never joined — if the
    // server ends the session (a drain) while stdin is still open, the
    // uplink stays parked on a stdin read and exits with the process.
    // The session verdict is the downlink's: a server that stopped
    // listening mid-uplink either still answers its Bye (fine) or
    // closes without one (reported below).
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let send = |write_half: &mut ClientStream| -> std::io::Result<()> {
            for line in stdin.lock().lines() {
                let line = line?;
                writeln!(write_half, "{line}")?;
                write_half.flush()?;
            }
            Ok(())
        };
        if let Err(error) = send(&mut write_half) {
            eprintln!("uplink error: {error}");
        }
        // Stdin EOF: tell the server "no more frames" while keeping the
        // read side open for the remaining responses and the Bye.
        write_half.shutdown_write();
    });

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut saw_bye = false;
    let mut saw_error = false;
    let mut outcome = ExitCode::SUCCESS;
    for line in BufReader::new(stream).lines() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                eprintln!("read error: {error}");
                outcome = ExitCode::FAILURE;
                break;
            }
        };
        match serde_json::from_str::<ServerFrame>(&line) {
            Ok(ServerFrame::Bye(_)) => saw_bye = true,
            Ok(ServerFrame::Error(_)) => saw_error = true,
            Ok(ServerFrame::Result(_)) => {}
            Err(error) => {
                eprintln!("invalid server frame ({error}): {line}");
                outcome = ExitCode::FAILURE;
                break;
            }
        }
        if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
            // A closed stdout (e.g. `head`) is not a session failure,
            // but there is no one left to print for.
            break;
        }
    }

    if outcome != ExitCode::SUCCESS {
        return outcome;
    }
    if !saw_bye {
        eprintln!("connection closed without a Bye frame");
        return ExitCode::FAILURE;
    }
    if fail_on_error && saw_error {
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
