//! No-dependency SVG renderings of the Figure 5–7 artifacts.
//!
//! Each figure artifact's pretty-printed JSON document is re-parsed into
//! a generic [`Value`] tree and rendered as a standalone line chart —
//! `<name>.svg` next to `<name>.json` / `<name>.md` under `artifacts/`.
//! The renderer is deliberately dependency-free and fully deterministic
//! (fixed canvas, fixed palette, fixed-precision coordinates), so the
//! SVGs are committable goldens byte-checked by `soctest-repro --check`
//! exactly like the JSON and markdown files.
//!
//! Parsing the *serialised* artifact rather than the in-memory record
//! keeps the plot layer decoupled from the experiment types: anything
//! that round-trips through `artifacts/*.json` can be plotted, and the
//! chart provably reflects the committed bytes.

use crate::artifact::Artifact;
use serde::Value;
use std::fmt::Write as _;

/// Canvas width in pixels.
const WIDTH: f64 = 880.0;
/// Canvas height in pixels.
const HEIGHT: f64 = 520.0;
/// Plot-area margins: left, right, top, bottom.
const MARGINS: (f64, f64, f64, f64) = (86.0, 20.0, 48.0, 58.0);
/// The fixed series palette (cycled when a figure has more curves).
const PALETTE: [&str; 14] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf", "#aec7e8", "#ffbb78", "#98df8a", "#ff9896",
];

/// Attaches the figure's SVG rendering to `artifact` when its name is a
/// known Figure 5–7 artifact; non-figure artifacts pass through
/// unchanged.
#[must_use]
pub fn attach(mut artifact: Artifact) -> Artifact {
    artifact.svg = svg_for(artifact.name, &artifact.json);
    artifact
}

/// Renders the SVG chart for a named figure artifact from its JSON
/// document. Returns `None` for names without a chart (tables, tiers)
/// — and for JSON that does not parse, which only happens when a caller
/// feeds a non-artifact document.
#[must_use]
pub fn svg_for(name: &str, json: &str) -> Option<String> {
    let value: Value = serde_json::from_str(json).ok()?;
    let chart = match name {
        "fig5_sites" => fig5_chart(&value)?,
        "fig6a_channels" => sweep_chart(
            &value,
            "Figure 6(a): throughput vs. ATE channel count",
            "ATE channels",
        )?,
        "fig6b_depth" => sweep_chart(
            &value,
            "Figure 6(b): throughput vs. vector-memory depth",
            "depth [vectors]",
        )?,
        "fig7a_contact_yield" => fig7a_chart(&value)?,
        "fig7b_abort_on_fail" => fig7b_chart(&value)?,
        _ => return None,
    };
    Some(chart.render())
}

/// One labelled polyline of a chart.
struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

/// A complete line chart: title, axis labels, and its series.
struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

/// The numeric payload of a [`Value`], if it is one.
fn number(value: &Value) -> Option<f64> {
    match value {
        Value::I64(v) => Some(*v as f64),
        Value::U64(v) => Some(*v as f64),
        Value::F64(v) => Some(*v),
        _ => None,
    }
}

/// A numeric field of an object value.
fn number_field(value: &Value, field: &str) -> Option<f64> {
    number(value.get(field)?)
}

/// Figure 5: four curves — Steps 1+2 and Step 1 only, with and without
/// stimulus broadcast — over the site count.
fn fig5_chart(value: &Value) -> Option<Chart> {
    let mut series = Vec::new();
    for variant in value.as_array()? {
        let broadcast = matches!(variant.get("stimulus_broadcast")?, Value::Bool(true));
        let tag = if broadcast {
            "with broadcast"
        } else {
            "no broadcast"
        };
        let mut full = Vec::new();
        let mut step1 = Vec::new();
        for row in variant.get("curve")?.as_array()? {
            let sites = number_field(row, "sites")?;
            full.push((sites, number_field(row, "devices_per_hour")?));
            step1.push((sites, number_field(row, "step1_only_devices_per_hour")?));
        }
        series.push(Series {
            label: format!("Steps 1+2, {tag}"),
            points: full,
        });
        series.push(Series {
            label: format!("Step 1 only, {tag}"),
            points: step1,
        });
    }
    Some(Chart {
        title: "Figure 5: throughput vs. number of sites (PNX8550 stand-in)".to_string(),
        x_label: "sites".to_string(),
        y_label: "devices per hour".to_string(),
        series,
    })
}

/// Figures 6(a)/6(b): one optimal-throughput curve over a swept
/// parameter (`SweepRow` array artifacts).
fn sweep_chart(value: &Value, title: &str, x_label: &str) -> Option<Chart> {
    let points = value
        .as_array()?
        .iter()
        .map(|row| {
            Some((
                number_field(row, "parameter")?,
                number_field(row, "devices_per_hour")?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(Chart {
        title: title.to_string(),
        x_label: x_label.to_string(),
        y_label: "devices per hour".to_string(),
        series: vec![Series {
            label: "optimal multi-site".to_string(),
            points,
        }],
    })
}

/// Figure 7(a): one unique-throughput curve per contact yield over the
/// shared depth grid.
fn fig7a_chart(value: &Value) -> Option<Chart> {
    let depths = value
        .get("depths")?
        .as_array()?
        .iter()
        .map(number)
        .collect::<Option<Vec<_>>>()?;
    let mut series = Vec::new();
    for curve in value.get("curves")?.as_array()? {
        let yield_value = number_field(curve, "contact_yield")?;
        let throughputs = curve
            .get("unique_devices_per_hour")?
            .as_array()?
            .iter()
            .map(number)
            .collect::<Option<Vec<_>>>()?;
        if throughputs.len() != depths.len() {
            return None;
        }
        series.push(Series {
            label: format!("pc={}", trim_float(yield_value)),
            points: depths.iter().copied().zip(throughputs).collect(),
        });
    }
    Some(Chart {
        title: "Figure 7(a): unique throughput vs. depth per contact yield (re-test on)"
            .to_string(),
        x_label: "depth [vectors]".to_string(),
        y_label: "unique devices per hour".to_string(),
        series,
    })
}

/// Figure 7(b): one expected-test-time curve per manufacturing yield
/// over the site count (x = 1-based site index).
fn fig7b_chart(value: &Value) -> Option<Chart> {
    let mut series = Vec::new();
    for curve in value.as_array()? {
        let yield_value = number_field(curve, "manufacturing_yield")?;
        let points = curve
            .get("expected_test_time_s")?
            .as_array()?
            .iter()
            .enumerate()
            .map(|(i, v)| Some((i as f64 + 1.0, number(v)?)))
            .collect::<Option<Vec<_>>>()?;
        series.push(Series {
            label: format!("pm={}", trim_float(yield_value)),
            points,
        });
    }
    Some(Chart {
        title: "Figure 7(b): expected test time vs. sites per manufacturing yield (abort-on-fail)"
            .to_string(),
        x_label: "sites".to_string(),
        y_label: "expected test time [s]".to_string(),
        series,
    })
}

impl Chart {
    /// Renders the chart as a standalone SVG document (trailing newline
    /// included), fully determined by the chart data.
    fn render(&self) -> String {
        let (left, right, top, bottom) = MARGINS;
        let plot_w = WIDTH - left - right;
        let plot_h = HEIGHT - top - bottom;
        let (x_min, x_max) = data_range(&self.series, |p| p.0);
        let (y_min, y_max) = pad_range(data_range(&self.series, |p| p.1));
        let to_x = |v: f64| left + (v - x_min) / (x_max - x_min) * plot_w;
        let to_y = |v: f64| top + plot_h - (v - y_min) / (y_max - y_min) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="Helvetica,Arial,sans-serif">"#
        );
        let _ = writeln!(
            out,
            r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="#ffffff"/>"##
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="26" font-size="16" text-anchor="middle">{}</text>"#,
            fixed(WIDTH / 2.0),
            escape(&self.title)
        );

        // Grid lines and tick labels.
        for tick in nice_ticks(x_min, x_max, 8) {
            let x = fixed(to_x(tick));
            let _ = writeln!(
                out,
                r##"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="#dddddd"/>"##,
                fixed(top),
                fixed(top + plot_h)
            );
            let _ = writeln!(
                out,
                r#"<text x="{x}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
                fixed(top + plot_h + 18.0),
                tick_label(tick)
            );
        }
        for tick in nice_ticks(y_min, y_max, 6) {
            let y = fixed(to_y(tick));
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
                fixed(left),
                fixed(left + plot_w)
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-size="12" text-anchor="end">{}</text>"#,
                fixed(left - 8.0),
                fixed(to_y(tick) + 4.0),
                tick_label(tick)
            );
        }

        // Axes on top of the grid.
        let _ = writeln!(
            out,
            r##"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="#333333"/>"##,
            fixed(left),
            fixed(top),
            fixed(plot_w),
            fixed(plot_h)
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">{}</text>"#,
            fixed(left + plot_w / 2.0),
            fixed(HEIGHT - 14.0),
            escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="18" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            fixed(top + plot_h / 2.0),
            fixed(top + plot_h / 2.0),
            escape(&self.y_label)
        );

        // The series polylines.
        for (index, series) in self.series.iter().enumerate() {
            let color = PALETTE[index % PALETTE.len()];
            let points: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{},{}", fixed(to_x(x)), fixed(to_y(y))))
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline fill="none" stroke="{color}" stroke-width="1.5" points="{}"/>"#,
                points.join(" ")
            );
        }

        // Legend in the top-left corner of the plot area.
        for (index, series) in self.series.iter().enumerate() {
            let color = PALETTE[index % PALETTE.len()];
            let y = top + 14.0 + 16.0 * index as f64;
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{color}" stroke-width="2"/>"#,
                fixed(left + 10.0),
                fixed(y - 4.0),
                fixed(left + 34.0),
                fixed(y - 4.0)
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
                fixed(left + 40.0),
                fixed(y),
                escape(&series.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

/// The min/max of one coordinate across every series point; degenerate
/// ranges are widened so the projection never divides by zero.
fn data_range(series: &[Series], coord: impl Fn(&(f64, f64)) -> f64) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in series {
        for p in &s.points {
            min = min.min(coord(p));
            max = max.max(coord(p));
        }
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    if min == max {
        return (min - 0.5, max + 0.5);
    }
    (min, max)
}

/// Pads a value range by 5% on both ends (breathing room for curves).
fn pad_range((min, max): (f64, f64)) -> (f64, f64) {
    let pad = (max - min) * 0.05;
    (min - pad, max + pad)
}

/// Round tick positions inside `[min, max]` at a 1/2/5 × 10^k step
/// close to `target` intervals.
fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    let raw_step = (max - min) / target as f64;
    let magnitude = 10f64.powf(raw_step.abs().log10().floor());
    let normalized = raw_step / magnitude;
    let step = if normalized < 1.5 {
        magnitude
    } else if normalized < 3.5 {
        2.0 * magnitude
    } else if normalized < 7.5 {
        5.0 * magnitude
    } else {
        10.0 * magnitude
    };
    let mut ticks = Vec::new();
    let mut tick = (min / step).ceil() * step;
    while tick <= max + step * 1e-9 {
        // Snap near-zero accumulations back to exactly zero.
        if tick.abs() < step * 1e-9 {
            tick = 0.0;
        }
        ticks.push(tick);
        tick += step;
    }
    ticks
}

/// A human tick label: `k`/`M` suffixes for large magnitudes, trimmed
/// decimals otherwise.
fn tick_label(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e6 {
        format!("{}M", trim_float(value / 1e6))
    } else if abs >= 1e3 {
        format!("{}k", trim_float(value / 1e3))
    } else {
        trim_float(value)
    }
}

/// Formats with three decimals, then trims trailing zeros (and a bare
/// trailing dot) — deterministic and stable across platforms.
fn trim_float(value: f64) -> String {
    let text = format!("{value:.3}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

/// A pixel coordinate at fixed two-decimal precision.
fn fixed(value: f64) -> String {
    format!("{value:.2}")
}

/// Escapes the three XML-special characters that can appear in labels.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_figures_have_no_chart() {
        assert!(svg_for("table1_itc02", "[]").is_none());
        assert!(svg_for("scaled_tier", "[]").is_none());
        assert!(svg_for("fig6a_channels", "not json").is_none());
    }

    #[test]
    fn sweep_chart_renders_points_and_labels() {
        let json = r#"[
            {"parameter": 512, "devices_per_hour": 100000.0},
            {"parameter": 1024, "devices_per_hour": 250000.0}
        ]"#;
        let svg = svg_for("fig6a_channels", json).expect("chart renders");
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("Figure 6(a)"));
        assert!(svg.contains("ATE channels"));
        assert!(svg.contains("polyline"));
        // Deterministic: byte-identical on re-render.
        assert_eq!(svg, svg_for("fig6a_channels", json).unwrap());
    }

    #[test]
    fn fig5_chart_draws_four_series() {
        let json = r#"[
            {"stimulus_broadcast": false, "curve": [
                {"sites": 1, "devices_per_hour": 10.0, "step1_only_devices_per_hour": 8.0},
                {"sites": 2, "devices_per_hour": 19.0, "step1_only_devices_per_hour": 15.0}
            ]},
            {"stimulus_broadcast": true, "curve": [
                {"sites": 1, "devices_per_hour": 12.0, "step1_only_devices_per_hour": 9.0},
                {"sites": 2, "devices_per_hour": 23.0, "step1_only_devices_per_hour": 17.0}
            ]}
        ]"#;
        let svg = svg_for("fig5_sites", json).expect("chart renders");
        assert_eq!(svg.matches("<polyline").count(), 4);
        assert!(svg.contains("Steps 1+2, with broadcast"));
        assert!(svg.contains("Step 1 only, no broadcast"));
    }

    #[test]
    fn yield_labels_trim_trailing_zeros() {
        assert_eq!(trim_float(0.5), "0.5");
        assert_eq!(trim_float(0.995), "0.995");
        assert_eq!(trim_float(1.0), "1");
        assert_eq!(tick_label(800_000.0), "800k");
        assert_eq!(tick_label(12_000_000.0), "12M");
        assert_eq!(tick_label(0.02), "0.02");
    }

    #[test]
    fn ticks_are_round_and_inside_the_range() {
        let ticks = nice_ticks(0.0, 100.0, 8);
        assert!(ticks.contains(&0.0) && ticks.contains(&100.0));
        for pair in ticks.windows(2) {
            assert!((pair[1] - pair[0] - 10.0).abs() < 1e-9);
        }
        let fine = nice_ticks(5_000_000.0, 14_000_000.0, 8);
        assert!(fine.iter().all(|t| *t >= 5_000_000.0 && *t <= 14_000_000.0));
    }

    #[test]
    fn malformed_figure_json_is_rejected_not_panicked() {
        assert!(svg_for("fig5_sites", "{}").is_none());
        assert!(svg_for("fig7a_contact_yield", "[]").is_none());
        assert!(svg_for("fig7b_abort_on_fail", r#"[{"manufacturing_yield": "x"}]"#).is_none());
    }
}
