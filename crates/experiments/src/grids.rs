//! Dense parameter grids for the reproduction driver.
//!
//! The seed binaries in `soctest-bench` sweep the paper's figures on the
//! paper's own (coarse) grids — 9 channel counts, 10 depths, 11 depths per
//! Table 1 SOC. With the incremental row kernel the optimizer is cheap
//! enough to run the same sweeps at 4x the grid density, which is what the
//! committed `artifacts/` are generated from. The seed grids in
//! [`soctest_bench`] are left untouched so the original paper parameters
//! remain available verbatim.

use soctest_ate::spec::MEGA_VECTORS;
use soctest_soc_model::benchmarks::{d695, p22810, p34392, p93791};
use soctest_soc_model::Soc;

/// Figure 6(a) channel counts, 4x denser than the seed grid: 512 to 1024
/// in steps of 16 instead of 64 (33 points instead of 9).
pub fn fig6a_channel_counts_dense() -> Vec<usize> {
    (0..=32).map(|i| 512 + 16 * i).collect()
}

/// Figure 6(b) / 7(a) vector-memory depths, 4x denser than the seed grid:
/// 5 M to 14 M vectors in steps of 256 K instead of 1 M (37 points instead
/// of 10).
pub fn fig6b_depths_dense() -> Vec<u64> {
    let step = MEGA_VECTORS / 4;
    (0..=36).map(|i| 5 * MEGA_VECTORS + step * i).collect()
}

/// Figure 7(a) contact yields (the paper's six curves).
pub fn fig7a_contact_yields() -> Vec<f64> {
    soctest_bench::fig7a_contact_yields()
}

/// Figure 7(b) manufacturing yields, denser than the seed's six values:
/// 1.0 down to 0.70 in steps of 0.025 (13 curves).
pub fn fig7b_manufacturing_yields_dense() -> Vec<f64> {
    (0..=12).map(|i| 1.0 - 0.025 * i as f64).collect()
}

/// Figure 7(b) site-count range (doubled versus the seed's 8).
pub const FIG7B_MAX_SITES: usize = 16;

/// `points` evenly spaced integers from `min` to `max` inclusive.
fn linspace(min: u64, max: u64, points: usize) -> Vec<u64> {
    assert!(points >= 2 && max > min);
    (0..points)
        .map(|i| min + (max - min) * i as u64 / (points - 1) as u64)
        .collect()
}

/// Table 1 cases on a 4x-denser depth grid: for each ITC'02 SOC, the ATE
/// channel budget and 41 evenly spaced vector-memory depths spanning the
/// same range as the seed's 11.
pub fn table1_cases_dense() -> Vec<(Soc, usize, Vec<u64>)> {
    vec![
        (d695(), 256, linspace(48 * 1024, 128 * 1024, 41)),
        (p22810(), 512, linspace(384 * 1024, 1024 * 1024, 41)),
        (p34392(), 512, linspace(768 * 1024, 2_000_000, 41)),
        (p93791(), 512, linspace(1_000_000, 3_512_000, 41)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_grids_are_at_least_4x_the_seed_density() {
        // Same ranges as the seed grids, >= 4x the points.
        let seed_channels = soctest_bench::fig6a_channel_counts();
        let dense_channels = fig6a_channel_counts_dense();
        assert_eq!(dense_channels.first(), seed_channels.first());
        assert_eq!(dense_channels.last(), seed_channels.last());
        assert!(dense_channels.len() >= 4 * seed_channels.len() - 4);

        let seed_depths = soctest_bench::fig6b_depths();
        let dense_depths = fig6b_depths_dense();
        assert_eq!(dense_depths.first(), seed_depths.first());
        assert_eq!(dense_depths.last(), seed_depths.last());
        assert!(dense_depths.len() >= 4 * seed_depths.len() - 4);

        for ((seed_soc, seed_ch, seed), (soc, ch, dense)) in soctest_bench::table1_cases()
            .iter()
            .zip(table1_cases_dense().iter())
        {
            assert_eq!(seed_soc.name(), soc.name());
            assert_eq!(seed_ch, ch);
            assert_eq!(seed.first(), dense.first());
            assert!(dense.len() >= 4 * seed.len() - 4);
        }

        // Fig 7(b): grid points = yields x sites, seed 6 x 8 = 48.
        let fig7b_points = fig7b_manufacturing_yields_dense().len() * FIG7B_MAX_SITES;
        assert!(fig7b_points >= 4 * 6 * 8);
    }

    #[test]
    fn grids_are_sorted_and_deduplicated() {
        let depths = fig6b_depths_dense();
        assert!(depths.windows(2).all(|p| p[0] < p[1]));
        for (_, _, depths) in table1_cases_dense() {
            assert!(depths.windows(2).all(|p| p[0] < p[1]));
        }
        let yields = fig7b_manufacturing_yields_dense();
        assert!(yields.windows(2).all(|p| p[0] > p[1]));
        assert_eq!(yields.first().copied(), Some(1.0));
    }
}
