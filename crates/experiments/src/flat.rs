//! The flat-SOC (Problem 2) workload tier.
//!
//! Problem 2 of the paper covers SOCs whose top-level test is flattened:
//! one "module" — the whole chip — whose wrapper coincides with the E-RPCT
//! wrapper, no TAMs (Figure 2(b)). [`soctest_multisite::flat`] treats it as
//! the degenerate single-module case of Problem 1; this artifact runs that
//! path over flattened ITC'02 benchmarks and a flattened NoC-style
//! synthetic mesh, and records the resulting single-wrapper operating
//! points as goldens.
//!
//! A flattened SOC concentrates *all* internal scan chains into one module
//! (1300+ chains for the NoC mesh), which makes it the stress shape for
//! the narrow-region heap LPT and the demand-driven time table: the
//! optimizer probes a handful of widths out of hundreds, each an
//! O(s log w) heap partition instead of an O(s·w) scan.

use crate::artifact::{markdown_table, Artifact};
use crate::scaled::noc_soc;
use serde::Serialize;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest};
use soctest_multisite::flat::flatten_soc;
use soctest_multisite::problem::OptimizerConfig;
use soctest_soc_model::benchmarks::{d695, p22810};
use soctest_soc_model::Soc;

/// One flat-tier workload: a modular SOC to flatten plus its test cell.
#[derive(Debug, Clone)]
pub struct FlatWorkload {
    /// Workload name (the flattened SOC's name).
    pub name: &'static str,
    /// The *modular* SOC; the experiment flattens it.
    pub soc: Soc,
    /// ATE channel count for this workload.
    pub ate_channels: usize,
    /// ATE vector-memory depth for this workload, in vectors.
    pub depth: u64,
}

/// The deterministic flat-tier workload set: two ITC'02 benchmarks plus a
/// NoC-style mesh (the `noc_0256` profile of the scaled tier). Depths are
/// sized above each flattened chip's test-time floor `(1 + L)·p + L`.
pub fn flat_workloads() -> Vec<FlatWorkload> {
    vec![
        FlatWorkload {
            name: "d695_flat",
            soc: d695(),
            ate_channels: 256,
            depth: 96 * 1024,
        },
        FlatWorkload {
            name: "p22810_flat",
            soc: p22810(),
            ate_channels: 512,
            depth: 12 * 1024 * 1024,
        },
        FlatWorkload {
            name: "noc_0256_flat",
            soc: noc_soc("noc_0256", 256),
            ate_channels: 1024,
            depth: 16 * 1024 * 1024,
        },
    ]
}

/// The optimization outcome of one flattened SOC.
#[derive(Debug, Clone, Serialize)]
pub struct FlatRow {
    /// Workload name (`<soc>_flat`).
    pub name: String,
    /// Modules of the original, modular SOC.
    pub source_modules: usize,
    /// Internal scan chains of the flattened chip-level module.
    pub chains: usize,
    /// Pattern count of the flattened test (sum over the source modules).
    pub patterns: u64,
    /// ATE channels of the workload's test cell.
    pub ate_channels: usize,
    /// Vector-memory depth of the workload's test cell, in vectors.
    pub depth: u64,
    /// Wrapper (E-RPCT) width of the single chip-level channel group at
    /// the channel-minimal Step 1 design.
    pub step1_width: usize,
    /// Maximum multi-site.
    pub max_sites: usize,
    /// Throughput-optimal site count.
    pub optimal_sites: usize,
    /// Wrapper width at the optimum (after Step 2 redistribution).
    pub optimal_width: usize,
    /// Chip test application time at the optimum, in cycles.
    pub test_time_cycles: u64,
    /// Chip manufacturing test time at the optimum, in seconds.
    pub test_time_s: f64,
    /// Throughput at the optimum, devices per hour.
    pub devices_per_hour: f64,
}

/// Runs the flat tier and renders the artifact.
///
/// # Panics
///
/// Panics if a workload is infeasible on its test cell — the workload set
/// is fixed, so that is a bug in the specs, not an input error.
pub fn flat_tier() -> Artifact {
    let rows: Vec<FlatRow> = flat_workloads()
        .into_iter()
        .map(|workload| {
            let cell = TestCell::new(
                AteSpec::new(workload.ate_channels, workload.depth, 5.0e6),
                ProbeStation::paper_probe_station(),
            );
            let config = OptimizerConfig::new(cell);
            // Flatten once and optimize that same instance directly
            // (`optimize_flat` is a flatten-then-optimize wrapper; going
            // through it would flatten a second time and decouple the
            // reported shape from the optimized one).
            let flat = flatten_soc(&workload.soc);
            let solution = Engine::builder(&flat)
                .max_channels(workload.ate_channels)
                .build()
                .run(&OptimizeRequest::new(config))
                .unwrap_or_else(|err| panic!("workload {} infeasible: {err}", workload.name))
                .into_solution()
                .expect("a plain request answers with a solution");
            assert_eq!(
                solution.step1_architecture.groups.len(),
                1,
                "a flat SOC has exactly one channel group"
            );
            let chip = &flat.modules()[0];
            FlatRow {
                name: workload.name.to_string(),
                source_modules: workload.soc.num_modules(),
                chains: chip.scan_chains().len(),
                patterns: chip.patterns(),
                ate_channels: workload.ate_channels,
                depth: workload.depth,
                step1_width: solution.step1_architecture.groups[0].width,
                max_sites: solution.max_sites,
                optimal_sites: solution.optimal.sites,
                optimal_width: solution.optimal_architecture.groups[0].width,
                test_time_cycles: solution.optimal.test_time_cycles,
                test_time_s: solution.optimal.manufacturing_test_time_s,
                devices_per_hour: solution.optimal.devices_per_hour,
            }
        })
        .collect();

    let table = markdown_table(
        &[
            "workload",
            "src modules",
            "chains",
            "patterns",
            "ATE ch",
            "w1",
            "n_max",
            "n_opt",
            "w_opt",
            "t_m [s]",
            "D_th [/h]",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.source_modules.to_string(),
                    r.chains.to_string(),
                    r.patterns.to_string(),
                    r.ate_channels.to_string(),
                    r.step1_width.to_string(),
                    r.max_sites.to_string(),
                    r.optimal_sites.to_string(),
                    r.optimal_width.to_string(),
                    format!("{:.4}", r.test_time_s),
                    format!("{:.1}", r.devices_per_hour),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let markdown = format!(
        "# Flat-SOC tier (Problem 2): single-wrapper chips through the two-step optimizer\n\n\
         The chip-level wrapper coincides with the E-RPCT wrapper and there are no TAMs; \
         `w1` is the channel-minimal wrapper width, `w_opt` the width after Step 2 \
         redistribution at the throughput optimum.\n\n{table}"
    );
    Artifact::render(
        "flat_soc",
        "Flat-SOC tier (Problem 2): flattened ITC'02 + NoC chips, single-wrapper operating points",
        &rows,
        markdown,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::validate::is_usable;

    #[test]
    fn workloads_are_deterministic_and_usable() {
        let first = flat_workloads();
        let second = flat_workloads();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.soc, b.soc, "workload {} not deterministic", a.name);
            assert!(is_usable(&a.soc), "workload {} not usable", a.name);
        }
    }

    #[test]
    fn depths_clear_every_flattened_floor() {
        use soctest_wrapper::row::ModuleShape;
        for workload in flat_workloads() {
            let flat = flatten_soc(&workload.soc);
            let shape = ModuleShape::of(&flat.modules()[0]);
            assert!(
                shape.floor_time() <= workload.depth,
                "{}: floor {} exceeds depth {}",
                workload.name,
                shape.floor_time(),
                workload.depth
            );
        }
    }
}
