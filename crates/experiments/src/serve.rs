//! Helpers behind the `soc-serve` binary: the canonical sample NDJSON
//! session and an in-process session runner.
//!
//! The sample session exercises one of everything deterministic the
//! streaming service does — cold and warm optimizations, a sweep, a
//! second SOC, an exact solution-cache hit, a malformed line, a
//! `Cancel` for an unknown id, an unknown SOC name, and a clean
//! `Shutdown` — so its transcript can be committed as a golden and
//! byte-checked in CI, exactly like the `soc-batch` sample pair. Wall-clock-dependent behaviour (deadlines,
//! cancellation races, overload shedding) is deliberately absent here;
//! the fault-injection e2e suite covers it with bounded assertions
//! instead of byte equality.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::service::{ClientFrame, OptimizeFrame, Server, ServerConfig, SocSpec};
use soctest_multisite::{OptimizeRequest, OptimizerConfig, SweepAxis};
use std::io::Cursor;

/// The paper's 256-channel, 96k-deep test cell.
fn paper_cell() -> TestCell {
    TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    )
}

/// A roomier cell for the larger p22810 SOC.
fn big_cell() -> TestCell {
    TestCell::new(
        AteSpec::new(512, 768 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    )
}

fn line(frame: &ClientFrame) -> String {
    serde_json::to_string(frame).expect("client frames serialise")
}

/// The canonical sample session input: NDJSON client frames, one per
/// line, ending in `Shutdown`. Deterministic, so the transcript the
/// server answers is a committable golden.
pub fn sample_session() -> String {
    let frames = [
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r1".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
        }),
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r2".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell()))
                .with_sweep(SweepAxis::Channels(vec![192, 256])),
            deadline_ms: None,
        }),
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r3".to_string(),
            soc: SocSpec::Named("p22810".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(big_cell())),
            deadline_ms: None,
        }),
        // An exact repeat of r1: answered from the solution cache
        // (`"cached":true`), deterministically.
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r4".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
        }),
    ];
    let mut session = String::new();
    for frame in &frames {
        session.push_str(&line(frame));
        session.push('\n');
    }
    // One of every deterministic failure: a truncated frame, a Cancel
    // for an id that is not in flight, and an unknown SOC name.
    session.push_str("{\"Optimize\":\n");
    session.push_str(&line(&ClientFrame::Cancel {
        request_id: "ghost".to_string(),
    }));
    session.push('\n');
    session.push_str(&line(&ClientFrame::Optimize(OptimizeFrame {
        request_id: "r5".to_string(),
        soc: SocSpec::Named("not_a_soc".to_string()),
        request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
        deadline_ms: None,
    })));
    session.push('\n');
    session.push_str(&line(&ClientFrame::Shutdown));
    session.push('\n');
    session
}

/// Serves `input` through an in-process [`Server`] and returns the full
/// transcript (every response line including the final `Bye`).
///
/// # Errors
///
/// Only writer errors, which cannot happen on the in-memory buffer —
/// surfaced anyway rather than unwrapped so the binary can report them.
pub fn run_session_text(input: &str, config: ServerConfig) -> std::io::Result<String> {
    let server = Server::new(config);
    let mut output = Vec::new();
    server.serve(Cursor::new(input.as_bytes().to_vec()), &mut output)?;
    Ok(String::from_utf8(output).expect("server output is UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_multisite::service::{ErrorKind, ServerFrame};

    fn parse_transcript(transcript: &str) -> Vec<ServerFrame> {
        transcript
            .lines()
            .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
            .collect()
    }

    #[test]
    fn sample_session_is_deterministic() {
        assert_eq!(sample_session(), sample_session());
        let first = run_session_text(&sample_session(), ServerConfig::default()).unwrap();
        let second = run_session_text(&sample_session(), ServerConfig::default()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn sample_transcript_has_the_expected_shape() {
        let transcript =
            run_session_text(&sample_session(), ServerConfig::default()).expect("session runs");
        let frames = parse_transcript(&transcript);
        assert_eq!(frames.len(), 8);
        for (frame, id) in frames[..4].iter().zip(["r1", "r2", "r3", "r4"]) {
            match frame {
                ServerFrame::Result(result) => {
                    assert_eq!(result.request_id, id);
                    // r2 and r4 re-use r1's warm d695 session.
                    assert_eq!(result.warm, id == "r2" || id == "r4");
                    // Only r4 repeats an earlier request exactly.
                    assert_eq!(result.cached, id == "r4");
                }
                other => panic!("expected result for {id}, got {other:?}"),
            }
        }
        // r4's cached response is bit-identical to r1's computed one.
        match (&frames[0], &frames[3]) {
            (ServerFrame::Result(computed), ServerFrame::Result(cached)) => {
                assert_eq!(computed.response, cached.response);
            }
            other => panic!("expected results, got {other:?}"),
        }
        let kinds: Vec<ErrorKind> = frames[4..7]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Error(error) => error.kind,
                other => panic!("expected error, got {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            [
                ErrorKind::Protocol,
                ErrorKind::UnknownRequest,
                ErrorKind::InvalidSoc
            ]
        );
        match &frames[7] {
            ServerFrame::Bye(stats) => {
                assert_eq!(stats.served, 4);
                assert_eq!(stats.errors, 3);
                assert_eq!(stats.sessions_created, 2);
                assert_eq!(stats.session_hits, 2);
                assert_eq!(stats.session_misses, 2);
                assert_eq!(stats.evictions, 0);
                assert_eq!(stats.cache.result_hits, 1);
                assert_eq!(stats.cache.result_misses, 3);
                assert_eq!(stats.cache.coalesced_waits, 0);
                assert!(stats.cache.result_bytes > 0);
                assert!(stats.cache.cells_computed > 0);
                assert_eq!(stats.cache.store_cells_loaded, 0);
                assert_eq!(stats.cache.store_rows_saved, 0);
            }
            other => panic!("expected Bye, got {other:?}"),
        }
    }
}
