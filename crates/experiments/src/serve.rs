//! Helpers behind the `soc-serve` binary: the canonical sample NDJSON
//! session and an in-process session runner.
//!
//! The sample session exercises one of everything deterministic the
//! streaming service does — cold and warm optimizations, a sweep, a
//! second SOC, an exact solution-cache hit, a malformed line, a
//! `Cancel` for an unknown id, an unknown SOC name, and a clean
//! `Shutdown` — so its transcript can be committed as a golden and
//! byte-checked in CI, exactly like the `soc-batch` sample pair. Wall-clock-dependent behaviour (deadlines,
//! cancellation races, overload shedding) is deliberately absent here;
//! the fault-injection e2e suite covers it with bounded assertions
//! instead of byte equality.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::service::{
    named_soc_catalogue, ClientFrame, OptimizeFrame, Server, ServerConfig, SocSpec,
};
use soctest_multisite::{OptimizeRequest, OptimizerConfig, RequestTrace, SweepAxis};
use std::fmt::Write as _;
use std::io::Cursor;

/// The `--list-socs` table shared by `soc-serve` and `soc-batch`: one
/// line per named SOC with its module count and the content hash the
/// session registry keys warm sessions by. Two builds printing the same
/// hashes serve bit-identical designs.
#[must_use]
pub fn render_soc_catalogue() -> String {
    let mut out = String::from("name          modules  content_hash\n");
    for entry in named_soc_catalogue() {
        writeln!(
            out,
            "{:<13} {:>7}  {:016x}",
            entry.name, entry.modules, entry.content_hash
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// The paper's 256-channel, 96k-deep test cell.
fn paper_cell() -> TestCell {
    TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    )
}

/// A roomier cell for the larger p22810 SOC.
fn big_cell() -> TestCell {
    TestCell::new(
        AteSpec::new(512, 768 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    )
}

fn line(frame: &ClientFrame) -> String {
    serde_json::to_string(frame).expect("client frames serialise")
}

/// The canonical sample session input: NDJSON client frames, one per
/// line, ending in `Shutdown`. Deterministic, so the transcript the
/// server answers is a committable golden.
pub fn sample_session() -> String {
    let frames = [
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r1".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
            stats: false,
        }),
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r2".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell()))
                .with_sweep(SweepAxis::Channels(vec![192, 256])),
            deadline_ms: None,
            stats: false,
        }),
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r3".to_string(),
            soc: SocSpec::Named("p22810".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(big_cell())),
            deadline_ms: None,
            stats: false,
        }),
        // An exact repeat of r1: answered from the solution cache
        // (`"cached":true`), deterministically.
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "r4".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
            stats: false,
        }),
    ];
    let mut session = String::new();
    for frame in &frames {
        session.push_str(&line(frame));
        session.push('\n');
    }
    // One of every deterministic failure: a truncated frame, a Cancel
    // for an id that is not in flight, and an unknown SOC name.
    session.push_str("{\"Optimize\":\n");
    session.push_str(&line(&ClientFrame::Cancel {
        request_id: "ghost".to_string(),
    }));
    session.push('\n');
    session.push_str(&line(&ClientFrame::Optimize(OptimizeFrame {
        request_id: "r5".to_string(),
        soc: SocSpec::Named("not_a_soc".to_string()),
        request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
        deadline_ms: None,
        stats: false,
    })));
    session.push('\n');
    session.push_str(&line(&ClientFrame::Shutdown));
    session.push('\n');
    session
}

/// The stats-enabled sample session: three `stats: true` requests
/// covering every provenance (`Computed` cold, `Hit` on an exact
/// repeat, `Computed` for a warm-session sweep), plus one deliberately
/// stats-off repeat proving the block is opt-in per request. Every
/// field in the answered `stats` blocks is race-deterministic, so the
/// transcript is a committable golden at any `SOCTEST_THREADS`.
pub fn sample_session_stats() -> String {
    let frames = [
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "s1".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
            stats: true,
        }),
        // An exact repeat of s1: a solution-cache hit with zero deltas.
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "s2".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
            stats: true,
        }),
        // A sweep on the warm d695 session that reaches past the 256
        // channels s1 demanded: the engine computes fresh cells for the
        // wider widths, so a warm `Computed` block with real deltas.
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "s3".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell()))
                .with_sweep(SweepAxis::Channels(vec![192, 384])),
            deadline_ms: None,
            stats: true,
        }),
        // Another repeat of s1 that opts *out*: cached, but no block.
        ClientFrame::Optimize(OptimizeFrame {
            request_id: "s4".to_string(),
            soc: SocSpec::Named("d695".to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(paper_cell())),
            deadline_ms: None,
            stats: false,
        }),
    ];
    let mut session = String::new();
    for frame in &frames {
        session.push_str(&line(frame));
        session.push('\n');
    }
    session.push_str(&line(&ClientFrame::Shutdown));
    session.push('\n');
    session
}

/// Serves `input` through an in-process [`Server`] and returns the full
/// transcript (every response line including the final `Bye`).
///
/// # Errors
///
/// Only writer errors, which cannot happen on the in-memory buffer —
/// surfaced anyway rather than unwrapped so the binary can report them.
pub fn run_session_text(input: &str, config: ServerConfig) -> std::io::Result<String> {
    let server = Server::new(config);
    let output = SharedBuf::default();
    server.serve(Cursor::new(input.as_bytes().to_vec()), output.clone())?;
    Ok(output.into_string())
}

/// A cloneable in-memory sink satisfying the `'static` writer bound of
/// [`Server::serve`] (the server's connection owns one clone, the
/// caller reads the transcript back through the other).
#[derive(Debug, Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SharedBuf {
    fn into_string(self) -> String {
        let bytes = self
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        String::from_utf8(bytes).expect("server output is UTF-8")
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Serves `input` with [`ServerConfig::trace_all`] forced on and
/// returns the transcript plus the server's in-process session trace,
/// for `soc-serve --stats-summary`.
///
/// # Errors
///
/// Writer errors, exactly as [`run_session_text`].
pub fn run_session_traced(
    input: &str,
    mut config: ServerConfig,
) -> std::io::Result<(String, RequestTrace)> {
    config.trace_all = true;
    let server = Server::new(config);
    let output = SharedBuf::default();
    server.serve(Cursor::new(input.as_bytes().to_vec()), output.clone())?;
    let trace = server.session_trace();
    Ok((output.into_string(), trace))
}

/// Renders a session's merged [`RequestTrace`] as a plain-ASCII
/// utilization summary, modeled on the paper's resource-budget view of
/// a test cell: each bar splits a total into its provenance segments
/// (`#` computed, `+` from the row store, `=` inherited, `-` other).
///
/// The summary is diagnostic stderr output, not a wire frame: it
/// includes the wall/CPU times and pool counters that are deliberately
/// kept off the race-deterministic NDJSON transcript.
#[must_use]
pub fn render_stats_summary(trace: &RequestTrace) -> String {
    let ms = |nanos: u64| nanos as f64 / 1e6;
    let mut out = String::new();
    out.push_str(&format!(
        "session trace: {} traced request(s), {:.1} ms wall, {:.1} ms CPU, {} cancel probe(s)\n",
        trace.requests,
        ms(trace.wall_nanos),
        ms(trace.cpu_nanos),
        trace.cancel_probes,
    ));
    out.push_str(&format!(
        "  widest table  {:>12} channels\n",
        trace.table_width
    ));
    out.push_str(&format!(
        "  cells built   {:>12}  {}  computed {} | store {} | inherited {}\n",
        trace.table.cells_built(),
        segment_bar(&[
            trace.table.cells_computed,
            trace.table.cells_from_store,
            trace.table.cells_inherited,
        ]),
        trace.table.cells_computed,
        trace.table.cells_from_store,
        trace.table.cells_inherited,
    ));
    out.push_str(&format!(
        "  store cells   {:>12}  {}  computed {} | served {} | loaded {}\n",
        trace.store.cells_computed + trace.store.cells_served + trace.store.cells_loaded,
        segment_bar(&[
            trace.store.cells_computed,
            trace.store.cells_served,
            trace.store.cells_loaded,
        ]),
        trace.store.cells_computed,
        trace.store.cells_served,
        trace.store.cells_loaded,
    ));
    out.push_str(&format!(
        "  pool jobs     {:>12}  {}  local {} | stolen {} | injected {} | inline {}\n",
        trace.pool.jobs_local + trace.pool.jobs_stolen + trace.pool.jobs_injected,
        segment_bar(&[
            trace.pool.jobs_local,
            trace.pool.jobs_stolen,
            trace.pool.jobs_injected,
        ]),
        trace.pool.jobs_local,
        trace.pool.jobs_stolen,
        trace.pool.jobs_injected,
        trace.pool.inline_runs,
    ));
    out
}

/// A fixed-width bar split proportionally into up to four segments
/// (`#`, `+`, `=`, `-`); cumulative rounding keeps the width exact.
fn segment_bar(parts: &[u64]) -> String {
    const WIDTH: usize = 32;
    const GLYPHS: [char; 4] = ['#', '+', '=', '-'];
    let total: u64 = parts.iter().sum();
    let mut bar = String::with_capacity(WIDTH + 2);
    bar.push('[');
    if total == 0 {
        for _ in 0..WIDTH {
            bar.push(' ');
        }
    } else {
        let mut used = 0;
        let mut acc = 0u128;
        for (part, glyph) in parts.iter().zip(GLYPHS) {
            acc += u128::from(*part);
            let end = usize::try_from(acc * WIDTH as u128 / u128::from(total)).expect("bar fits");
            for _ in used..end {
                bar.push(glyph);
            }
            used = end;
        }
    }
    bar.push(']');
    bar
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_multisite::service::{ErrorKind, ServerFrame};

    fn parse_transcript(transcript: &str) -> Vec<ServerFrame> {
        transcript
            .lines()
            .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
            .collect()
    }

    #[test]
    fn sample_session_is_deterministic() {
        assert_eq!(sample_session(), sample_session());
        let first = run_session_text(&sample_session(), ServerConfig::default()).unwrap();
        let second = run_session_text(&sample_session(), ServerConfig::default()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn sample_transcript_has_the_expected_shape() {
        let transcript =
            run_session_text(&sample_session(), ServerConfig::default()).expect("session runs");
        let frames = parse_transcript(&transcript);
        assert_eq!(frames.len(), 8);
        for (frame, id) in frames[..4].iter().zip(["r1", "r2", "r3", "r4"]) {
            match frame {
                ServerFrame::Result(result) => {
                    assert_eq!(result.request_id, id);
                    // r2 and r4 re-use r1's warm d695 session.
                    assert_eq!(result.warm, id == "r2" || id == "r4");
                    // Only r4 repeats an earlier request exactly.
                    assert_eq!(result.cached, id == "r4");
                }
                other => panic!("expected result for {id}, got {other:?}"),
            }
        }
        // r4's cached response is bit-identical to r1's computed one.
        match (&frames[0], &frames[3]) {
            (ServerFrame::Result(computed), ServerFrame::Result(cached)) => {
                assert_eq!(computed.response, cached.response);
            }
            other => panic!("expected results, got {other:?}"),
        }
        let kinds: Vec<ErrorKind> = frames[4..7]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Error(error) => error.kind,
                other => panic!("expected error, got {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            [
                ErrorKind::Protocol,
                ErrorKind::UnknownRequest,
                ErrorKind::InvalidSoc
            ]
        );
        match &frames[7] {
            ServerFrame::Bye(stats) => {
                assert_eq!(stats.served, 4);
                assert_eq!(stats.errors, 3);
                assert_eq!(stats.sessions_created, 2);
                assert_eq!(stats.session_hits, 2);
                assert_eq!(stats.session_misses, 2);
                assert_eq!(stats.evictions, 0);
                assert_eq!(stats.cache.result_hits, 1);
                assert_eq!(stats.cache.result_misses, 3);
                assert_eq!(stats.cache.coalesced_waits, 0);
                assert_eq!(stats.cache.coalesced_served, 0);
                assert!(stats.cache.result_bytes > 0);
                assert!(stats.cache.cells_computed > 0);
                assert_eq!(stats.cache.store_cells_loaded, 0);
                assert_eq!(stats.cache.store_rows_saved, 0);
                // Nobody opted into stats: no trace block on the wire.
                assert!(stats.trace.is_none());
            }
            other => panic!("expected Bye, got {other:?}"),
        }
    }

    #[test]
    fn stats_session_is_deterministic() {
        assert_eq!(sample_session_stats(), sample_session_stats());
        let first = run_session_text(&sample_session_stats(), ServerConfig::default()).unwrap();
        let second = run_session_text(&sample_session_stats(), ServerConfig::default()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn stats_transcript_has_the_expected_shape() {
        use soctest_multisite::service::Provenance;
        let transcript = run_session_text(&sample_session_stats(), ServerConfig::default())
            .expect("session runs");
        let frames = parse_transcript(&transcript);
        assert_eq!(frames.len(), 5);
        let results: Vec<_> = frames[..4]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result,
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        // s1 computes cold; its block attributes real table work.
        let s1 = results[0].stats.expect("s1 opted in");
        assert_eq!(s1.provenance, Provenance::Computed);
        assert!(s1.cells_built > 0);
        // s2 is an exact repeat: a hit, with zero deltas by construction.
        let s2 = results[1].stats.expect("s2 opted in");
        assert_eq!(s2.provenance, Provenance::Hit);
        assert_eq!((s2.cells_built, s2.store_cells_computed), (0, 0));
        // s3 sweeps on the warm session: computes more cells.
        let s3 = results[2].stats.expect("s3 opted in");
        assert_eq!(s3.provenance, Provenance::Computed);
        assert!(s3.cells_built > 0);
        // s4 repeats s1 but opted out: cached, no block.
        assert!(results[3].cached);
        assert!(results[3].stats.is_none());
        match &frames[4] {
            ServerFrame::Bye(stats) => {
                let trace = stats.trace.expect("three requests opted in");
                assert_eq!(trace.requests, 3);
                assert_eq!(trace.cells_built, s1.cells_built + s3.cells_built);
            }
            other => panic!("expected Bye, got {other:?}"),
        }
    }

    #[test]
    fn traced_run_returns_the_plain_transcript_and_a_live_trace() {
        let plain = run_session_text(&sample_session(), ServerConfig::default()).unwrap();
        let (traced, trace) =
            run_session_traced(&sample_session(), ServerConfig::default()).unwrap();
        // trace_all is purely in-process: the wire bytes are untouched.
        assert_eq!(plain, traced);
        assert_eq!(trace.requests, 3);
        assert!(trace.cells_built() > 0);
        assert!(trace.wall_nanos > 0);
    }

    #[test]
    fn stats_summary_renders_fixed_width_bars() {
        let mut trace = RequestTrace::default();
        trace.requests = 2;
        trace.wall_nanos = 1_500_000;
        trace.cpu_nanos = 3_000_000;
        trace.table_width = 256;
        trace.table.cells_computed = 48;
        trace.table.cells_inherited = 16;
        let summary = render_stats_summary(&trace);
        assert!(summary.contains("2 traced request(s)"));
        assert!(summary.contains("1.5 ms wall"));
        assert!(summary.contains("computed 48 | store 0 | inherited 16"));
        // 48/64 of a 32-wide bar is 24 `#`, the inherited 16/64 is 8 `=`.
        assert!(summary.contains(&format!("[{}{}]", "#".repeat(24), "=".repeat(8))));
        // Empty totals render an all-blank bar, not a division panic.
        assert!(render_stats_summary(&RequestTrace::default())
            .contains(&format!("[{}]", " ".repeat(32))));
    }

    #[test]
    fn soc_catalogue_lists_every_named_soc_with_stable_hashes() {
        let table = render_soc_catalogue();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 6, "{table}");
        assert!(lines[0].contains("content_hash"));
        for name in ["d695", "p22810", "p34392", "p93791", "pnx8550_like"] {
            assert!(
                lines.iter().any(|line| line.starts_with(name)),
                "{name} missing from:\n{table}"
            );
        }
        // Rendering twice gives identical bytes — the hashes are content
        // hashes, not per-process state.
        assert_eq!(table, render_soc_catalogue());
    }
}
