//! Regeneration of Table 1 (ITC'02 multi-site architecture comparison) on
//! the dense depth grid.
//!
//! For every ITC'02 SOC and vector-memory depth, three channel counts are
//! compared — the theoretical lower bound, the rectangle bin-packing
//! baseline of Iyengar et al. (reference \[7\] of the paper) and Step 1 of
//! the paper's algorithm — together with the maximum multi-site each
//! architecture permits under stimulus broadcast, exactly as in the
//! paper's Table 1 but at 41 depths per SOC instead of 11.

use crate::artifact::{markdown_table, Artifact};
use crate::grids::table1_cases_dense;
use serde::Serialize;
use soctest_bench::format_depth;
use soctest_tam::baseline::{lower_bound_channels, pack_with_table};
use soctest_tam::step1::design_with_table;
use soctest_tam::{max_tam_width, TimeTable};

/// One (SOC, depth) row of the Table 1 comparison. `None` values mean the
/// combination is infeasible on the SOC's channel budget.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Benchmark SOC name.
    pub soc: String,
    /// ATE channel budget the multi-site count is computed against.
    pub ate_channels: usize,
    /// Vector-memory depth in vectors.
    pub depth: u64,
    /// Theoretical lower bound on the per-SOC channel count.
    pub lower_bound_channels: Option<usize>,
    /// Channel count of the bin-packing baseline (reference \[7\]).
    pub baseline_channels: Option<usize>,
    /// Channel count of the paper's Step 1.
    pub step1_channels: Option<usize>,
    /// Maximum multi-site of the baseline architecture (with broadcast).
    pub baseline_max_sites: Option<usize>,
    /// Maximum multi-site of the Step 1 architecture (with broadcast).
    pub step1_max_sites: Option<usize>,
}

/// The full Table 1 artifact record.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Record {
    /// All (SOC, depth) rows, grouped by SOC in grid order.
    pub rows: Vec<Table1Row>,
    /// Feasible rows where Step 1 reaches at least the baseline multi-site.
    pub step1_wins_or_ties: usize,
    /// Number of feasible rows.
    pub feasible_rows: usize,
}

/// Runs the dense Table 1 comparison.
pub fn table1() -> Artifact {
    let mut rows = Vec::new();
    let mut step1_wins_or_ties = 0;
    let mut feasible_rows = 0;
    for (soc, ate_channels, depths) in table1_cases_dense() {
        let table = TimeTable::build(&soc, max_tam_width(ate_channels));
        for depth in depths {
            let lb = lower_bound_channels(&table, depth);
            let ours = design_with_table(&table, ate_channels, depth).ok();
            let baseline = pack_with_table(&table, ate_channels, depth)
                .ok()
                .map(|b| b.architecture);
            let step1_max_sites = ours
                .as_ref()
                .map(|a| a.max_sites_with_broadcast(ate_channels));
            let baseline_max_sites = baseline
                .as_ref()
                .map(|a| a.max_sites_with_broadcast(ate_channels));
            if let (Some(ours_n), Some(base_n)) = (step1_max_sites, baseline_max_sites) {
                feasible_rows += 1;
                if ours_n >= base_n {
                    step1_wins_or_ties += 1;
                }
            }
            rows.push(Table1Row {
                soc: soc.name().to_string(),
                ate_channels,
                depth,
                lower_bound_channels: lb,
                baseline_channels: baseline.as_ref().map(|a| a.total_channels()),
                step1_channels: ours.as_ref().map(|a| a.total_channels()),
                baseline_max_sites,
                step1_max_sites,
            });
        }
    }
    let record = Table1Record {
        rows,
        step1_wins_or_ties,
        feasible_rows,
    };

    let fmt_opt = |v: Option<usize>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
    let table = markdown_table(
        &[
            "SOC",
            "depth",
            "LB k",
            "[7] k",
            "Step1 k",
            "[7] n_max",
            "Step1 n_max",
        ],
        &record
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.soc.clone(),
                    format_depth(r.depth),
                    fmt_opt(r.lower_bound_channels),
                    fmt_opt(r.baseline_channels),
                    fmt_opt(r.step1_channels),
                    fmt_opt(r.baseline_max_sites),
                    fmt_opt(r.step1_max_sites),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let markdown = format!(
        "# Table 1: ATE channels and maximum multi-site, ITC'02 SOCs (stimulus broadcast)\n\n\
         Step 1 reaches at least the baseline's multi-site in {} of {} feasible rows.\n\n{}",
        record.step1_wins_or_ties, record.feasible_rows, table
    );
    Artifact::render(
        "table1_itc02",
        "Table 1: ITC'02 channel counts and maximum multi-site, 41 depths per SOC",
        &record,
        markdown,
    )
}
