//! The scaled synthetic workload tier.
//!
//! The paper evaluates one industrial SOC (274 modules). With the
//! incremental row kernel and the demand-driven `LazyTimeTable` (cells
//! materialised only for probed widths) the optimizer handles far larger
//! designs, so this tier runs the full two-step optimization on
//! deterministic [`SyntheticSocSpec`] families from 100 up to **10000**
//! modules, plus NoC-style profiles — a large mesh of small, homogeneous
//! processing cores in the spirit of Amory et al., *"Test Time Reduction
//! Reusing Multiple Processors in a Network-on-Chip Based Architecture"* —
//! and records the resulting architectures and throughputs as a golden
//! artifact, making optimizer scaling behaviour part of CI.

use crate::artifact::{markdown_table, Artifact};
use serde::Serialize;
use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::engine::{Engine, OptimizeRequest};
use soctest_multisite::problem::OptimizerConfig;
use soctest_soc_model::synthetic::SyntheticSocSpec;
use soctest_soc_model::Soc;

/// One workload of the scaled tier: a deterministic SOC plus the test
/// cell it is optimized against.
#[derive(Debug, Clone)]
pub struct ScaledWorkload {
    /// Workload name (doubles as the SOC name and artifact row label).
    pub name: &'static str,
    /// The generated SOC.
    pub soc: Soc,
    /// ATE channel count for this workload.
    pub ate_channels: usize,
    /// ATE vector-memory depth for this workload, in vectors.
    pub depth: u64,
}

/// The deterministic workload set of the scaled tier.
///
/// The general-purpose `synth_*` family keeps the default module-size
/// distribution with a 30% memory share and grows the module count from
/// 100 to 10000; the ATE grows with it (an SOC four times the size gets
/// twice the channels, mirroring how test cells are provisioned). The
/// `noc_*` profiles model NoC-based designs: hundreds to thousands of
/// small, homogeneous cores with narrow scan structure and small pattern
/// sets.
pub fn scaled_workloads() -> Vec<ScaledWorkload> {
    let synth = |name: &'static str, modules: usize, channels: usize| ScaledWorkload {
        name,
        soc: SyntheticSocSpec::new(name, modules)
            .seed(modules as u64)
            .memory_fraction(0.3)
            .generate(),
        ate_channels: channels,
        depth: 7 * 1024 * 1024,
    };
    let noc = |name: &'static str, modules: usize, channels: usize| ScaledWorkload {
        name,
        soc: noc_soc(name, modules),
        ate_channels: channels,
        depth: 7 * 1024 * 1024,
    };
    vec![
        synth("synth_0100", 100, 512),
        synth("synth_0250", 250, 512),
        synth("synth_0500", 500, 768),
        synth("synth_1000", 1000, 1024),
        synth("synth_2000", 2000, 1536),
        synth("synth_5000", 5000, 2048),
        synth("synth_10000", 10000, 3072),
        noc("noc_0064", 64, 256),
        noc("noc_0256", 256, 512),
        noc("noc_1024", 1024, 1024),
        noc("noc_4096", 4096, 2048),
    ]
}

/// The deterministic NoC-style SOC profile shared by the scaled tier's
/// `noc_*` workloads and the flat tier (`crate::flat`): a mesh of small,
/// homogeneous cores with narrow scan structure and small pattern sets.
/// Keeping the spec in one place guarantees both tiers describe the same
/// SOC for the same name.
pub fn noc_soc(name: &str, modules: usize) -> Soc {
    SyntheticSocSpec::new(name, modules)
        .seed(0xA03C + modules as u64)
        .patterns(40, 160)
        .scan_chains(2, 8)
        .chain_length(30, 200)
        .terminals(16, 64)
        .generate()
}

/// The optimization outcome of one scaled workload.
#[derive(Debug, Clone, Serialize)]
pub struct ScaledRow {
    /// Workload name.
    pub name: String,
    /// Number of modules in the SOC.
    pub modules: usize,
    /// Total test data volume of the SOC, in bits.
    pub test_data_volume_bits: u64,
    /// ATE channels of the workload's test cell.
    pub ate_channels: usize,
    /// Vector-memory depth of the workload's test cell, in vectors.
    pub depth: u64,
    /// Channels of the Step 1 (channel-minimal) architecture.
    pub step1_channels: usize,
    /// Maximum multi-site.
    pub max_sites: usize,
    /// Throughput-optimal site count.
    pub optimal_sites: usize,
    /// ATE channels per site at the optimum.
    pub channels_per_site: usize,
    /// SOC test application time at the optimum, in cycles.
    pub test_time_cycles: u64,
    /// SOC manufacturing test time at the optimum, in seconds.
    pub test_time_s: f64,
    /// Throughput at the optimum, devices per hour.
    pub devices_per_hour: f64,
}

/// Runs the scaled tier and renders the artifact.
///
/// # Panics
///
/// Panics if a workload is infeasible on its test cell — the workload set
/// is fixed, so that is a bug in the specs, not an input error.
pub fn scaled_tier() -> Artifact {
    let rows: Vec<ScaledRow> = scaled_workloads()
        .into_iter()
        .map(|workload| {
            let cell = TestCell::new(
                AteSpec::new(workload.ate_channels, workload.depth, 5.0e6),
                ProbeStation::paper_probe_station(),
            );
            let config = OptimizerConfig::new(cell);
            // One engine session per workload: each SOC is optimized once,
            // against its own test cell (table pre-sized for it).
            let solution = Engine::builder(&workload.soc)
                .max_channels(workload.ate_channels)
                .build()
                .run(&OptimizeRequest::new(config))
                .unwrap_or_else(|err| panic!("workload {} infeasible: {err}", workload.name))
                .into_solution()
                .expect("a plain request answers with a solution");
            ScaledRow {
                name: workload.name.to_string(),
                modules: workload.soc.num_modules(),
                test_data_volume_bits: workload.soc.total_test_data_volume_bits(),
                ate_channels: workload.ate_channels,
                depth: workload.depth,
                step1_channels: solution.step1_architecture.total_channels(),
                max_sites: solution.max_sites,
                optimal_sites: solution.optimal.sites,
                channels_per_site: solution.optimal.channels_per_site,
                test_time_cycles: solution.optimal.test_time_cycles,
                test_time_s: solution.optimal.manufacturing_test_time_s,
                devices_per_hour: solution.optimal.devices_per_hour,
            }
        })
        .collect();

    let table = markdown_table(
        &[
            "workload",
            "modules",
            "volume [bits]",
            "ATE ch",
            "Step1 k",
            "n_max",
            "n_opt",
            "k/site",
            "t_m [s]",
            "D_th [/h]",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.modules.to_string(),
                    r.test_data_volume_bits.to_string(),
                    r.ate_channels.to_string(),
                    r.step1_channels.to_string(),
                    r.max_sites.to_string(),
                    r.optimal_sites.to_string(),
                    r.channels_per_site.to_string(),
                    format!("{:.4}", r.test_time_s),
                    format!("{:.1}", r.devices_per_hour),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let markdown = format!(
        "# Scaled synthetic tier: two-step optimization from 100 to 10000 modules\n\n\
         `synth_*`: default module mix, 30% memories. `noc_*`: NoC-style mesh of small \
         homogeneous cores (Amory et al.).\n\n{table}"
    );
    Artifact::render(
        "scaled_tier",
        "Scaled synthetic tier: optimizer results from 100 to 10000 modules, incl. NoC profiles",
        &rows,
        markdown,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::validate::is_usable;

    #[test]
    fn workloads_are_deterministic_and_usable() {
        let first = scaled_workloads();
        let second = scaled_workloads();
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.soc, b.soc, "workload {} not deterministic", a.name);
            assert!(is_usable(&a.soc), "workload {} not usable", a.name);
        }
    }

    #[test]
    fn tier_spans_100_to_10000_modules_with_noc_profiles() {
        let workloads = scaled_workloads();
        let sizes: Vec<usize> = workloads.iter().map(|w| w.soc.num_modules()).collect();
        assert!(sizes.iter().any(|&n| n <= 100));
        assert!(sizes.iter().any(|&n| n >= 10_000));
        assert!(workloads.iter().any(|w| w.name.starts_with("noc_")));
    }
}
