//! Golden check of the `soc-batch` service layer: the committed sample
//! request must equal the canonical in-code sample (so the on-disk wire
//! format never silently drifts from the code), and serving it must
//! reproduce the committed response byte-for-byte (so engine results stay
//! deterministic across changes). CI additionally runs the `soc-batch`
//! binary itself with `--check` against the same pair.

use soctest_experiments::batch::{render_json, run_request_text, sample_request};
use std::path::PathBuf;

fn data_file(name: &str) -> (PathBuf, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("data")
        .join(name);
    let contents = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("missing committed golden {}: {err}", path.display()));
    (path, contents)
}

#[test]
fn committed_sample_request_matches_the_canonical_one() {
    let (path, on_disk) = data_file("sample_batch_request.json");
    let canonical = render_json(&sample_request());
    assert_eq!(
        on_disk,
        canonical,
        "{} drifted from batch::sample_request(); regenerate with \
         `cargo run -p soctest-experiments --bin soc-batch -- --emit-sample-request`",
        path.display()
    );
}

#[test]
fn serving_the_committed_request_reproduces_the_committed_response() {
    let (_, request) = data_file("sample_batch_request.json");
    let (path, golden) = data_file("sample_batch_response.json");
    let response = run_request_text(&request).expect("the sample request serves cleanly");
    assert_eq!(
        response,
        golden,
        "{} drifted; regenerate with `cargo run --release -p soctest-experiments \
         --bin soc-batch -- crates/experiments/data/sample_batch_request.json \
         --out crates/experiments/data/sample_batch_response.json` and commit \
         the diff if the change is intentional",
        path.display()
    );
}
