//! End-to-end checks of the reproduction driver: regeneration is
//! deterministic, the rendered documents are well-formed, and the
//! committed goldens under `artifacts/` match a fresh run (the same check
//! CI performs via `soctest-repro --check`).

use soctest_experiments::{check, generate_all};
use std::path::Path;

#[test]
fn generation_is_deterministic() {
    let first = generate_all();
    let second = generate_all();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.json, b.json, "artifact {} JSON not deterministic", a.name);
        assert_eq!(
            a.markdown, b.markdown,
            "artifact {} markdown not deterministic",
            a.name
        );
    }
}

#[test]
fn artifacts_are_well_formed() {
    for artifact in generate_all() {
        assert!(!artifact.json.is_empty() && artifact.json.ends_with('\n'));
        assert!(artifact.markdown.starts_with("# "), "{}", artifact.name);
        // Every markdown document carries at least one table.
        assert!(artifact.markdown.contains("| --- |"), "{}", artifact.name);
        // The JSON round-trips through the parser.
        let value: serde::Value = serde_json::from_str(&artifact.json)
            .unwrap_or_else(|err| panic!("{}: {err}", artifact.name));
        assert!(!matches!(value, serde::Value::Null));
    }
}

#[test]
fn committed_goldens_match_a_fresh_run() {
    // The committed artifacts/ directory sits at the workspace root, two
    // levels up from this crate.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    assert!(
        dir.is_dir(),
        "artifacts/ missing — run `cargo run --release -p soctest-experiments --bin soctest-repro`"
    );
    let drifts = check(&generate_all(), &dir);
    assert!(
        drifts.is_empty(),
        "goldens drifted (regenerate with soctest-repro and commit if intentional): {drifts:?}"
    );
}
