//! End-to-end tests of the socket transport: a real `soc-serve --listen`
//! subprocess, real `soc-client` subprocesses, concurrent connections,
//! SIGTERM drain, drain-deadline expiry, transport-stage faults, and a
//! TCP smoke test.
//!
//! The central claim under test: a session served over the socket is
//! bit-identical (modulo the connection-scoped `Bye`) to the same
//! session replayed over stdin/stdout, at any executor count — the
//! transport adds concurrency and sharing without perturbing a single
//! response byte.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_multisite::service::{
    ClientFrame, ErrorKind, OptimizeFrame, Provenance, ServerFrame, SocSpec,
};
use soctest_multisite::{OptimizeRequest, OptimizerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::time::Duration;

const SAMPLE_INPUT: &str = include_str!("../data/sample_session_input.ndjson");
const SAMPLE_TRANSCRIPT: &str = include_str!("../data/sample_session_transcript.ndjson");

fn optimize_line(request_id: &str, soc: SocSpec, stats: bool) -> String {
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
        request_id: request_id.to_string(),
        soc,
        request: OptimizeRequest::new(OptimizerConfig::new(cell)),
        deadline_ms: None,
        stats,
    }))
    .expect("client frames serialise")
}

fn d695_line(request_id: &str) -> String {
    optimize_line(request_id, SocSpec::Named("d695".to_string()), false)
}

/// A deterministic inline SOC distinct from every named benchmark (and,
/// via `name`/`patterns`, from every other call), so concurrent
/// connections and pipelined requests can exercise disjoint sessions.
fn tiny_soc_line(request_id: &str, name: &str, patterns: u64) -> String {
    let mut tiny = soctest_soc_model::Soc::new(name);
    tiny.push_module(
        soctest_soc_model::Module::builder("m")
            .patterns(patterns)
            .inputs(2)
            .outputs(2)
            .scan_chain(8)
            .build(),
    );
    optimize_line(
        request_id,
        SocSpec::Inline(soctest_soc_model::writer::write_soc(&tiny)),
        false,
    )
}

fn parse_transcript(transcript: &str) -> Vec<ServerFrame> {
    transcript
        .lines()
        .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
        .collect()
}

/// A listening `soc-serve` subprocess. Construction blocks until the
/// server announces `listening on <addr>` on stderr, so clients never
/// race the bind; `drain()` sends SIGTERM and asserts a clean exit.
struct ListeningServer {
    child: Child,
    addr: String,
    /// Kept open so the server's drain summary never hits a closed pipe.
    stderr: BufReader<ChildStderr>,
}

impl ListeningServer {
    fn spawn(args: &[&str]) -> ListeningServer {
        let mut child = Command::new(env!("CARGO_BIN_EXE_soc-serve"))
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn soc-serve --listen");
        let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
        let mut announce = String::new();
        stderr
            .read_line(&mut announce)
            .expect("read listen announcement");
        let addr = announce
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {announce:?}"))
            .trim()
            .to_string();
        ListeningServer {
            child,
            addr,
            stderr,
        }
    }

    /// SIGTERM, then wait: the graceful drain must end in exit 0.
    /// Returns the remaining stderr (the drain summary).
    fn drain(mut self) -> String {
        let term = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(term.success(), "kill -TERM failed");
        let status = self.child.wait().expect("soc-serve exits");
        assert!(status.success(), "drained server exits 0, got {status:?}");
        let mut rest = String::new();
        self.stderr
            .read_to_string(&mut rest)
            .expect("read drain summary");
        rest
    }
}

/// Runs `soc-client` against `addr` with `input` on stdin; returns the
/// stdout transcript and the exit code.
fn run_client(addr: &str, input: &str, extra: &[&str]) -> (String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_soc-client"))
        .arg(addr)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soc-client");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write session input");
    let output = child.wait_with_output().expect("soc-client exits");
    (
        String::from_utf8(output.stdout).expect("transcript is UTF-8"),
        output.status.code().unwrap_or(-1),
    )
}

/// The same input replayed over stdin/stdout mode — the byte-identity
/// baseline.
fn run_stdin_mode(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_soc-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soc-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write session input");
    let output = child.wait_with_output().expect("soc-serve exits");
    assert!(output.status.success(), "stdin-mode soc-serve failed");
    String::from_utf8(output.stdout).expect("transcript is UTF-8")
}

/// Frames before the `Bye` — the per-connection deterministic prefix.
fn non_bye(transcript: &str) -> Vec<&str> {
    transcript
        .lines()
        .filter(|line| !line.starts_with("{\"Bye\""))
        .collect()
}

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("soctest-e2e-{tag}-{}.sock", std::process::id()))
}

#[test]
fn concurrent_clients_replay_bit_identical_to_stdin_mode() {
    // Two clients, every request a distinct SOC: neither cross-connection
    // nor intra-connection execution order can leak into the warm/cached
    // flags (requests from *one* connection pipeline across executors by
    // design — only response delivery is ordered). Every client's non-Bye
    // transcript must equal a stdin/stdout replay of the same input, byte
    // for byte, at one executor and at four. The warm/cached *progression*
    // of a repeated request is covered at a single executor in
    // `sample_session_over_the_socket_matches_the_committed_transcript`.
    let input_a = format!(
        "{}\n{}\n",
        d695_line("a1"),
        tiny_soc_line("a2", "tiny_a", 3)
    );
    let input_b = format!(
        "{}\n{}\n",
        tiny_soc_line("b1", "tiny_b1", 4),
        tiny_soc_line("b2", "tiny_b2", 5)
    );
    let baseline_a = run_stdin_mode(&[], &input_a);
    let baseline_b = run_stdin_mode(&[], &input_b);
    for executors in ["1", "4"] {
        let sock = sock_path(&format!("bitident-{executors}"));
        let server =
            ListeningServer::spawn(&["--listen", sock.to_str().unwrap(), "--executors", executors]);
        let addr = server.addr.clone();
        let (out_a, out_b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| run_client(&addr, &input_a, &[]));
            let b = scope.spawn(|| run_client(&addr, &input_b, &[]));
            (a.join().expect("client a"), b.join().expect("client b"))
        });
        assert_eq!(out_a.1, 0, "client a exits clean");
        assert_eq!(out_b.1, 0, "client b exits clean");
        assert_eq!(
            non_bye(&out_a.0),
            non_bye(&baseline_a),
            "client a bit-identical at --executors {executors}"
        );
        assert_eq!(
            non_bye(&out_b.0),
            non_bye(&baseline_b),
            "client b bit-identical at --executors {executors}"
        );
        // The Bye frames are connection-scoped: each counts its own two
        // requests and carries its own identity.
        for out in [&out_a.0, &out_b.0] {
            match parse_transcript(out).pop().expect("a final frame") {
                ServerFrame::Bye(stats) => {
                    assert_eq!(stats.served, 2);
                    assert_eq!(stats.errors, 0);
                    let connection = stats.connection.expect("socket Bye has identity");
                    assert_eq!(connection.requests, 2);
                    assert!(connection.id >= 1 && connection.id <= 2, "{connection:?}");
                }
                other => panic!("expected Bye, got {other:?}"),
            }
        }
        let summary = server.drain();
        assert!(summary.contains("2 connection(s)"), "{summary}");
        assert!(summary.contains("4 served"), "{summary}");
    }
}

#[test]
fn sample_session_over_the_socket_matches_the_committed_transcript() {
    // The committed sample session (which exercises warm sessions, cache
    // hits, a sweep, and a typed error) replayed through soc-client at
    // the default single executor: admission order is execution order,
    // so every response byte — including the warm/cached progression —
    // must match the committed stdin/stdout golden. Only the Bye
    // differs, by its connection-scoped counters.
    let sock = sock_path("sample");
    let server = ListeningServer::spawn(&["--listen", sock.to_str().unwrap()]);
    let (transcript, code) = run_client(&server.addr, SAMPLE_INPUT, &[]);
    assert_eq!(code, 0, "{transcript}");
    assert_eq!(non_bye(&transcript), non_bye(SAMPLE_TRANSCRIPT));
    server.drain();
}

#[test]
fn identical_concurrent_connections_compute_exactly_once() {
    // Three connections submit the same stats-enabled request. The
    // injected optimize-stage delay holds every in-flight copy long
    // enough that they overlap, so the cache's in-flight coalescing —
    // not timing luck — must guarantee a single computation.
    let sock = sock_path("coalesce");
    let server = ListeningServer::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--executors",
        "4",
        "--faults",
        "optimize:delay:800",
    ]);
    let addr = server.addr.clone();
    let input = format!(
        "{}\n",
        optimize_line("same", SocSpec::Named("d695".to_string()), true)
    );
    let outputs: Vec<(String, i32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| run_client(&addr, &input, &[])))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client"))
            .collect()
    });
    let mut provenance = Vec::new();
    let mut responses = Vec::new();
    for (transcript, code) in &outputs {
        assert_eq!(*code, 0, "client exits clean");
        match &parse_transcript(transcript)[0] {
            ServerFrame::Result(result) => {
                provenance.push(result.stats.expect("stats requested").provenance);
                responses.push(result.response.clone());
            }
            other => panic!("expected result, got {other:?}"),
        }
    }
    let computed = provenance
        .iter()
        .filter(|p| **p == Provenance::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one computation ran: {provenance:?}");
    assert!(
        provenance.iter().all(|p| matches!(
            p,
            Provenance::Computed | Provenance::Coalesced | Provenance::Hit
        )),
        "{provenance:?}"
    );
    // All three answers are bit-identical to the leader's.
    assert_eq!(responses[0], responses[1]);
    assert_eq!(responses[0], responses[2]);
    server.drain();
}

#[test]
fn sigterm_drain_finishes_in_flight_requests() {
    // The request is mid-flight (held by the injected delay) when
    // SIGTERM lands; the drain's 5 s grace lets it finish, so the
    // client still gets its Result and a Bye.
    let sock = sock_path("drain-finish");
    let server = ListeningServer::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--drain-ms",
        "5000",
        "--faults",
        "optimize:delay:500@slow",
    ]);
    let mut client = Command::new(env!("CARGO_BIN_EXE_soc-client"))
        .arg(&server.addr)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soc-client");
    let mut stdin = client.stdin.take().expect("piped stdin");
    writeln!(
        stdin,
        "{}",
        optimize_line("slow", SocSpec::Named("d695".to_string()), false)
    )
    .expect("send");
    stdin.flush().expect("flush");
    // Long enough to be accepted and admitted, still sleeping in the
    // injected fault when the drain starts.
    std::thread::sleep(Duration::from_millis(250));
    let summary = server.drain();
    drop(stdin);
    let output = client.wait_with_output().expect("soc-client exits");
    assert!(output.status.success(), "client saw a clean Bye");
    let transcript = String::from_utf8(output.stdout).unwrap();
    let frames = parse_transcript(&transcript);
    assert_eq!(frames.len(), 2, "{transcript}");
    assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "slow"));
    assert!(matches!(&frames[1], ServerFrame::Bye(_)));
    assert!(summary.contains("1 served"), "{summary}");
}

#[test]
fn drain_deadline_cancels_overdue_requests() {
    // Same shape, but the grace (100 ms) is far shorter than the
    // injected 700 ms hold: the drain imposes its deadline on the
    // in-flight token and the request answers deadline_exceeded instead
    // of holding the server open.
    let sock = sock_path("drain-cancel");
    let server = ListeningServer::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--drain-ms",
        "100",
        "--faults",
        "optimize:delay:700@slow",
    ]);
    let mut client = Command::new(env!("CARGO_BIN_EXE_soc-client"))
        .arg(&server.addr)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soc-client");
    let mut stdin = client.stdin.take().expect("piped stdin");
    writeln!(
        stdin,
        "{}",
        optimize_line("slow", SocSpec::Named("d695".to_string()), false)
    )
    .expect("send");
    stdin.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(250));
    server.drain();
    drop(stdin);
    let output = client.wait_with_output().expect("soc-client exits");
    let transcript = String::from_utf8(output.stdout).unwrap();
    let frames = parse_transcript(&transcript);
    assert_eq!(frames.len(), 2, "{transcript}");
    match &frames[0] {
        ServerFrame::Error(error) => {
            assert_eq!(error.request_id.as_deref(), Some("slow"));
            assert_eq!(error.kind, ErrorKind::DeadlineExceeded);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(matches!(&frames[1], ServerFrame::Bye(_)));
}

#[test]
fn connection_fault_is_isolated_and_fail_on_error_reports_it() {
    let sock = sock_path("conn-fault");
    let server = ListeningServer::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--faults",
        "connection:panic@1",
    ]);
    // Connection 1 is failed by the injected panic: a typed Internal
    // frame, a clean Bye — and `--fail-on-error` turns it into exit 3.
    let (transcript, code) = run_client(&server.addr, &d695_line("r1"), &["--fail-on-error"]);
    assert_eq!(code, 3, "{transcript}");
    let frames = parse_transcript(&transcript);
    match &frames[0] {
        ServerFrame::Error(error) => {
            assert_eq!(error.kind, ErrorKind::Internal);
            assert!(
                error.message.contains("connection failed"),
                "{}",
                error.message
            );
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert!(matches!(frames.last(), Some(ServerFrame::Bye(_))));
    // Connection 2 is served normally — same server, same socket.
    let (transcript, code) = run_client(&server.addr, &d695_line("r2"), &["--fail-on-error"]);
    assert_eq!(code, 0, "{transcript}");
    assert!(matches!(
        &parse_transcript(&transcript)[0],
        ServerFrame::Result(r) if r.request_id == "r2"
    ));
    server.drain();
}

#[test]
fn accept_fault_refuses_one_connection_without_a_bye() {
    let sock = sock_path("accept-fault");
    let server = ListeningServer::spawn(&[
        "--listen",
        sock.to_str().unwrap(),
        "--faults",
        "accept:panic@1",
    ]);
    // The refused connection never gets a frame — soc-client reports
    // "closed without a Bye" as exit 1.
    let (transcript, code) = run_client(&server.addr, &d695_line("r1"), &[]);
    assert_eq!(code, 1, "{transcript:?}");
    assert_eq!(transcript, "");
    // The very next accept works.
    let (transcript, code) = run_client(&server.addr, &d695_line("r2"), &[]);
    assert_eq!(code, 0, "{transcript}");
    let summary = server.drain();
    assert!(summary.contains("1 refused accept(s)"), "{summary}");
}

#[test]
fn tcp_listener_announces_its_port_and_serves() {
    // `:0` picks a free port; the stderr announcement is the only way
    // to learn it, which is exactly how this test (and any script)
    // connects.
    let server = ListeningServer::spawn(&["--listen", "127.0.0.1:0"]);
    assert!(
        server.addr.starts_with("127.0.0.1:"),
        "announced TCP addr, got {}",
        server.addr
    );
    assert_ne!(server.addr, "127.0.0.1:0", "port resolved");
    let (transcript, code) = run_client(&server.addr, &d695_line("r1"), &[]);
    assert_eq!(code, 0, "{transcript}");
    let frames = parse_transcript(&transcript);
    assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
    assert!(matches!(&frames[1], ServerFrame::Bye(_)));
    server.drain();
}

#[test]
fn list_socs_prints_one_shared_catalogue() {
    let serve = Command::new(env!("CARGO_BIN_EXE_soc-serve"))
        .arg("--list-socs")
        .output()
        .expect("soc-serve --list-socs");
    let batch = Command::new(env!("CARGO_BIN_EXE_soc-batch"))
        .arg("--list-socs")
        .output()
        .expect("soc-batch --list-socs");
    assert!(serve.status.success());
    assert!(batch.status.success());
    assert_eq!(
        serve.stdout, batch.stdout,
        "both binaries print the same catalogue"
    );
    let text = String::from_utf8(serve.stdout).unwrap();
    for name in ["d695", "p22810", "p34392", "p93791", "pnx8550_like"] {
        assert!(text.contains(name), "{name} missing:\n{text}");
    }
}
