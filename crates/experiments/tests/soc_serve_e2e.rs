//! End-to-end tests of the `soc-serve` binary: a real subprocess, real
//! pipes, malformed input, injected faults, cancellation races, deadline
//! expiry, and registry eviction.
//!
//! Deterministic behaviour is byte-checked against the committed sample
//! transcript; wall-clock behaviour (cancellation, deadlines, overload)
//! is driven with generous injected delays and asserted structurally.

use soctest_ate::{AteSpec, ProbeStation, TestCell};
use soctest_experiments::serve::sample_session;
use soctest_multisite::service::{ClientFrame, ErrorKind, OptimizeFrame, ServerFrame, SocSpec};
use soctest_multisite::{OptimizeRequest, OptimizerConfig};
use std::io::Write;
use std::process::{Command, Stdio};

const SAMPLE_INPUT: &str = include_str!("../data/sample_session_input.ndjson");
const SAMPLE_TRANSCRIPT: &str = include_str!("../data/sample_session_transcript.ndjson");

/// Runs the server binary with `args`, feeds `input` on stdin, returns
/// the full stdout transcript.
fn run_server(args: &[&str], input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_soc-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soc-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write session input");
    let output = child.wait_with_output().expect("soc-serve exits");
    assert!(output.status.success(), "soc-serve failed");
    String::from_utf8(output.stdout).expect("transcript is UTF-8")
}

fn parse_transcript(transcript: &str) -> Vec<ServerFrame> {
    transcript
        .lines()
        .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
        .collect()
}

fn optimize_line(request_id: &str, soc: SocSpec, deadline_ms: Option<u64>) -> String {
    let cell = TestCell::new(
        AteSpec::new(256, 96 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
        request_id: request_id.to_string(),
        soc,
        request: OptimizeRequest::new(OptimizerConfig::new(cell)),
        deadline_ms,
        stats: false,
    }))
    .expect("client frames serialise")
}

fn d695_line(request_id: &str) -> String {
    optimize_line(request_id, SocSpec::Named("d695".to_string()), None)
}

#[test]
fn sample_session_matches_the_committed_transcript() {
    // The library's sample, the committed input, and the live binary's
    // transcript must all agree byte-for-byte.
    assert_eq!(sample_session(), SAMPLE_INPUT);
    let transcript = run_server(&[], SAMPLE_INPUT);
    assert_eq!(transcript, SAMPLE_TRANSCRIPT);
}

#[test]
fn eof_drains_like_shutdown() {
    let without_shutdown = SAMPLE_INPUT.replace("\"Shutdown\"\n", "");
    let transcript = run_server(&[], &without_shutdown);
    assert_eq!(transcript, SAMPLE_TRANSCRIPT);
}

#[test]
fn check_mode_detects_drift() {
    let status = Command::new(env!("CARGO_BIN_EXE_soc-serve"))
        .args(["--check", "data/sample_session_input.ndjson"]) // wrong golden
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            child
                .stdin
                .take()
                .expect("piped stdin")
                .write_all(SAMPLE_INPUT.as_bytes())?;
            child.wait()
        })
        .expect("soc-serve --check runs");
    assert!(
        !status.success(),
        "--check must fail against the wrong golden"
    );
}

#[test]
fn mid_stream_panic_leaves_siblings_bit_identical() {
    let input = format!("{}\n{}\n", d695_line("r1"), d695_line("r2"));
    let fresh = run_server(&[], &input);
    let faulted = run_server(&["--faults", "respond:panic@r1"], &input);

    let fresh_lines: Vec<&str> = fresh.lines().collect();
    let faulted_lines: Vec<&str> = faulted.lines().collect();
    assert_eq!(fresh_lines.len(), 3);
    assert_eq!(faulted_lines.len(), 3);

    // r1: a Result in the fresh process, a typed Internal error in the
    // faulted one — and the server kept serving.
    assert!(matches!(
        parse_transcript(fresh_lines[0]).remove(0),
        ServerFrame::Result(result) if result.request_id == "r1"
    ));
    match parse_transcript(faulted_lines[0]).remove(0) {
        ServerFrame::Error(error) => {
            assert_eq!(error.request_id.as_deref(), Some("r1"));
            assert_eq!(error.kind, ErrorKind::Internal);
            assert!(
                error.message.contains("injected fault"),
                "{}",
                error.message
            );
        }
        other => panic!("expected Internal error for r1, got {other:?}"),
    }

    // r2's response line is bit-identical to a fresh process: the panic
    // fired after r1's session was built, so r2 is warm in both runs.
    assert_eq!(faulted_lines[1], fresh_lines[1]);
}

#[test]
fn cancel_race_answers_cancelled_without_disturbing_siblings() {
    // r1 is held for 400 ms by the injected delay; the Cancel lands while
    // it sleeps. r2 must still answer normally.
    let input = format!(
        "{}\n{{\"Cancel\":{{\"request_id\":\"r1\"}}}}\n{}\n",
        d695_line("r1"),
        d695_line("r2"),
    );
    let frames = parse_transcript(&run_server(&["--faults", "optimize:delay:400@r1"], &input));
    assert_eq!(frames.len(), 3);
    match &frames[0] {
        ServerFrame::Error(error) => {
            assert_eq!(error.request_id.as_deref(), Some("r1"));
            assert_eq!(error.kind, ErrorKind::Cancelled);
        }
        other => panic!("expected Cancelled for r1, got {other:?}"),
    }
    assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
    match &frames[2] {
        ServerFrame::Bye(stats) => assert_eq!((stats.served, stats.errors), (1, 1)),
        other => panic!("expected Bye, got {other:?}"),
    }
}

#[test]
fn expired_deadline_answers_deadline_exceeded() {
    let input = format!(
        "{}\n{}\n",
        optimize_line("r1", SocSpec::Named("d695".to_string()), Some(100)),
        d695_line("r2"),
    );
    let frames = parse_transcript(&run_server(&["--faults", "optimize:delay:300@r1"], &input));
    match &frames[0] {
        ServerFrame::Error(error) => {
            assert_eq!(error.request_id.as_deref(), Some("r1"));
            assert_eq!(error.kind, ErrorKind::DeadlineExceeded);
        }
        other => panic!("expected DeadlineExceeded for r1, got {other:?}"),
    }
    assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
}

#[test]
fn memory_cap_provably_evicts() {
    // A 1-byte cap makes every session oversized: only the hottest stays.
    let big_cell = TestCell::new(
        AteSpec::new(512, 768 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    let p22810_line = serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
        request_id: "r3".to_string(),
        soc: SocSpec::Named("p22810".to_string()),
        request: OptimizeRequest::new(OptimizerConfig::new(big_cell)),
        deadline_ms: None,
        stats: false,
    }))
    .unwrap();
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        d695_line("r1"),
        d695_line("r2"),
        p22810_line,
        d695_line("r4"),
    );
    let frames = parse_transcript(&run_server(&["--max-table-bytes", "1"], &input));
    let warms: Vec<bool> = frames[..4]
        .iter()
        .map(|frame| match frame {
            ServerFrame::Result(result) => result.warm,
            other => panic!("expected result, got {other:?}"),
        })
        .collect();
    // d695 cold, d695 warm (sole oversized survivor), p22810 evicts it,
    // d695 must rebuild.
    assert_eq!(warms, [false, true, false, false]);
    match &frames[4] {
        ServerFrame::Bye(stats) => {
            assert_eq!(stats.sessions_created, 3);
            assert_eq!(stats.evictions, 2);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
}

#[test]
fn session_cap_evicts_least_recently_used() {
    // Cap 2, with an inline tiny SOC as the third distinct content.
    let mut tiny = soctest_soc_model::Soc::new("tiny");
    tiny.push_module(
        soctest_soc_model::Module::builder("m")
            .patterns(3)
            .inputs(2)
            .outputs(2)
            .scan_chain(8)
            .build(),
    );
    let tiny_text = soctest_soc_model::writer::write_soc(&tiny);
    let big_cell = TestCell::new(
        AteSpec::new(512, 768 * 1024, 5.0e6),
        ProbeStation::paper_probe_station(),
    );
    let p22810_line = serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
        request_id: "r2".to_string(),
        soc: SocSpec::Named("p22810".to_string()),
        request: OptimizeRequest::new(OptimizerConfig::new(big_cell)),
        deadline_ms: None,
        stats: false,
    }))
    .unwrap();
    let input = format!(
        "{}\n{}\n{}\n{}\n{}\n",
        d695_line("r1"),
        p22810_line,
        d695_line("r3"),
        optimize_line("r4", SocSpec::Inline(tiny_text), None),
        d695_line("r5"),
    );
    let frames = parse_transcript(&run_server(&["--max-sessions", "2"], &input));
    let warms: Vec<bool> = frames[..5]
        .iter()
        .map(|frame| match frame {
            ServerFrame::Result(result) => result.warm,
            other => panic!("expected result, got {other:?}"),
        })
        .collect();
    // r3 touches d695 hot, so admitting the tiny SOC evicts p22810 and
    // d695 stays warm for r5.
    assert_eq!(warms, [false, false, true, false, true]);
    match &frames[5] {
        ServerFrame::Bye(stats) => {
            assert_eq!(stats.evictions, 1);
            assert_eq!(stats.session_hits, 2);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
}

/// A unique scratch directory for cache-dir tests, removed on drop.
struct CacheDirGuard(std::path::PathBuf);

impl CacheDirGuard {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("soctest-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create cache dir");
        CacheDirGuard(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for CacheDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn identical_frames_coalesce_onto_one_computation() {
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        d695_line("r1"),
        d695_line("r2"),
        d695_line("r3"),
        d695_line("r4"),
    );
    let transcript = run_server(&[], &input);
    let frames = parse_transcript(&transcript);
    let leader_response = match &frames[0] {
        ServerFrame::Result(result) => result.response.clone(),
        other => panic!("expected result for r1, got {other:?}"),
    };
    for (frame, id) in frames[..4].iter().zip(["r1", "r2", "r3", "r4"]) {
        match frame {
            ServerFrame::Result(result) => {
                assert_eq!(result.request_id, id);
                assert_eq!(result.cached, id != "r1");
                // Every answer is bit-identical to the leader's.
                assert_eq!(result.response, leader_response);
            }
            other => panic!("expected result for {id}, got {other:?}"),
        }
    }
    match &frames[4] {
        ServerFrame::Bye(stats) => {
            // One computation served all four identical frames.
            assert_eq!(stats.cache.result_misses, 1);
            assert_eq!(stats.cache.result_hits, 3);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
}

#[test]
fn cancelled_request_does_not_poison_identical_successors() {
    // r1 is cancelled mid-flight; its error must not be cached, so the
    // identical r2 computes a normal answer.
    let input = format!(
        "{}\n{{\"Cancel\":{{\"request_id\":\"r1\"}}}}\n{}\n",
        d695_line("r1"),
        d695_line("r2"),
    );
    let frames = parse_transcript(&run_server(&["--faults", "optimize:delay:400@r1"], &input));
    assert!(matches!(
        &frames[0],
        ServerFrame::Error(e) if e.kind == ErrorKind::Cancelled
    ));
    match &frames[1] {
        ServerFrame::Result(result) => {
            assert_eq!(result.request_id, "r2");
            assert!(
                !result.cached,
                "a failed leader must not populate the cache"
            );
        }
        other => panic!("expected result for r2, got {other:?}"),
    }
}

#[test]
fn warm_cache_dir_restart_rebuilds_zero_rows_across_processes() {
    let guard = CacheDirGuard::new("warm");
    let input = format!("{}\n{}\n", d695_line("r1"), d695_line("r2"));
    let cold = run_server(&["--cache-dir", guard.path()], &input);
    let warm = run_server(&["--cache-dir", guard.path()], &input);

    let cold_frames = parse_transcript(&cold);
    let warm_frames = parse_transcript(&warm);
    assert_eq!(cold_frames.len(), warm_frames.len());
    for (index, (cold_frame, warm_frame)) in
        cold_frames[..2].iter().zip(&warm_frames[..2]).enumerate()
    {
        let (ServerFrame::Result(cold_result), ServerFrame::Result(warm_result)) =
            (cold_frame, warm_frame)
        else {
            panic!("expected results, got {cold_frame:?} / {warm_frame:?}");
        };
        // Bit-identical answers across the restart...
        assert_eq!(cold_result.response, warm_result.response);
        // ...but the restarted process serves *every* request from the
        // persisted solution cache, including the one the cold process
        // had to compute.
        assert_eq!(cold_result.cached, index != 0);
        assert!(warm_result.cached, "persisted solutions answer repeats");
    }

    let cold_bye = match cold_frames.into_iter().next_back().unwrap() {
        ServerFrame::Bye(stats) => stats,
        other => panic!("expected Bye, got {other:?}"),
    };
    let warm_bye = match warm_frames.into_iter().next_back().unwrap() {
        ServerFrame::Bye(stats) => stats,
        other => panic!("expected Bye, got {other:?}"),
    };
    assert!(cold_bye.cache.cells_computed > 0);
    assert!(cold_bye.cache.store_rows_saved > 0);
    assert_eq!(cold_bye.cache.store_cells_loaded, 0);
    // The second process loaded every row and rebuilt none.
    assert_eq!(
        warm_bye.cache.cells_computed, 0,
        "zero rows rebuilt on warm restart"
    );
    assert!(warm_bye.cache.store_cells_loaded > 0);
    // Both requests of the warm process were solution-cache hits.
    assert_eq!(warm_bye.cache.result_hits, 2);
    assert_eq!(warm_bye.cache.result_misses, 0);
}

#[test]
fn size_capped_cache_dir_restart_stays_under_bound_with_zero_rebuilds() {
    let guard = CacheDirGuard::new("capped");
    let input = format!("{}\n{}\n", d695_line("r1"), d695_line("r2"));
    let cap: u64 = 64 * 1024;
    let cap_text = cap.to_string();
    let args = [
        "--cache-dir",
        guard.path(),
        "--max-store-bytes",
        cap_text.as_str(),
    ];
    let cold = run_server(&args, &input);
    let rows_path = guard.0.join("rows.v1");
    let rows_len = std::fs::metadata(&rows_path)
        .expect("rows.v1 written")
        .len();
    assert!(rows_len > 0 && rows_len <= cap, "{rows_len} vs cap {cap}");
    assert!(guard.0.join("solutions.v1").is_file());

    // The second process against the capped dir: bit-identical answers,
    // zero cells rebuilt, every request a solution-cache hit, and the
    // re-saved store still under the bound.
    let warm = run_server(&args, &input);
    let cold_frames = parse_transcript(&cold);
    let warm_frames = parse_transcript(&warm);
    for (cold_frame, warm_frame) in cold_frames[..2].iter().zip(&warm_frames[..2]) {
        let (ServerFrame::Result(cold_result), ServerFrame::Result(warm_result)) =
            (cold_frame, warm_frame)
        else {
            panic!("expected results, got {cold_frame:?} / {warm_frame:?}");
        };
        assert_eq!(cold_result.response, warm_result.response);
        assert!(warm_result.cached);
    }
    match warm_frames.last().unwrap() {
        ServerFrame::Bye(stats) => {
            assert_eq!(stats.cache.cells_computed, 0, "zero rebuilds under the cap");
            assert_eq!(stats.cache.result_hits, 2);
            assert_eq!(stats.cache.result_misses, 0);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
    let rows_len = std::fs::metadata(&rows_path)
        .expect("rows.v1 re-saved")
        .len();
    assert!(rows_len <= cap, "the re-save broke the bound: {rows_len}");

    // A bound tighter than any row forces the garbage collection to
    // shed everything: the file degrades to a valid (row-less) envelope
    // under the bound, and a restart against it still answers every
    // request bit-identically.
    let tiny = CacheDirGuard::new("tiny-cap");
    let tight_args = ["--cache-dir", tiny.path(), "--max-store-bytes", "100"];
    run_server(&tight_args, &input);
    let tiny_len = std::fs::metadata(tiny.0.join("rows.v1"))
        .expect("capped rows.v1 written")
        .len();
    assert!(tiny_len <= 100, "tight bound violated: {tiny_len}");
    let replay_frames = parse_transcript(&run_server(&tight_args, &input));
    for (cold_frame, replay_frame) in cold_frames[..2].iter().zip(&replay_frames[..2]) {
        let (ServerFrame::Result(cold_result), ServerFrame::Result(replay_result)) =
            (cold_frame, replay_frame)
        else {
            panic!("expected results, got {cold_frame:?} / {replay_frame:?}");
        };
        assert_eq!(cold_result.response, replay_result.response);
    }
}

#[test]
fn corrupt_cache_and_store_faults_never_kill_the_server() {
    let guard = CacheDirGuard::new("corrupt");
    std::fs::write(
        guard.0.join("rows.v1"),
        b"SOCROWS1 not really rows \xff\x00",
    )
    .unwrap();
    let input = format!("{}\n", d695_line("r1"));
    // Corrupt file: clean miss, request still served.
    let frames = parse_transcript(&run_server(&["--cache-dir", guard.path()], &input));
    assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
    match &frames[1] {
        ServerFrame::Bye(stats) => {
            assert_eq!(stats.cache.store_cells_loaded, 0);
            assert!(stats.cache.cells_computed > 0);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
    // Store-stage panics at load and save: the session survives both.
    let frames = parse_transcript(&run_server(
        &[
            "--cache-dir",
            guard.path(),
            "--faults",
            "store:panic@load,store:panic@save",
        ],
        &input,
    ));
    assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
    match &frames[1] {
        ServerFrame::Bye(stats) => {
            assert_eq!(stats.cache.store_cells_loaded, 0);
            assert_eq!(stats.cache.store_rows_saved, 0);
            assert_eq!(stats.served, 1);
        }
        other => panic!("expected Bye, got {other:?}"),
    }
}

#[test]
fn full_queue_sheds_in_admission_order() {
    // r1 is held for 600 ms; the admission delay on r2 lets the executor
    // pop r1 first, so r2 fills the single queue slot and r3/r4 are shed.
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        d695_line("r1"),
        d695_line("r2"),
        d695_line("r3"),
        d695_line("r4"),
    );
    let frames = parse_transcript(&run_server(
        &[
            "--queue-cap",
            "1",
            "--faults",
            "optimize:delay:600@r1,admission:delay:200@r2",
        ],
        &input,
    ));
    assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
    assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
    for (frame, id) in frames[2..4].iter().zip(["r3", "r4"]) {
        match frame {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some(id));
                assert_eq!(error.kind, ErrorKind::Overloaded);
            }
            other => panic!("expected Overloaded for {id}, got {other:?}"),
        }
    }
    match &frames[4] {
        ServerFrame::Bye(stats) => assert_eq!((stats.served, stats.errors), (2, 2)),
        other => panic!("expected Bye, got {other:?}"),
    }
}
