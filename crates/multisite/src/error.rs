//! Errors of the multi-site optimizer.

use soctest_tam::TamError;
use std::fmt;

/// Errors returned by the multi-site optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// The architecture design failed (module infeasible, channel shortage,
    /// empty SOC).
    Architecture(TamError),
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Architecture(inner) => write!(f, "architecture design failed: {inner}"),
            OptimizeError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Architecture(inner) => Some(inner),
            OptimizeError::InvalidConfig { .. } => None,
        }
    }
}

impl From<TamError> for OptimizeError {
    fn from(value: TamError) -> Self {
        OptimizeError::Architecture(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tam_error_with_source() {
        use std::error::Error as _;
        let err: OptimizeError = TamError::EmptySoc.into();
        assert!(err.to_string().contains("no modules"));
        assert!(err.source().is_some());
    }

    #[test]
    fn invalid_config_display() {
        let err = OptimizeError::InvalidConfig {
            message: "contact yield out of range".into(),
        };
        assert!(err.to_string().contains("contact yield"));
    }
}
