//! Errors of the multi-site optimizer.

use crate::engine::{tagged, untag};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use soctest_soc_model::validate::ValidationIssue;
use soctest_tam::TamError;
use std::fmt;

/// Errors returned by the multi-site optimizer, including the
/// service-facing outcomes of the [`crate::service`] layer (cancellation,
/// deadlines, load shedding, SOC validation).
///
/// Serialises in real serde's externally-tagged enum format (unit
/// variants as bare strings, data variants as single-key objects), so
/// error frames on the service wire keep their shape if the vendored
/// serde is swapped for the crates.io release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// The architecture design failed (module infeasible, channel shortage,
    /// empty SOC).
    Architecture(TamError),
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Human-readable description of the problem.
        message: String,
    },
    /// The SOC description failed [`soctest_soc_model::validate_soc`]
    /// with at least one error-severity finding; all findings (including
    /// warnings) ride along so the caller can report them in one round.
    InvalidSoc {
        /// Every validation finding, in validator order.
        issues: Vec<ValidationIssue>,
    },
    /// An invariant the optimizer relies on was broken (a panic caught at
    /// a request boundary, a response of the wrong shape, a poisoned
    /// internal structure). The request failed; the session survives.
    Internal {
        /// Human-readable description of the broken invariant.
        message: String,
    },
    /// The request was cancelled cooperatively before completing.
    Cancelled,
    /// The request's deadline expired before it completed.
    DeadlineExceeded,
    /// The service shed this request because its admission queue was
    /// full; retry later or against a less loaded instance.
    Overloaded,
}

impl OptimizeError {
    /// Shorthand for an [`OptimizeError::Internal`] with the given
    /// message.
    pub fn internal(message: impl Into<String>) -> Self {
        OptimizeError::Internal {
            message: message.into(),
        }
    }
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::Architecture(inner) => write!(f, "architecture design failed: {inner}"),
            OptimizeError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            OptimizeError::InvalidSoc { issues } => {
                let errors = issues
                    .iter()
                    .filter(|i| i.severity == soctest_soc_model::validate::Severity::Error)
                    .count();
                write!(f, "invalid SOC description ({errors} error(s)):")?;
                for issue in issues {
                    write!(f, " {issue};")?;
                }
                Ok(())
            }
            OptimizeError::Internal { message } => write!(f, "internal error: {message}"),
            OptimizeError::Cancelled => write!(f, "request cancelled"),
            OptimizeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            OptimizeError::Overloaded => {
                write!(f, "service overloaded: admission queue full, request shed")
            }
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Architecture(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<TamError> for OptimizeError {
    fn from(value: TamError) -> Self {
        OptimizeError::Architecture(value)
    }
}

impl Serialize for OptimizeError {
    fn to_value(&self) -> Value {
        match self {
            OptimizeError::Architecture(inner) => tagged("Architecture", inner.to_value()),
            OptimizeError::InvalidConfig { message } => tagged(
                "InvalidConfig",
                Value::Object(vec![("message".to_string(), message.to_value())]),
            ),
            OptimizeError::InvalidSoc { issues } => tagged(
                "InvalidSoc",
                Value::Object(vec![("issues".to_string(), issues.to_value())]),
            ),
            OptimizeError::Internal { message } => tagged(
                "Internal",
                Value::Object(vec![("message".to_string(), message.to_value())]),
            ),
            OptimizeError::Cancelled => Value::String("Cancelled".to_string()),
            OptimizeError::DeadlineExceeded => Value::String("DeadlineExceeded".to_string()),
            OptimizeError::Overloaded => Value::String("Overloaded".to_string()),
        }
    }
}

impl Deserialize for OptimizeError {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Cancelled" => Ok(OptimizeError::Cancelled),
                "DeadlineExceeded" => Ok(OptimizeError::DeadlineExceeded),
                "Overloaded" => Ok(OptimizeError::Overloaded),
                other => Err(SerdeError::custom(format!(
                    "unknown unit variant `{other}` for OptimizeError"
                ))),
            };
        }
        let (tag, body) = untag(value, "OptimizeError")?;
        match tag {
            "Architecture" => Ok(OptimizeError::Architecture(TamError::from_value(body)?)),
            "InvalidConfig" => Ok(OptimizeError::InvalidConfig {
                message: serde::get_field(body, "message", "OptimizeError::InvalidConfig")?,
            }),
            "InvalidSoc" => Ok(OptimizeError::InvalidSoc {
                issues: serde::get_field(body, "issues", "OptimizeError::InvalidSoc")?,
            }),
            "Internal" => Ok(OptimizeError::Internal {
                message: serde::get_field(body, "message", "OptimizeError::Internal")?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for OptimizeError"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::validate::Severity;

    #[test]
    fn wraps_tam_error_with_source() {
        use std::error::Error as _;
        let err: OptimizeError = TamError::EmptySoc.into();
        assert!(err.to_string().contains("no modules"));
        assert!(err.source().is_some());
    }

    #[test]
    fn invalid_config_display() {
        let err = OptimizeError::InvalidConfig {
            message: "contact yield out of range".into(),
        };
        assert!(err.to_string().contains("contact yield"));
    }

    #[test]
    fn service_variant_displays_are_descriptive() {
        assert!(OptimizeError::Cancelled.to_string().contains("cancelled"));
        assert!(OptimizeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(OptimizeError::Overloaded.to_string().contains("overloaded"));
        assert!(OptimizeError::internal("boom").to_string().contains("boom"));
    }

    #[test]
    fn invalid_soc_display_counts_errors() {
        let err = OptimizeError::InvalidSoc {
            issues: vec![
                ValidationIssue {
                    module: Some("m".into()),
                    severity: Severity::Error,
                    message: "zero test patterns".into(),
                },
                ValidationIssue {
                    module: Some("m".into()),
                    severity: Severity::Warning,
                    message: "zero length".into(),
                },
            ],
        };
        let text = err.to_string();
        assert!(text.contains("1 error(s)"));
        assert!(text.contains("zero test patterns"));
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let variants = [
            OptimizeError::Architecture(TamError::InsufficientChannels {
                available_channels: 16,
            }),
            OptimizeError::Architecture(TamError::EmptySoc),
            OptimizeError::InvalidConfig {
                message: "bad yield".into(),
            },
            OptimizeError::InvalidSoc {
                issues: vec![ValidationIssue {
                    module: None,
                    severity: Severity::Error,
                    message: "soc contains no modules".into(),
                }],
            },
            OptimizeError::internal("panic: sweep exploded"),
            OptimizeError::Cancelled,
            OptimizeError::DeadlineExceeded,
            OptimizeError::Overloaded,
        ];
        for err in &variants {
            let json = serde_json::to_string(err).unwrap();
            let back: OptimizeError = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, err, "round trip failed for {json}");
        }
        assert_eq!(
            serde_json::to_string(&OptimizeError::Cancelled).unwrap(),
            "\"Cancelled\""
        );
    }

    #[test]
    fn unknown_variants_are_rejected() {
        assert!(serde_json::from_str::<OptimizeError>("\"Nope\"").is_err());
        assert!(serde_json::from_str::<OptimizeError>("{\"Nope\":{}}").is_err());
    }
}
