//! Parameter sweeps behind the Section 7 experiments.
//!
//! Every figure of the paper's evaluation is a sweep of the optimizer over
//! one test-cell or yield parameter:
//!
//! * [`channel_sweep`] — throughput vs. ATE channel count (Figure 6(a)),
//! * [`depth_sweep`] — throughput vs. vector-memory depth (Figure 6(b)),
//! * [`contact_yield_sweep`] — unique throughput vs. memory depth for a set
//!   of contact yields (Figure 7(a)),
//! * [`abort_on_fail_sweep`] — expected test application time vs. site count
//!   for a set of manufacturing yields (Figure 7(b)),
//! * [`cost_effectiveness`] — the channels-versus-memory upgrade comparison
//!   quoted in the text of Section 7.
//!
//! Sweep points are independent, so they are evaluated on a rayon pool
//! (bounded by the machine's parallelism — a 100-point sweep no longer
//! spawns 100 OS threads); results are returned in input order, so
//! parallel sweeps are bit-identical to sequential evaluation.
//!
//! All sweep points share one demand-driven [`LazyTimeTable`]: its cells
//! are computed on first probe from whichever worker thread gets there
//! first (safe — cells are atomics holding deterministic values) and every
//! later point reuses them, so a sweep materialises exactly the union of
//! the widths its points probe instead of the full `(module, width)` grid.

use crate::error::OptimizeError;
use crate::optimizer::{evaluate_point, optimize_with_table};
use crate::problem::OptimizerConfig;
use crate::solution::SitePoint;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use soctest_ate::AteCostModel;
use soctest_soc_model::Soc;
use soctest_tam::LazyTimeTable;

/// One point of a single-parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (channel count, depth in vectors, ...).
    pub parameter: f64,
    /// The maximum multi-site at this parameter value.
    pub max_sites: usize,
    /// The throughput-optimal operating point at this parameter value.
    pub optimal: SitePoint,
}

/// A labelled family of sweep points (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Curve label (e.g. `"pc = 0.999"`).
    pub label: String,
    /// The curve's points, in the order of the swept values.
    pub points: Vec<SweepPoint>,
}

/// Runs `f` over `values` on the rayon pool, preserving input order.
fn parallel_map<T, R, F>(values: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    values.par_iter().map(f).collect()
}

/// Throughput vs. ATE channel count (Figure 6(a)): the optimizer is re-run
/// for every channel count in `channel_counts`, all other parameters held at
/// `config`.
///
/// # Errors
///
/// Fails if any individual optimization fails (e.g. the smallest channel
/// count cannot accommodate the SOC).
pub fn channel_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    channel_counts: &[usize],
) -> Result<Vec<SweepPoint>, OptimizeError> {
    let max_channels = channel_counts.iter().copied().max().unwrap_or(0);
    if max_channels == 0 {
        return Ok(Vec::new());
    }
    let table = LazyTimeTable::new(soc, (max_channels / 2).max(1));
    let results = parallel_map(channel_counts, |&channels| {
        let mut cfg = *config;
        cfg.test_cell.ate = cfg.test_cell.ate.with_channels(channels);
        optimize_with_table(soc.name(), &table, &cfg).map(|solution| SweepPoint {
            parameter: channels as f64,
            max_sites: solution.max_sites,
            optimal: solution.optimal,
        })
    });
    results.into_iter().collect()
}

/// Throughput vs. per-channel vector-memory depth (Figure 6(b)).
///
/// # Errors
///
/// Fails if any individual optimization fails (e.g. the shallowest depth is
/// infeasible for some module).
pub fn depth_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    depths: &[u64],
) -> Result<Vec<SweepPoint>, OptimizeError> {
    let table = LazyTimeTable::new(soc, (config.test_cell.ate.channels / 2).max(1));
    let results = parallel_map(depths, |&depth| {
        let mut cfg = *config;
        cfg.test_cell.ate = cfg.test_cell.ate.with_depth(depth);
        optimize_with_table(soc.name(), &table, &cfg).map(|solution| SweepPoint {
            parameter: depth as f64,
            max_sites: solution.max_sites,
            optimal: solution.optimal,
        })
    });
    results.into_iter().collect()
}

/// Unique-device throughput vs. memory depth, one curve per contact yield
/// (Figure 7(a)). Re-test of contact failures is always enabled here — that
/// is the effect the figure demonstrates.
///
/// # Errors
///
/// Fails if any individual optimization fails.
pub fn contact_yield_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    depths: &[u64],
    contact_yields: &[f64],
) -> Result<Vec<SweepCurve>, OptimizeError> {
    let mut curves = Vec::with_capacity(contact_yields.len());
    for &contact_yield in contact_yields {
        let mut cfg = *config;
        cfg.contact_yield = contact_yield;
        cfg.options.retest_contact_failures = true;
        let points = depth_sweep(soc, &cfg, depths)?;
        curves.push(SweepCurve {
            label: format!("pc = {contact_yield}"),
            points,
        });
    }
    Ok(curves)
}

/// One point of an abort-on-fail curve: expected test application time at a
/// given site count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbortOnFailPoint {
    /// Number of sites tested in parallel.
    pub sites: usize,
    /// Expected test application time per touchdown in seconds
    /// (Equation 4.4; includes the contact test).
    pub expected_test_time_s: f64,
}

/// Expected test application time vs. site count, one curve per
/// manufacturing yield (Figure 7(b)).
///
/// The architecture is fixed at the Step 1 (channel-minimal) design — as in
/// the paper, the point of the figure is the yield effect, not the channel
/// redistribution — and only the abort-on-fail expectation varies with the
/// site count.
///
/// # Errors
///
/// Fails if the Step 1 design fails.
pub fn abort_on_fail_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    max_sites: usize,
    manufacturing_yields: &[f64],
) -> Result<Vec<SweepCurve>, OptimizeError> {
    let table = LazyTimeTable::new(soc, (config.test_cell.ate.channels / 2).max(1));
    let base = optimize_with_table(soc.name(), &table, config)?;
    let architecture = base.step1_architecture;

    let mut curves = Vec::with_capacity(manufacturing_yields.len());
    for &manufacturing_yield in manufacturing_yields {
        let mut cfg = *config;
        cfg.manufacturing_yield = manufacturing_yield;
        cfg.options.abort_on_fail = true;
        let points = (1..=max_sites.max(1))
            .map(|sites| {
                let point = evaluate_point(&architecture, sites, &cfg);
                SweepPoint {
                    parameter: sites as f64,
                    max_sites,
                    optimal: point,
                }
            })
            .collect();
        curves.push(SweepCurve {
            label: format!("pm = {manufacturing_yield}"),
            points,
        });
    }
    Ok(curves)
}

/// Outcome of the channels-versus-memory cost comparison of Section 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEffectiveness {
    /// Throughput of the unmodified test cell.
    pub base_devices_per_hour: f64,
    /// Cost (USD) of doubling the vector memory of every channel.
    pub memory_upgrade_cost_usd: f64,
    /// Throughput after the memory doubling.
    pub memory_upgrade_devices_per_hour: f64,
    /// Extra channels that the same budget buys instead.
    pub equivalent_extra_channels: usize,
    /// Cost (USD) of that channel upgrade (at most the memory budget).
    pub channel_upgrade_cost_usd: f64,
    /// Throughput after the channel upgrade.
    pub channel_upgrade_devices_per_hour: f64,
}

impl CostEffectiveness {
    /// Relative throughput gain of the memory upgrade.
    pub fn memory_gain(&self) -> f64 {
        self.memory_upgrade_devices_per_hour / self.base_devices_per_hour - 1.0
    }

    /// Relative throughput gain of the channel upgrade.
    pub fn channel_gain(&self) -> f64 {
        self.channel_upgrade_devices_per_hour / self.base_devices_per_hour - 1.0
    }

    /// Whether spending the budget on memory beats spending it on channels
    /// (the paper's conclusion for the PNX8550).
    pub fn memory_wins(&self) -> bool {
        self.memory_gain() > self.channel_gain()
    }
}

/// Evaluates the Section 7 cost comparison: double the vector memory of the
/// whole ATE, versus spending the same money on extra channels.
///
/// # Errors
///
/// Fails if any of the three optimizations (base, deeper memory, more
/// channels) fails.
pub fn cost_effectiveness(
    soc: &Soc,
    config: &OptimizerConfig,
    prices: &AteCostModel,
) -> Result<CostEffectiveness, OptimizeError> {
    let base_ate = config.test_cell.ate;
    let budget = prices.memory_doubling_cost(&base_ate, 1);
    let extra_channels = prices.channels_affordable(budget);
    let upgraded_channels = base_ate.channels + extra_channels;

    let channel_counts = [base_ate.channels, upgraded_channels];
    let channel_points = channel_sweep(soc, config, &channel_counts)?;

    let mut deeper_cfg = *config;
    deeper_cfg.test_cell.ate = base_ate.with_depth(base_ate.vector_memory_depth * 2);
    let deeper = crate::optimizer::optimize(soc, &deeper_cfg)?;

    Ok(CostEffectiveness {
        base_devices_per_hour: channel_points[0].optimal.objective(),
        memory_upgrade_cost_usd: budget,
        memory_upgrade_devices_per_hour: deeper.optimal.objective(),
        equivalent_extra_channels: extra_channels,
        channel_upgrade_cost_usd: prices.channel_upgrade_cost(base_ate.channels, upgraded_channels),
        channel_upgrade_devices_per_hour: channel_points[1].optimal.objective(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::d695;

    fn config() -> OptimizerConfig {
        OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ))
    }

    #[test]
    fn channel_sweep_is_monotone_in_channels() {
        let soc = d695();
        let points = channel_sweep(&soc, &config(), &[128, 192, 256, 320]).unwrap();
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].optimal.devices_per_hour >= pair[0].optimal.devices_per_hour - 1e-9,
                "throughput dropped from {} to {}",
                pair[0].optimal.devices_per_hour,
                pair[1].optimal.devices_per_hour
            );
        }
    }

    #[test]
    fn depth_sweep_is_monotone_in_depth() {
        let soc = d695();
        let depths = [64 * 1024, 96 * 1024, 128 * 1024, 192 * 1024];
        let points = depth_sweep(&soc, &config(), &depths).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].optimal.devices_per_hour >= pair[0].optimal.devices_per_hour - 1e-9);
        }
    }

    #[test]
    fn contact_yield_sweep_orders_curves_by_yield() {
        let soc = d695();
        let depths = [96 * 1024];
        let curves = contact_yield_sweep(&soc, &config(), &depths, &[0.99, 0.999, 1.0]).unwrap();
        assert_eq!(curves.len(), 3);
        // Better contact yield -> more unique devices per hour.
        let at = |i: usize| curves[i].points[0].optimal.unique_devices_per_hour;
        assert!(at(0) <= at(1) + 1e-9);
        assert!(at(1) <= at(2) + 1e-9);
    }

    #[test]
    fn abort_on_fail_sweep_shows_vanishing_benefit() {
        let soc = d695();
        let curves = abort_on_fail_sweep(&soc, &config(), 8, &[1.0, 0.7]).unwrap();
        assert_eq!(curves.len(), 2);
        let perfect = &curves[0];
        let lossy = &curves[1];
        // At perfect yield the expected time is flat in the site count.
        let t0 = perfect.points[0].optimal.expected_test_time_s;
        assert!(perfect
            .points
            .iter()
            .all(|p| (p.optimal.expected_test_time_s - t0).abs() < 1e-9));
        // At 70% yield the single-site time is clearly lower, but approaches
        // the full time as sites are added.
        assert!(lossy.points[0].optimal.expected_test_time_s < 0.8 * t0);
        let last = lossy.points.last().unwrap().optimal.expected_test_time_s;
        assert!(last > 0.95 * t0);
    }

    #[test]
    fn cost_effectiveness_reports_consistent_numbers() {
        let soc = d695();
        let result = cost_effectiveness(&soc, &config(), &AteCostModel::paper_prices()).unwrap();
        assert!(result.base_devices_per_hour > 0.0);
        assert!(result.memory_upgrade_devices_per_hour >= result.base_devices_per_hour - 1e-9);
        assert!(result.channel_upgrade_devices_per_hour >= result.base_devices_per_hour - 1e-9);
        assert!(result.channel_upgrade_cost_usd <= result.memory_upgrade_cost_usd + 1e-9);
        assert!(result.memory_gain() >= -1e-12);
        assert!(result.channel_gain() >= -1e-12);
    }

    #[test]
    fn empty_sweeps_return_empty_results() {
        let soc = d695();
        assert!(channel_sweep(&soc, &config(), &[]).unwrap().is_empty());
        assert!(depth_sweep(&soc, &config(), &[]).unwrap().is_empty());
    }

    #[test]
    fn infeasible_sweep_point_propagates_the_error() {
        let soc = d695();
        // 16 channels cannot host d695 at this shallow depth.
        let result = channel_sweep(&soc, &config(), &[256, 4]);
        assert!(result.is_err());
    }
}
