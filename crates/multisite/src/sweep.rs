//! Parameter sweeps behind the Section 7 experiments — convenience
//! wrappers over the session-oriented [`crate::engine::Engine`].
//!
//! Every figure of the paper's evaluation is a sweep of the optimizer over
//! one test-cell or yield parameter:
//!
//! * [`channel_sweep`] — throughput vs. ATE channel count (Figure 6(a)),
//! * [`depth_sweep`] — throughput vs. vector-memory depth (Figure 6(b)),
//! * [`contact_yield_sweep`] — unique throughput vs. memory depth for a set
//!   of contact yields (Figure 7(a)),
//! * [`abort_on_fail_sweep`] — expected test application time vs. site
//!   count for a set of manufacturing yields (Figure 7(b)),
//! * [`cost_effectiveness`] — the channels-versus-memory upgrade
//!   comparison quoted in the text of Section 7.
//!
//! Each free function is a thin shim: it builds a one-shot [`Engine`] for
//! the SOC and serves a single typed request, so all sweep semantics
//! (shared demand-driven table, order-preserving rayon parallelism,
//! bit-identical parallel/sequential results) live in the engine. Callers
//! running **more than one** sweep over the same SOC should hold an
//! [`Engine`] themselves and batch the requests — the engine then shares
//! one table across all of them instead of rebuilding it per call.

use crate::engine::{tagged, untag, Engine, OptimizeRequest, OptimizeResponse, SweepAxis};
use crate::error::OptimizeError;
use crate::problem::OptimizerConfig;
use crate::solution::SitePoint;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use soctest_ate::AteCostModel;
use soctest_soc_model::Soc;
use std::fmt;

/// The typed value of the swept parameter at one sweep point.
///
/// Replaces the former lossy `parameter: f64`: the variant names the axis
/// and the value keeps its native integer type. Serialises in real
/// serde's externally-tagged enum format (`{"Channels": 512}`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AxisValue {
    /// An ATE channel count ([`SweepAxis::Channels`]).
    Channels(usize),
    /// A per-channel vector-memory depth in vectors
    /// ([`SweepAxis::DepthVectors`] and [`SweepAxis::ContactYield`]).
    DepthVectors(u64),
    /// A site count (the x axis of [`SweepAxis::ManufacturingYield`]
    /// curves).
    Sites(usize),
}

impl AxisValue {
    /// The raw value as a `u64` (all axes are integer-valued).
    pub fn as_u64(self) -> u64 {
        match self {
            AxisValue::Channels(channels) => channels as u64,
            AxisValue::DepthVectors(depth) => depth,
            AxisValue::Sites(sites) => sites as u64,
        }
    }

    /// The raw value as an `f64` (for plotting / ratio arithmetic).
    pub fn as_f64(self) -> f64 {
        self.as_u64() as f64
    }
}

impl fmt::Display for AxisValue {
    /// Displays just the numeric value (delegating, so `{:>14}`-style
    /// padding works), matching what the former `f64` field printed for
    /// the integer-valued axes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Channels(channels) => fmt::Display::fmt(channels, f),
            AxisValue::DepthVectors(depth) => fmt::Display::fmt(depth, f),
            AxisValue::Sites(sites) => fmt::Display::fmt(sites, f),
        }
    }
}

impl Serialize for AxisValue {
    fn to_value(&self) -> Value {
        match self {
            AxisValue::Channels(channels) => tagged("Channels", channels.to_value()),
            AxisValue::DepthVectors(depth) => tagged("DepthVectors", depth.to_value()),
            AxisValue::Sites(sites) => tagged("Sites", sites.to_value()),
        }
    }
}

impl Deserialize for AxisValue {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "AxisValue")?;
        match tag {
            "Channels" => Ok(AxisValue::Channels(usize::from_value(body)?)),
            "DepthVectors" => Ok(AxisValue::DepthVectors(u64::from_value(body)?)),
            "Sites" => Ok(AxisValue::Sites(usize::from_value(body)?)),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for AxisValue"
            ))),
        }
    }
}

/// One point of a single-parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (channel count, depth in vectors, ...).
    pub parameter: AxisValue,
    /// The maximum multi-site at this parameter value.
    pub max_sites: usize,
    /// The throughput-optimal operating point at this parameter value.
    pub optimal: SitePoint,
}

/// A labelled family of sweep points (one curve of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCurve {
    /// Curve label (e.g. `"pc = 0.999"`).
    pub label: String,
    /// The curve's points, in the order of the swept values.
    pub points: Vec<SweepPoint>,
}

/// Unwraps a sweeping request's response into its curves. A sweeping axis
/// always answers with curves; a `Solution` here means the engine broke
/// that contract, which surfaces as a typed [`OptimizeError::Internal`]
/// instead of taking the process down.
fn curves_of(response: OptimizeResponse) -> Result<Vec<SweepCurve>, OptimizeError> {
    response.into_curves().ok_or_else(|| {
        OptimizeError::internal("sweeping request answered with a solution instead of curves")
    })
}

/// A throwaway engine pre-sized for exactly one request, so the single
/// run never pays a build-then-rebuild of the table.
fn one_shot_engine(soc: &Soc, request: &OptimizeRequest) -> Engine {
    Engine::builder(soc)
        .max_channels(request.peak_channels())
        .build()
}

/// Throughput vs. ATE channel count (Figure 6(a)): the optimizer is re-run
/// for every channel count in `channel_counts`, all other parameters held
/// at `config`. Convenience wrapper over a one-shot [`Engine`] request
/// with [`SweepAxis::Channels`].
///
/// # Errors
///
/// Fails if any individual optimization fails (e.g. the smallest channel
/// count cannot accommodate the SOC).
pub fn channel_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    channel_counts: &[usize],
) -> Result<Vec<SweepPoint>, OptimizeError> {
    let request =
        OptimizeRequest::new(*config).with_sweep(SweepAxis::Channels(channel_counts.to_vec()));
    let engine = one_shot_engine(soc, &request);
    let mut curves = curves_of(engine.run(&request)?)?;
    Ok(curves.pop().map(|curve| curve.points).unwrap_or_default())
}

/// Throughput vs. per-channel vector-memory depth (Figure 6(b)).
/// Convenience wrapper over a one-shot [`Engine`] request with
/// [`SweepAxis::DepthVectors`].
///
/// # Errors
///
/// Fails if any individual optimization fails (e.g. the shallowest depth
/// is infeasible for some module).
pub fn depth_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    depths: &[u64],
) -> Result<Vec<SweepPoint>, OptimizeError> {
    let request =
        OptimizeRequest::new(*config).with_sweep(SweepAxis::DepthVectors(depths.to_vec()));
    let engine = one_shot_engine(soc, &request);
    let mut curves = curves_of(engine.run(&request)?)?;
    Ok(curves.pop().map(|curve| curve.points).unwrap_or_default())
}

/// Unique-device throughput vs. memory depth, one curve per contact yield
/// (Figure 7(a)). Re-test of contact failures is always enabled here —
/// that is the effect the figure demonstrates. Convenience wrapper over a
/// one-shot [`Engine`] request with [`SweepAxis::ContactYield`].
///
/// # Errors
///
/// Fails if any individual optimization fails.
pub fn contact_yield_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    depths: &[u64],
    contact_yields: &[f64],
) -> Result<Vec<SweepCurve>, OptimizeError> {
    let request = OptimizeRequest::new(*config).with_sweep(SweepAxis::ContactYield {
        depths: depths.to_vec(),
        contact_yields: contact_yields.to_vec(),
    });
    let engine = one_shot_engine(soc, &request);
    curves_of(engine.run(&request)?)
}

/// One point of an abort-on-fail curve: expected test application time at a
/// given site count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbortOnFailPoint {
    /// Number of sites tested in parallel.
    pub sites: usize,
    /// Expected test application time per touchdown in seconds
    /// (Equation 4.4; includes the contact test).
    pub expected_test_time_s: f64,
}

/// Expected test application time vs. site count, one curve per
/// manufacturing yield (Figure 7(b)). Convenience wrapper over a one-shot
/// [`Engine`] request with [`SweepAxis::ManufacturingYield`].
///
/// The architecture is fixed at the Step 1 (channel-minimal) design — as
/// in the paper, the point of the figure is the yield effect, not the
/// channel redistribution — and only the abort-on-fail expectation varies
/// with the site count.
///
/// # Errors
///
/// Fails if the Step 1 design fails.
pub fn abort_on_fail_sweep(
    soc: &Soc,
    config: &OptimizerConfig,
    max_sites: usize,
    manufacturing_yields: &[f64],
) -> Result<Vec<SweepCurve>, OptimizeError> {
    let request = OptimizeRequest::new(*config).with_sweep(SweepAxis::ManufacturingYield {
        max_sites,
        manufacturing_yields: manufacturing_yields.to_vec(),
    });
    let engine = one_shot_engine(soc, &request);
    curves_of(engine.run(&request)?)
}

/// Outcome of the channels-versus-memory cost comparison of Section 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEffectiveness {
    /// Throughput of the unmodified test cell.
    pub base_devices_per_hour: f64,
    /// Cost (USD) of doubling the vector memory of every channel.
    pub memory_upgrade_cost_usd: f64,
    /// Throughput after the memory doubling.
    pub memory_upgrade_devices_per_hour: f64,
    /// Extra channels that the same budget buys instead.
    pub equivalent_extra_channels: usize,
    /// Cost (USD) of that channel upgrade (at most the memory budget).
    pub channel_upgrade_cost_usd: f64,
    /// Throughput after the channel upgrade.
    pub channel_upgrade_devices_per_hour: f64,
}

impl CostEffectiveness {
    /// Relative throughput gain of the memory upgrade.
    pub fn memory_gain(&self) -> f64 {
        self.memory_upgrade_devices_per_hour / self.base_devices_per_hour - 1.0
    }

    /// Relative throughput gain of the channel upgrade.
    pub fn channel_gain(&self) -> f64 {
        self.channel_upgrade_devices_per_hour / self.base_devices_per_hour - 1.0
    }

    /// Whether spending the budget on memory beats spending it on channels
    /// (the paper's conclusion for the PNX8550).
    pub fn memory_wins(&self) -> bool {
        self.memory_gain() > self.channel_gain()
    }
}

/// Evaluates the Section 7 cost comparison: double the vector memory of the
/// whole ATE, versus spending the same money on extra channels.
/// Convenience wrapper over [`Engine::cost_effectiveness`].
///
/// # Errors
///
/// Fails if any of the three optimizations (base, deeper memory, more
/// channels) fails.
pub fn cost_effectiveness(
    soc: &Soc,
    config: &OptimizerConfig,
    prices: &AteCostModel,
) -> Result<CostEffectiveness, OptimizeError> {
    // Pre-size for the base cell; the engine widens once more for the
    // channel-upgrade comparison point.
    Engine::builder(soc)
        .max_channels(config.test_cell.ate.channels)
        .build()
        .cost_effectiveness(config, prices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::d695;

    fn config() -> OptimizerConfig {
        OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ))
    }

    #[test]
    fn channel_sweep_is_monotone_in_channels() {
        let soc = d695();
        let points = channel_sweep(&soc, &config(), &[128, 192, 256, 320]).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].parameter, AxisValue::Channels(128));
        for pair in points.windows(2) {
            assert!(
                pair[1].optimal.devices_per_hour >= pair[0].optimal.devices_per_hour - 1e-9,
                "throughput dropped from {} to {}",
                pair[0].optimal.devices_per_hour,
                pair[1].optimal.devices_per_hour
            );
        }
    }

    #[test]
    fn depth_sweep_is_monotone_in_depth() {
        let soc = d695();
        let depths = [64 * 1024, 96 * 1024, 128 * 1024, 192 * 1024];
        let points = depth_sweep(&soc, &config(), &depths).unwrap();
        assert_eq!(points[0].parameter, AxisValue::DepthVectors(64 * 1024));
        for pair in points.windows(2) {
            assert!(pair[1].optimal.devices_per_hour >= pair[0].optimal.devices_per_hour - 1e-9);
        }
    }

    #[test]
    fn contact_yield_sweep_orders_curves_by_yield() {
        let soc = d695();
        let depths = [96 * 1024];
        let curves = contact_yield_sweep(&soc, &config(), &depths, &[0.99, 0.999, 1.0]).unwrap();
        assert_eq!(curves.len(), 3);
        // Better contact yield -> more unique devices per hour.
        let at = |i: usize| curves[i].points[0].optimal.unique_devices_per_hour;
        assert!(at(0) <= at(1) + 1e-9);
        assert!(at(1) <= at(2) + 1e-9);
    }

    #[test]
    fn abort_on_fail_sweep_shows_vanishing_benefit() {
        let soc = d695();
        let curves = abort_on_fail_sweep(&soc, &config(), 8, &[1.0, 0.7]).unwrap();
        assert_eq!(curves.len(), 2);
        let perfect = &curves[0];
        let lossy = &curves[1];
        // At perfect yield the expected time is flat in the site count.
        let t0 = perfect.points[0].optimal.expected_test_time_s;
        assert!(perfect
            .points
            .iter()
            .all(|p| (p.optimal.expected_test_time_s - t0).abs() < 1e-9));
        // At 70% yield the single-site time is clearly lower, but approaches
        // the full time as sites are added.
        assert!(lossy.points[0].optimal.expected_test_time_s < 0.8 * t0);
        let last = lossy.points.last().unwrap().optimal.expected_test_time_s;
        assert!(last > 0.95 * t0);
        // The x axis is the site count.
        assert_eq!(lossy.points[3].parameter, AxisValue::Sites(4));
    }

    #[test]
    fn cost_effectiveness_reports_consistent_numbers() {
        let soc = d695();
        let result = cost_effectiveness(&soc, &config(), &AteCostModel::paper_prices()).unwrap();
        assert!(result.base_devices_per_hour > 0.0);
        assert!(result.memory_upgrade_devices_per_hour >= result.base_devices_per_hour - 1e-9);
        assert!(result.channel_upgrade_devices_per_hour >= result.base_devices_per_hour - 1e-9);
        assert!(result.channel_upgrade_cost_usd <= result.memory_upgrade_cost_usd + 1e-9);
        assert!(result.memory_gain() >= -1e-12);
        assert!(result.channel_gain() >= -1e-12);
    }

    #[test]
    fn empty_sweeps_return_empty_results() {
        let soc = d695();
        assert!(channel_sweep(&soc, &config(), &[]).unwrap().is_empty());
        assert!(depth_sweep(&soc, &config(), &[]).unwrap().is_empty());
    }

    #[test]
    fn infeasible_sweep_point_propagates_the_error() {
        let soc = d695();
        // 16 channels cannot host d695 at this shallow depth.
        let result = channel_sweep(&soc, &config(), &[256, 4]);
        assert!(result.is_err());
    }

    #[test]
    fn axis_values_display_as_their_raw_number() {
        assert_eq!(AxisValue::Channels(512).to_string(), "512");
        assert_eq!(format!("{:>7}", AxisValue::DepthVectors(98304)), "  98304");
        assert_eq!(AxisValue::Sites(4).as_u64(), 4);
        assert_eq!(AxisValue::DepthVectors(5).as_f64(), 5.0);
    }

    #[test]
    fn axis_values_round_trip_through_json() {
        for value in [
            AxisValue::Channels(512),
            AxisValue::DepthVectors(7 * 1024 * 1024),
            AxisValue::Sites(3),
        ] {
            let json = serde_json::to_string(&value).unwrap();
            assert_eq!(serde_json::from_str::<AxisValue>(&json).unwrap(), value);
        }
        assert_eq!(
            serde_json::to_string(&AxisValue::Channels(512)).unwrap(),
            "{\"Channels\":512}"
        );
        assert!(serde_json::from_str::<AxisValue>("{\"Nope\":1}").is_err());
    }
}
