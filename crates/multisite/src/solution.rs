//! Solution types of the multi-site optimizer.

use serde::{Deserialize, Serialize};
use soctest_tam::TestArchitecture;
use std::fmt;

/// The evaluation of one candidate site count `n` during Step 2's linear
/// search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePoint {
    /// Number of sites tested in parallel.
    pub sites: usize,
    /// ATE channels used per site (`k`, always even).
    pub channels_per_site: usize,
    /// Internal TAM width per site (wrapper chains).
    pub tam_width: usize,
    /// SOC test application time in test clock cycles.
    pub test_time_cycles: u64,
    /// SOC manufacturing test time in seconds.
    pub manufacturing_test_time_s: f64,
    /// Expected test application time per touchdown in seconds, including
    /// the contact test (equals `t_c + t_m` without abort-on-fail, or the
    /// Equation 4.4 value with it).
    pub expected_test_time_s: f64,
    /// Devices tested per hour (`D_th`, Equation 4.5) for this site count.
    pub devices_per_hour: f64,
    /// Unique devices tested per hour (`D^u_th`, Equation 4.6) when re-test
    /// is enabled; equal to `devices_per_hour` otherwise.
    pub unique_devices_per_hour: f64,
}

impl SitePoint {
    /// The objective value used to rank site counts: the unique-device
    /// throughput when re-test is part of the scenario, the plain
    /// throughput otherwise. (The two coincide when re-test is off.)
    pub fn objective(&self) -> f64 {
        self.unique_devices_per_hour
    }
}

impl fmt::Display for SitePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:2} k={:3} w={:3} t_m={:.3}s D_th={:.0}/h",
            self.sites,
            self.channels_per_site,
            self.tam_width,
            self.manufacturing_test_time_s,
            self.devices_per_hour
        )
    }
}

/// Complete result of a two-step optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSiteSolution {
    /// Name of the optimized SOC.
    pub soc_name: String,
    /// The Step 1 (channel-minimal) architecture.
    pub step1_architecture: TestArchitecture,
    /// The maximum number of sites permitted by the Step 1 architecture
    /// (`n_max`).
    pub max_sites: usize,
    /// The throughput evaluation of every site count from 1 to `n_max`
    /// (ascending by `sites`).
    pub curve: Vec<SitePoint>,
    /// The throughput-optimal point (`n_opt`).
    pub optimal: SitePoint,
    /// The architecture after Step 2's channel redistribution at `n_opt`.
    pub optimal_architecture: TestArchitecture,
    /// Contacted probe pads per site (E-RPCT channels plus control, clock
    /// and power pins) at the optimal point.
    pub contacted_pads_per_site: usize,
}

impl MultiSiteSolution {
    /// The optimal number of sites (`n_opt`).
    pub fn optimal_sites(&self) -> usize {
        self.optimal.sites
    }

    /// The SitePoint for a given site count, if it was evaluated.
    pub fn point(&self, sites: usize) -> Option<&SitePoint> {
        self.curve.iter().find(|p| p.sites == sites)
    }

    /// Throughput gain of Step 2 over stopping at Step 1's maximal
    /// multi-site (`D_th(n_opt) / D_th(n_max) - 1`), as a fraction.
    pub fn step2_gain(&self) -> f64 {
        match self.point(self.max_sites) {
            Some(at_max) if at_max.objective() > 0.0 => {
                self.optimal.objective() / at_max.objective() - 1.0
            }
            _ => 0.0,
        }
    }

    /// The best achievable throughput when the number of sites is capped at
    /// `max_sites` (e.g. by probe-card or handler limitations).
    pub fn best_under_site_cap(&self, max_sites: usize) -> Option<&SitePoint> {
        self.curve
            .iter()
            .filter(|p| p.sites <= max_sites)
            .max_by(|a, b| a.objective().total_cmp(&b.objective()))
    }
}

impl fmt::Display for MultiSiteSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: n_max={} n_opt={} (k={} per site, {:.0} devices/hour)",
            self.soc_name,
            self.max_sites,
            self.optimal.sites,
            self.optimal.channels_per_site,
            self.optimal.devices_per_hour
        )?;
        for point in &self.curve {
            writeln!(f, "  {point}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(sites: usize, dth: f64) -> SitePoint {
        SitePoint {
            sites,
            channels_per_site: 16,
            tam_width: 8,
            test_time_cycles: 1000,
            manufacturing_test_time_s: 0.2,
            expected_test_time_s: 0.201,
            devices_per_hour: dth,
            unique_devices_per_hour: dth,
        }
    }

    fn solution() -> MultiSiteSolution {
        MultiSiteSolution {
            soc_name: "toy".into(),
            step1_architecture: TestArchitecture::default(),
            max_sites: 3,
            curve: vec![point(1, 100.0), point(2, 180.0), point(3, 150.0)],
            optimal: point(2, 180.0),
            optimal_architecture: TestArchitecture::default(),
            contacted_pads_per_site: 60,
        }
    }

    #[test]
    fn point_lookup_and_optimal() {
        let s = solution();
        assert_eq!(s.optimal_sites(), 2);
        assert_eq!(s.point(3).unwrap().devices_per_hour, 150.0);
        assert!(s.point(4).is_none());
    }

    #[test]
    fn step2_gain_compares_against_n_max() {
        let s = solution();
        assert!((s.step2_gain() - (180.0 / 150.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn site_cap_picks_best_feasible_point() {
        let s = solution();
        assert_eq!(s.best_under_site_cap(1).unwrap().sites, 1);
        assert_eq!(s.best_under_site_cap(2).unwrap().sites, 2);
        assert_eq!(s.best_under_site_cap(10).unwrap().sites, 2);
        assert!(s.best_under_site_cap(0).is_none());
    }

    #[test]
    fn display_lists_every_point() {
        let s = solution();
        let text = s.to_string();
        assert!(text.contains("n_opt=2"));
        assert_eq!(text.lines().count(), 1 + 3);
    }

    #[test]
    fn objective_is_unique_throughput() {
        let mut p = point(1, 100.0);
        p.unique_devices_per_hour = 90.0;
        assert_eq!(p.objective(), 90.0);
    }
}
