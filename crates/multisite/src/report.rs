//! Plain-text and JSON reporting of optimizer results.
//!
//! The benchmark binaries print their tables through these helpers so that
//! every figure/table generator produces the same, easily diffable layout.

use crate::solution::{MultiSiteSolution, SitePoint};
use crate::sweep::{SweepCurve, SweepPoint};
use std::fmt::Write as _;

/// Formats the full throughput-versus-sites curve of a solution as an
/// aligned text table (the data behind Figure 5).
pub fn format_throughput_curve(solution: &MultiSiteSolution) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SOC {}  (n_max = {}, n_opt = {})",
        solution.soc_name, solution.max_sites, solution.optimal.sites
    );
    let _ = writeln!(
        out,
        "{:>5} {:>8} {:>8} {:>14} {:>12} {:>12}",
        "n", "k/site", "width", "t_m [cycles]", "t_m [s]", "D_th [/h]"
    );
    for point in &solution.curve {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>14} {:>12.4} {:>12.1}{}",
            point.sites,
            point.channels_per_site,
            point.tam_width,
            point.test_time_cycles,
            point.manufacturing_test_time_s,
            point.devices_per_hour,
            if point.sites == solution.optimal.sites {
                "  <= optimal"
            } else {
                ""
            }
        );
    }
    out
}

/// Formats a labelled set of sweep curves as a text table, one row per
/// swept value and one column per curve (the layout of Figures 6 and 7).
pub fn format_sweep_curves(title: &str, parameter_name: &str, curves: &[SweepCurve]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:>14}", parameter_name);
    for curve in curves {
        let _ = write!(out, " {:>14}", curve.label);
    }
    let _ = writeln!(out);
    let rows = curves.first().map(|c| c.points.len()).unwrap_or(0);
    for row in 0..rows {
        let _ = write!(out, "{:>14}", curves[0].points[row].parameter);
        for curve in curves {
            let _ = write!(out, " {:>14.1}", curve.points[row].optimal.objective());
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a single sweep as a two-column text table.
pub fn format_sweep(
    title: &str,
    parameter_name: &str,
    value_name: &str,
    points: &[SweepPoint],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>14} {:>14} {:>8} {:>8}",
        parameter_name, value_name, "n_opt", "n_max"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:>14} {:>14.1} {:>8} {:>8}",
            point.parameter,
            point.optimal.objective(),
            point.optimal.sites,
            point.max_sites
        );
    }
    out
}

/// One-line summary of a solution.
pub fn solution_summary(solution: &MultiSiteSolution) -> String {
    format!(
        "{}: k={} channels/site, n_opt={} of n_max={}, t_m={:.3}s, {:.0} devices/hour",
        solution.soc_name,
        solution.optimal.channels_per_site,
        solution.optimal.sites,
        solution.max_sites,
        solution.optimal.manufacturing_test_time_s,
        solution.optimal.devices_per_hour
    )
}

/// Serialises any serde-serialisable result to pretty JSON (for the
/// figure-generator binaries' `--json` style output).
///
/// # Panics
///
/// Panics if serialisation fails, which cannot happen for the crate's own
/// result types.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serialisable result type")
}

/// Formats one [`SitePoint`] as a compact single line.
pub fn point_summary(point: &SitePoint) -> String {
    format!(
        "n={} k={} t={:.3}s D_th={:.1}/h",
        point.sites,
        point.channels_per_site,
        point.manufacturing_test_time_s,
        point.devices_per_hour
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::problem::OptimizerConfig;
    use crate::sweep::channel_sweep;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::d695;

    fn solution() -> MultiSiteSolution {
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        optimize(&d695(), &config).unwrap()
    }

    #[test]
    fn curve_table_has_one_row_per_site_count() {
        let solution = solution();
        let text = format_throughput_curve(&solution);
        assert_eq!(text.lines().count(), 2 + solution.curve.len());
        assert!(text.contains("<= optimal"));
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let solution = solution();
        let text = solution_summary(&solution);
        assert!(text.contains("d695"));
        assert!(text.contains("devices/hour"));
        assert!(point_summary(&solution.optimal).contains("D_th"));
    }

    #[test]
    fn sweep_table_lists_all_points() {
        let config = OptimizerConfig::new(TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        ));
        let points = channel_sweep(&d695(), &config, &[128, 256]).unwrap();
        let text = format_sweep("Fig 6(a)", "channels", "D_th", &points);
        assert!(text.contains("Fig 6(a)"));
        assert_eq!(text.lines().count(), 2 + points.len());
    }

    #[test]
    fn json_round_trips_site_points() {
        let solution = solution();
        let json = to_json(&solution.optimal);
        let back: crate::solution::SitePoint = serde_json::from_str(&json).unwrap();
        // Integer fields survive exactly; floats may lose the last ULP in
        // serde_json's default float parser, so compare with a tolerance.
        assert_eq!(back.sites, solution.optimal.sites);
        assert_eq!(back.channels_per_site, solution.optimal.channels_per_site);
        assert_eq!(back.test_time_cycles, solution.optimal.test_time_cycles);
        let rel = (back.devices_per_hour - solution.optimal.devices_per_hour).abs()
            / solution.optimal.devices_per_hour;
        assert!(rel < 1e-12);
    }
}
