//! Problem definitions: optimization variants and the optimizer
//! configuration.
//!
//! Problems 1 and 2 of the paper come in several variants (Section 5):
//! with or without stimulus broadcast, with or without abort-on-fail, and
//! with or without re-test of contact failures. [`MultiSiteOptions`] selects
//! the variant; [`OptimizerConfig`] bundles it with the test cell, the yield
//! parameters and the E-RPCT pin environment.

use crate::error::OptimizeError;
use serde::{Deserialize, Serialize};
use soctest_ate::TestCell;
use soctest_wrapper::erpct::ErpctConfig;

/// The optimization variant switches of Section 5.
///
/// Marked `#[non_exhaustive]` so future variants (e.g. per-site abort
/// policies) can be added without breaking downstream crates: construct
/// via [`MultiSiteOptions::baseline`] / [`Default`] and the `with_*`
/// builder methods; the fields stay `pub` for reading and in-place
/// mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub struct MultiSiteOptions {
    /// Whether the ATE broadcasts stimuli to all sites (`k/2` stimulus
    /// channels shared between sites). Without broadcast every site needs
    /// its own `k` channels.
    pub stimulus_broadcast: bool,
    /// Whether the abort-on-fail strategy is applied (the expected test time
    /// follows Equation 4.4 instead of the full test length).
    pub abort_on_fail: bool,
    /// Whether devices failing only the contact test are re-tested once (the
    /// optimizer then maximises the *unique*-device throughput of
    /// Equation 4.6).
    pub retest_contact_failures: bool,
}

impl MultiSiteOptions {
    /// The paper's default scenario: no broadcast, no abort-on-fail, no
    /// re-test.
    pub fn baseline() -> Self {
        MultiSiteOptions::default()
    }

    /// Enables stimulus broadcast.
    pub fn with_broadcast(mut self) -> Self {
        self.stimulus_broadcast = true;
        self
    }

    /// Enables abort-on-fail.
    pub fn with_abort_on_fail(mut self) -> Self {
        self.abort_on_fail = true;
        self
    }

    /// Enables re-test of contact failures.
    pub fn with_retest(mut self) -> Self {
        self.retest_contact_failures = true;
        self
    }
}

/// Complete configuration of one optimizer run.
///
/// Marked `#[non_exhaustive]` so future knobs can be added without
/// breaking downstream crates: construct via [`OptimizerConfig::new`] /
/// [`OptimizerConfig::paper_section7`] and the `with_*` builder methods;
/// the fields stay `pub` for reading and in-place mutation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OptimizerConfig {
    /// The fixed target test cell (ATE + probe station).
    pub test_cell: TestCell,
    /// The optimization variant.
    pub options: MultiSiteOptions,
    /// Per-terminal contact yield `p_c` (1.0 = ideal probing).
    pub contact_yield: f64,
    /// Per-SOC manufacturing yield `p_m` (1.0 = every die is good).
    pub manufacturing_yield: f64,
    /// Pin environment used to size the E-RPCT wrapper and to count the
    /// contacted pads entering the contact-yield model.
    pub erpct: ErpctConfig,
}

impl OptimizerConfig {
    /// Creates a configuration with ideal yields and the baseline options.
    pub fn new(test_cell: TestCell) -> Self {
        OptimizerConfig {
            test_cell,
            options: MultiSiteOptions::baseline(),
            contact_yield: 1.0,
            manufacturing_yield: 1.0,
            erpct: ErpctConfig::default(),
        }
    }

    /// The configuration used for the PNX8550 experiments of Section 7:
    /// the paper's wafer test cell, ideal yields, no broadcast.
    pub fn paper_section7() -> Self {
        OptimizerConfig::new(TestCell::paper_wafer_test_cell())
    }

    /// Replaces the option switches.
    pub fn with_options(mut self, options: MultiSiteOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the contact yield.
    pub fn with_contact_yield(mut self, contact_yield: f64) -> Self {
        self.contact_yield = contact_yield;
        self
    }

    /// Sets the manufacturing yield.
    pub fn with_manufacturing_yield(mut self, manufacturing_yield: f64) -> Self {
        self.manufacturing_yield = manufacturing_yield;
        self
    }

    /// Replaces the target test cell.
    pub fn with_test_cell(mut self, test_cell: TestCell) -> Self {
        self.test_cell = test_cell;
        self
    }

    /// Replaces the E-RPCT pin environment.
    pub fn with_erpct(mut self, erpct: ErpctConfig) -> Self {
        self.erpct = erpct;
        self
    }

    /// Validates the numeric parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when a yield lies outside
    /// `0.0..=1.0`.
    pub fn validate(&self) -> Result<(), OptimizeError> {
        if !(0.0..=1.0).contains(&self.contact_yield) {
            return Err(OptimizeError::InvalidConfig {
                message: format!("contact yield {} out of range 0..=1", self.contact_yield),
            });
        }
        if !(0.0..=1.0).contains(&self.manufacturing_yield) {
            return Err(OptimizeError::InvalidConfig {
                message: format!(
                    "manufacturing yield {} out of range 0..=1",
                    self.manufacturing_yield
                ),
            });
        }
        Ok(())
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::paper_section7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_options_disable_everything() {
        let options = MultiSiteOptions::baseline();
        assert!(!options.stimulus_broadcast);
        assert!(!options.abort_on_fail);
        assert!(!options.retest_contact_failures);
    }

    #[test]
    fn builder_style_switches() {
        let options = MultiSiteOptions::baseline()
            .with_broadcast()
            .with_abort_on_fail()
            .with_retest();
        assert!(options.stimulus_broadcast);
        assert!(options.abort_on_fail);
        assert!(options.retest_contact_failures);
    }

    #[test]
    fn paper_config_uses_paper_cell_and_ideal_yields() {
        let config = OptimizerConfig::paper_section7();
        assert_eq!(config.test_cell.ate.channels, 512);
        assert_eq!(config.contact_yield, 1.0);
        assert_eq!(config.manufacturing_yield, 1.0);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn invalid_yields_fail_validation() {
        let config = OptimizerConfig::paper_section7().with_contact_yield(1.5);
        assert!(config.validate().is_err());
        let config = OptimizerConfig::paper_section7().with_manufacturing_yield(-0.1);
        assert!(config.validate().is_err());
    }

    #[test]
    fn default_is_paper_config() {
        assert_eq!(
            OptimizerConfig::default(),
            OptimizerConfig::paper_section7()
        );
    }
}
