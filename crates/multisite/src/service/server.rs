//! The streaming optimizer server: reads [`ClientFrame`] lines, answers
//! [`ServerFrame`] lines, in admission order.
//!
//! Two threads share the work (see [`Server::serve`]):
//!
//! * the **reader** (the calling thread) parses frames, admits
//!   `Optimize` requests to a bounded queue (shedding with a typed
//!   `Overloaded` frame when full), applies `Cancel` frames immediately
//!   to the in-flight token, and closes the queue on EOF or `Shutdown`;
//! * the **executor** drains the queue one item at a time, serving each
//!   request under [`std::panic::catch_unwind`] isolation so a panicking
//!   request becomes an [`ErrorKind::Internal`] frame while the server
//!   keeps serving, then writes the final `Bye` statistics frame once
//!   the queue is closed and drained.
//!
//! All output — results, typed errors, protocol complaints — flows
//! through one queue in admission order, so responses are deterministic
//! for a given input stream (modulo wall-clock effects the client asked
//! for: deadlines and cancellation races).

use crate::engine::RequestTrace;
use crate::error::OptimizeError;
use crate::service::cache::{CacheOutcome, SolutionCache};
use crate::service::cancel::CancelToken;
use crate::service::faults::{FaultPlan, Stage};
use crate::service::protocol::{
    parse_client_frame, render_server_frame, CacheStats, ClientFrame, ErrorFrame, ErrorKind,
    OptimizeFrame, Provenance, RequestStats, ResultFrame, ServerFrame, ServerStats, SocSpec,
    TraceSummary,
};
use crate::service::registry::SessionRegistry;
use crate::service::resolve_named_soc;
use soctest_soc_model::parser::parse_soc;
use soctest_soc_model::validate::{Severity, ValidationIssue};
use soctest_soc_model::Soc;
use soctest_tam::RowStore;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// File name of the persisted row store inside
/// [`ServerConfig::cache_dir`] (the extension names the on-disk format
/// version).
pub const ROWS_FILE: &str = "rows.v1";

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Maximum number of admitted-but-unserved requests; an `Optimize`
    /// frame arriving with the queue full is shed with
    /// [`ErrorKind::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum number of warm engine sessions resident at once.
    pub max_sessions: usize,
    /// Maximum bytes of charged table memory across all resident
    /// sessions (the LRU evicts past either cap, always sparing the
    /// hottest session).
    pub max_table_bytes: u64,
    /// Maximum entries in the exact-hit solution cache.
    pub max_result_entries: usize,
    /// Maximum bytes charged to the solution cache (canonical keys plus
    /// rendered responses; the LRU evicts past either cap, sparing the
    /// hottest entry).
    pub max_result_bytes: u64,
    /// When set, the module-row store is loaded from
    /// `<cache_dir>/rows.v1` at startup and saved back at shutdown, so
    /// a restarted server rebuilds zero rows. A missing, corrupt, or
    /// version-mismatched file is a clean miss (a stderr warning, an
    /// empty store), never an error.
    pub cache_dir: Option<PathBuf>,
    /// The armed fault plan (empty in production).
    pub faults: FaultPlan,
    /// Trace every request (not only those with the wire `stats` flag),
    /// feeding the in-process [`Server::session_trace`] aggregate —
    /// what `soc-serve --stats-summary` turns into its utilization
    /// report. Off by default: untraced requests skip the epoch
    /// snapshots entirely, keeping the stats-off path zero-cost.
    pub trace_all: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            max_sessions: 8,
            max_table_bytes: 256 * 1024 * 1024,
            max_result_entries: 256,
            max_result_bytes: 64 * 1024 * 1024,
            cache_dir: None,
            faults: FaultPlan::none(),
            trace_all: false,
        }
    }
}

/// One admitted request, waiting for (or being served by) the executor.
#[derive(Debug)]
struct Job {
    frame: OptimizeFrame,
    token: CancelToken,
}

/// One entry of the ordered output-bearing queue: either a request to
/// run, or a frame already decided at admission time (protocol errors,
/// shed load) that still must leave in admission order.
#[derive(Debug)]
enum QueueItem {
    Run(Job),
    Note(ServerFrame),
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<QueueItem>,
    /// Number of queued `Run` items (notes don't count against the
    /// admission capacity).
    pending_runs: usize,
    /// Cleared on EOF / `Shutdown`; the executor drains and exits.
    open: bool,
}

/// The streaming multi-SOC optimizer service. See the
/// [module docs](self) and [`Server::serve`].
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    registry: SessionRegistry,
    /// The exact-hit `(SOC, canonical request) → response` cache with
    /// in-flight coalescing.
    solutions: SolutionCache,
    /// The content-addressed module-row store every session's table
    /// draws from; persisted to [`ServerConfig::cache_dir`] when set.
    row_store: Arc<RowStore>,
    /// Cells merged from the on-disk cache at startup.
    store_cells_loaded: u64,
    queue: Mutex<QueueState>,
    queue_ready: Condvar,
    /// Cancellation tokens of in-flight (queued or running) requests,
    /// keyed by request id; entries are removed when the request's frame
    /// is decided, so `Cancel` for a finished id answers
    /// [`ErrorKind::UnknownRequest`].
    tokens: Mutex<HashMap<String, CancelToken>>,
    /// Merged [`RequestTrace`] of every traced request (wire `stats`
    /// flag or [`ServerConfig::trace_all`]), exposed via
    /// [`Server::session_trace`].
    trace: Mutex<RequestTrace>,
}

/// What [`Server::execute`] hands back to the executor loop: the frame
/// to write, the engine trace when the run was traced, and whether the
/// client asked for wire statistics.
struct Executed {
    frame: ServerFrame,
    trace: Option<RequestTrace>,
    wants_stats: bool,
}

impl Server {
    /// A server with the given knobs, an empty session registry, and a
    /// row store warmed from [`ServerConfig::cache_dir`] when set (a
    /// bad cache file degrades to a cold store, never an error).
    pub fn new(config: ServerConfig) -> Self {
        let row_store = Arc::new(RowStore::new());
        let store_cells_loaded = match &config.cache_dir {
            Some(dir) => load_row_store(&row_store, dir, &config.faults),
            None => 0,
        };
        let registry = SessionRegistry::with_row_store(
            config.max_sessions,
            config.max_table_bytes,
            Arc::clone(&row_store),
        );
        let solutions = SolutionCache::new(config.max_result_entries, config.max_result_bytes);
        Server {
            config,
            registry,
            solutions,
            row_store,
            store_cells_loaded,
            queue: Mutex::new(QueueState {
                open: true,
                ..QueueState::default()
            }),
            queue_ready: Condvar::new(),
            tokens: Mutex::new(HashMap::new()),
            trace: Mutex::new(RequestTrace::default()),
        }
    }

    /// The server's shared module-row store (one per server, shared by
    /// every session its registry builds).
    pub fn row_store(&self) -> &Arc<RowStore> {
        &self.row_store
    }

    /// The merged [`RequestTrace`] of every traced request served so
    /// far — requests that set the wire `stats` flag, plus all requests
    /// when [`ServerConfig::trace_all`] is on. Includes the
    /// run-specific measurements (wall/CPU time, pool occupancy) that
    /// deliberately stay off the wire.
    pub fn session_trace(&self) -> RequestTrace {
        *lock(&self.trace)
    }

    /// Serves one NDJSON session: reads `input` to EOF (or a `Shutdown`
    /// frame), writes one [`ServerFrame`] line per admitted item in
    /// admission order, ends with a `Bye` frame, and returns the same
    /// statistics.
    ///
    /// A read error on `input` is treated as end of stream (the session
    /// still drains and answers `Bye`).
    ///
    /// # Errors
    ///
    /// Only write errors on `output` are fatal.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> std::io::Result<ServerStats> {
        let outcome = thread::scope(|scope| {
            let executor = scope.spawn(|| self.run_executor(output));
            self.run_reader(input);
            executor.join()
        });
        match outcome {
            Ok(result) => result,
            // The executor isolates request panics; anything escaping it
            // is a server bug worth surfacing loudly.
            Err(payload) => resume_unwind(payload),
        }
    }

    /// The reader loop: parses lines, admits/sheds/cancels, closes the
    /// queue when the stream ends.
    fn run_reader<R: BufRead>(&self, input: R) {
        for line in input.lines() {
            let Ok(line) = line else {
                break; // read error: treat as end of stream
            };
            if line.trim().is_empty() {
                continue;
            }
            match parse_client_frame(&line) {
                Ok(ClientFrame::Optimize(frame)) => self.admit(frame),
                Ok(ClientFrame::Cancel { request_id }) => self.cancel(&request_id),
                Ok(ClientFrame::Shutdown) => break,
                Err(message) => {
                    self.enqueue(QueueItem::Note(ServerFrame::Error(ErrorFrame::protocol(
                        message,
                    ))));
                }
            }
        }
        let mut queue = lock(&self.queue);
        queue.open = false;
        drop(queue);
        self.queue_ready.notify_all();
    }

    /// Admits one `Optimize` frame: rejects duplicate in-flight ids,
    /// sheds when the queue is full, otherwise arms the request's token
    /// (deadline measured from here) and queues the job.
    fn admit(&self, frame: OptimizeFrame) {
        self.config.faults.fire(Stage::Admission, &frame.request_id);
        let mut tokens = lock(&self.tokens);
        if tokens.contains_key(&frame.request_id) {
            let note = ServerFrame::Error(ErrorFrame {
                request_id: Some(frame.request_id),
                kind: ErrorKind::Protocol,
                message: "duplicate in-flight request id".to_string(),
            });
            drop(tokens);
            self.enqueue(QueueItem::Note(note));
            return;
        }
        let mut queue = lock(&self.queue);
        if queue.pending_runs >= self.config.queue_capacity {
            let note = ServerFrame::Error(ErrorFrame {
                request_id: Some(frame.request_id),
                kind: ErrorKind::Overloaded,
                message: format!(
                    "admission queue full (capacity {}); request shed",
                    self.config.queue_capacity
                ),
            });
            queue.items.push_back(QueueItem::Note(note));
        } else {
            let token = match frame.deadline_ms {
                Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            tokens.insert(frame.request_id.clone(), token.clone());
            queue.pending_runs += 1;
            queue.items.push_back(QueueItem::Run(Job { frame, token }));
        }
        drop(queue);
        drop(tokens);
        self.queue_ready.notify_all();
    }

    /// Applies a `Cancel` frame immediately: flips the in-flight token
    /// (the request's own `Cancelled` frame is the acknowledgement), or
    /// notes `UnknownRequest` for an id that is not in flight.
    fn cancel(&self, request_id: &str) {
        let tokens = lock(&self.tokens);
        match tokens.get(request_id) {
            Some(token) => token.cancel(),
            None => {
                drop(tokens);
                self.enqueue(QueueItem::Note(ServerFrame::Error(ErrorFrame {
                    request_id: Some(request_id.to_string()),
                    kind: ErrorKind::UnknownRequest,
                    message: "no such request in flight".to_string(),
                })));
            }
        }
    }

    fn enqueue(&self, item: QueueItem) {
        lock(&self.queue).items.push_back(item);
        self.queue_ready.notify_all();
    }

    /// The executor loop: pops queue items in order, serves runs under
    /// panic isolation, writes every frame, and closes with `Bye`.
    fn run_executor<W: Write>(&self, mut output: W) -> std::io::Result<ServerStats> {
        let mut stats = ServerStats::default();
        // The wire aggregate covers only requests that asked for stats,
        // so stats-off sessions answer a byte-identical `Bye`.
        let mut wire_trace = RequestTrace::default();
        let mut stats_requests = 0u64;
        while let Some(item) = self.next_item() {
            let frame = match item {
                QueueItem::Note(frame) => frame,
                QueueItem::Run(job) => {
                    let request_id = job.frame.request_id.clone();
                    let executed = self.execute(job);
                    lock(&self.tokens).remove(&request_id);
                    if let Some(trace) = &executed.trace {
                        let mut session = lock(&self.trace);
                        *session = session.merge(trace);
                    }
                    if executed.wants_stats {
                        stats_requests += 1;
                        if let Some(trace) = &executed.trace {
                            wire_trace = wire_trace.merge(trace);
                        }
                    }
                    executed.frame
                }
            };
            match &frame {
                ServerFrame::Result(_) => stats.served += 1,
                ServerFrame::Error(_) => stats.errors += 1,
                ServerFrame::Bye(_) => {}
            }
            writeln!(output, "{}", render_server_frame(&frame))?;
            output.flush()?;
        }
        let registry = self.registry.stats();
        stats.sessions_created = registry.created;
        stats.session_hits = registry.hits;
        stats.session_misses = registry.misses;
        stats.evictions = registry.evictions;
        // Persist the row store before `Bye` so the saved-row count can
        // ride in the statistics frame.
        let store_rows_saved = match &self.config.cache_dir {
            Some(dir) => save_row_store(&self.row_store, dir, &self.config.faults),
            None => 0,
        };
        let solutions = self.solutions.stats();
        stats.cache = CacheStats {
            result_hits: solutions.hits,
            result_misses: solutions.misses,
            coalesced_waits: solutions.coalesced_waits,
            coalesced_served: solutions.coalesced_served,
            result_bytes: solutions.bytes,
            cells_computed: self.row_store.stats().cells_computed,
            store_cells_loaded: self.store_cells_loaded,
            store_rows_saved,
        };
        stats.trace = (stats_requests > 0).then(|| TraceSummary {
            requests: stats_requests,
            cells_built: wire_trace.cells_built(),
            cells_inherited: wire_trace.table.cells_inherited,
            store_cells_computed: wire_trace.store.cells_computed,
        });
        writeln!(output, "{}", render_server_frame(&ServerFrame::Bye(stats)))?;
        output.flush()?;
        Ok(stats)
    }

    /// Blocks for the next queue item; `None` once the queue is closed
    /// and drained.
    fn next_item(&self) -> Option<QueueItem> {
        let mut queue = lock(&self.queue);
        loop {
            if let Some(item) = queue.items.pop_front() {
                if matches!(item, QueueItem::Run(_)) {
                    queue.pending_runs -= 1;
                }
                return Some(item);
            }
            if !queue.open {
                return None;
            }
            queue = self
                .queue_ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Serves one admitted request, converting every failure mode —
    /// typed optimizer errors, cancellation, deadline expiry, and
    /// outright panics — into its frame, and attaching the request's
    /// [`RequestTrace`] when the request (or [`ServerConfig::trace_all`])
    /// asked for one.
    fn execute(&self, job: Job) -> Executed {
        let Job { frame, token } = job;
        let OptimizeFrame {
            request_id,
            soc,
            request,
            stats: wants_stats,
            ..
        } = frame;
        let traced = wants_stats || self.config.trace_all;
        // Cancelled while queued / deadline expired while queued: answer
        // without touching the engine.
        if let Err(error) = token.check() {
            return Executed {
                frame: ServerFrame::Error(ErrorFrame::from_error(request_id, &error)),
                trace: None,
                wants_stats,
            };
        }
        let faults = &self.config.faults;
        // Written by the compute closure when this request leads the
        // computation; stays `None` on cache hits and coalesced waits.
        let trace_slot = Cell::new(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            faults.fire(Stage::Optimize, &request_id);
            let soc = resolve_soc_spec(&soc)?;
            let handle = self.registry.get_or_build(&soc)?;
            // The coalescing seam: an exact `(SOC, canonical request)`
            // hit answers from the cache, an identical in-flight request
            // blocks on its leader, and only a genuine miss runs the
            // engine.
            let (cache_outcome, response) =
                self.solutions
                    .run_coalesced(handle.key, &request, &token, || {
                        let served = if traced {
                            let (served, trace) =
                                handle.engine.run_with_cancel_traced(&request, &token);
                            trace_slot.set(Some(trace));
                            served
                        } else {
                            handle.engine.run_with_cancel(&request, &token)
                        };
                        // Re-charge the session's (possibly grown) table
                        // before inspecting the result, so even failed
                        // runs account.
                        self.registry.reassess(handle.key);
                        served
                    })?;
            faults.fire(Stage::Respond, &request_id);
            Ok((handle.warm, cache_outcome, response))
        }));
        let trace = trace_slot.take();
        match outcome {
            Ok(Ok((warm, cache_outcome, response))) => {
                let stats = wants_stats.then(|| {
                    let provenance = match cache_outcome {
                        CacheOutcome::Hit => Provenance::Hit,
                        CacheOutcome::Coalesced => Provenance::Coalesced,
                        CacheOutcome::Computed => Provenance::Computed,
                    };
                    // Served-from-cache requests did no table work: the
                    // deltas are zero by construction, keeping the block
                    // race-deterministic across thread counts.
                    let trace = trace.unwrap_or_default();
                    RequestStats {
                        provenance,
                        cells_built: trace.cells_built(),
                        cells_inherited: trace.table.cells_inherited,
                        store_cells_computed: trace.store.cells_computed,
                    }
                });
                Executed {
                    frame: ServerFrame::Result(ResultFrame {
                        request_id,
                        warm,
                        cached: cache_outcome.is_cached(),
                        response,
                        stats,
                    }),
                    trace,
                    wants_stats,
                }
            }
            Ok(Err(error)) => Executed {
                frame: ServerFrame::Error(ErrorFrame::from_error(request_id, &error)),
                trace,
                wants_stats,
            },
            Err(payload) => Executed {
                frame: ServerFrame::Error(ErrorFrame {
                    request_id: Some(request_id),
                    kind: ErrorKind::Internal,
                    message: format!("request panicked: {}", panic_message(payload.as_ref())),
                }),
                trace,
                wants_stats,
            },
        }
    }
}

/// Loads the persisted row store from `dir`, isolating every failure
/// mode — I/O errors, corruption, and injected store-stage panics —
/// into a stderr warning and a cold store. Returns the cells merged.
fn load_row_store(store: &Arc<RowStore>, dir: &Path, faults: &FaultPlan) -> u64 {
    let path = dir.join(ROWS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "load");
        store.load_if_present(&path)
    }));
    match attempt {
        Ok(Ok(cells)) => cells,
        Ok(Err(error)) => {
            eprintln!(
                "warning: ignoring row cache {}: {error}; starting cold",
                path.display()
            );
            0
        }
        Err(payload) => {
            eprintln!(
                "warning: row cache load panicked: {}; starting cold",
                panic_message(payload.as_ref())
            );
            0
        }
    }
}

/// Saves the row store into `dir` (created if absent) with the same
/// isolation as [`load_row_store`]: a failed save costs the cache, not
/// the session. Returns the rows written (0 on failure).
fn save_row_store(store: &Arc<RowStore>, dir: &Path, faults: &FaultPlan) -> u64 {
    let path = dir.join(ROWS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "save");
        std::fs::create_dir_all(dir)?;
        store.save(&path)
    }));
    match attempt {
        Ok(Ok(rows)) => rows,
        Ok(Err(error)) => {
            eprintln!(
                "warning: failed to save row cache {}: {error}",
                path.display()
            );
            0
        }
        Err(payload) => {
            eprintln!(
                "warning: row cache save panicked: {}; cache not written",
                panic_message(payload.as_ref())
            );
            0
        }
    }
}

/// Resolves the SOC a request targets; every failure is a typed
/// [`OptimizeError::InvalidSoc`].
fn resolve_soc_spec(spec: &SocSpec) -> Result<Soc, OptimizeError> {
    match spec {
        SocSpec::Inline(text) => {
            parse_soc(text).map_err(|err| invalid_soc(format!("inline SOC failed to parse: {err}")))
        }
        SocSpec::Named(name) => resolve_named_soc(name).map_err(invalid_soc),
    }
}

fn invalid_soc(message: String) -> OptimizeError {
    OptimizeError::InvalidSoc {
        issues: vec![ValidationIssue {
            module: None,
            severity: Severity::Error,
            message,
        }],
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "<non-string panic payload>"
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OptimizeRequest;
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use std::io::Cursor;

    fn sample_request() -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    fn optimize_line(request_id: &str, soc: SocSpec, deadline_ms: Option<u64>) -> String {
        serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
            request_id: request_id.to_string(),
            soc,
            request: sample_request(),
            deadline_ms,
            stats: false,
        }))
        .unwrap()
    }

    fn optimize_line_stats(request_id: &str, soc: SocSpec) -> String {
        serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
            request_id: request_id.to_string(),
            soc,
            request: sample_request(),
            deadline_ms: None,
            stats: true,
        }))
        .unwrap()
    }

    fn run_session(config: ServerConfig, input: &str) -> (Vec<ServerFrame>, ServerStats) {
        let server = Server::new(config);
        let mut output = Vec::new();
        let stats = server
            .serve(Cursor::new(input.to_string()), &mut output)
            .expect("serve");
        let frames = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
            .collect();
        (frames, stats)
    }

    #[test]
    fn empty_session_answers_only_bye() {
        let (frames, stats) = run_session(ServerConfig::default(), "\n  \n");
        assert_eq!(frames, vec![ServerFrame::Bye(ServerStats::default())]);
        assert_eq!(stats, ServerStats::default());
    }

    #[test]
    fn named_requests_share_a_warm_session() {
        let input = format!(
            "{}\n{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 3);
        match (&frames[0], &frames[1]) {
            (ServerFrame::Result(first), ServerFrame::Result(second)) => {
                assert_eq!(first.request_id, "r1");
                assert!(!first.warm);
                assert!(!first.cached);
                assert_eq!(second.request_id, "r2");
                assert!(second.warm);
                // Identical SOC + request: the second answer comes out
                // of the solution cache, bit-identical.
                assert!(second.cached);
                assert_eq!(first.response, second.response);
            }
            other => panic!("expected two results, got {other:?}"),
        }
        assert_eq!(stats.served, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.session_hits, 1);
        assert_eq!(stats.session_misses, 1);
        assert_eq!(stats.cache.result_hits, 1);
        assert_eq!(stats.cache.result_misses, 1);
        assert!(stats.cache.result_bytes > 0);
        assert!(stats.cache.cells_computed > 0);
    }

    #[test]
    fn stats_requests_carry_provenance_and_a_bye_trace() {
        let input = format!(
            "{}\n{}\n{}\n\"Shutdown\"\n",
            optimize_line_stats("r1", SocSpec::Named("d695".into())),
            optimize_line_stats("r2", SocSpec::Named("d695".into())),
            optimize_line("r3", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 4);
        let results: Vec<&ResultFrame> = frames[..3]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result,
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        // r1 computes: its stats block attributes the table work.
        let first = results[0].stats.expect("r1 opted in");
        assert_eq!(first.provenance, Provenance::Computed);
        assert!(first.cells_built > 0);
        // r2 repeats r1 and is served from the cache without table work.
        let second = results[1].stats.expect("r2 opted in");
        assert_eq!(second.provenance, Provenance::Hit);
        assert_eq!(second.cells_built, 0);
        assert_eq!(second.store_cells_computed, 0);
        // r3 did not opt in: no block, even though it hit the cache too.
        assert!(results[2].stats.is_none());
        assert!(results[2].cached);
        // The Bye trace aggregates exactly the two opted-in requests.
        let trace = stats.trace.expect("two requests opted in");
        assert_eq!(trace.requests, 2);
        assert_eq!(trace.cells_built, first.cells_built);
        // The session-wide in-process trace saw the same single engine run.
        let session = Server::new(ServerConfig::default());
        assert_eq!(session.session_trace().requests, 0);
    }

    #[test]
    fn stats_flag_never_perturbs_the_response_payload() {
        let plain = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let traced = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line_stats("r1", SocSpec::Named("d695".into())),
        );
        let (plain_frames, plain_stats) = run_session(ServerConfig::default(), &plain);
        let (traced_frames, _) = run_session(ServerConfig::default(), &traced);
        match (&plain_frames[0], &traced_frames[0]) {
            (ServerFrame::Result(p), ServerFrame::Result(t)) => {
                assert_eq!(p.response, t.response);
                assert!(p.stats.is_none());
                assert!(t.stats.is_some());
            }
            other => panic!("expected two results, got {other:?}"),
        }
        // A stats-off session answers a Bye without a trace block.
        assert!(plain_stats.trace.is_none());
    }

    #[test]
    fn trace_all_feeds_the_session_trace_without_wire_stats() {
        let config = ServerConfig {
            trace_all: true,
            ..ServerConfig::default()
        };
        let server = Server::new(config);
        let input = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let mut output = Vec::new();
        let stats = server
            .serve(Cursor::new(input), &mut output)
            .expect("serve");
        // Nothing on the wire...
        assert!(stats.trace.is_none());
        let text = String::from_utf8(output).unwrap();
        assert!(!text.contains("\"stats\""));
        assert!(!text.contains("\"trace\""));
        // ...but the in-process aggregate recorded the run.
        let trace = server.session_trace();
        assert_eq!(trace.requests, 1);
        assert!(trace.cells_built() > 0);
    }

    #[test]
    fn malformed_lines_do_not_stop_the_server() {
        let input = format!(
            "{{\n\"Shutdow\"\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 4);
        for frame in &frames[..2] {
            match frame {
                ServerFrame::Error(error) => {
                    assert_eq!(error.request_id, None);
                    assert_eq!(error.kind, ErrorKind::Protocol);
                }
                other => panic!("expected protocol error, got {other:?}"),
            }
        }
        assert!(matches!(&frames[2], ServerFrame::Result(r) if r.request_id == "r1"));
        assert_eq!((stats.served, stats.errors), (1, 2));
    }

    #[test]
    fn unparseable_and_invalid_socs_answer_invalid_soc() {
        let input = format!(
            "{}\n{}\n",
            optimize_line(
                "r1",
                SocSpec::Inline("soc broken\nnot a line\n".into()),
                None
            ),
            optimize_line("r2", SocSpec::Named("no_such_soc".into()), None),
        );
        let (frames, _) = run_session(ServerConfig::default(), &input);
        for (frame, id) in frames[..2].iter().zip(["r1", "r2"]) {
            match frame {
                ServerFrame::Error(error) => {
                    assert_eq!(error.request_id.as_deref(), Some(id));
                    assert_eq!(error.kind, ErrorKind::InvalidSoc);
                }
                other => panic!("expected InvalidSoc for {id}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancel_of_unknown_request_is_reported() {
        let (frames, _) = run_session(
            ServerConfig::default(),
            "{\"Cancel\":{\"request_id\":\"ghost\"}}\n",
        );
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("ghost"));
                assert_eq!(error.kind, ErrorKind::UnknownRequest);
            }
            other => panic!("expected UnknownRequest, got {other:?}"),
        }
    }

    #[test]
    fn panicking_request_is_isolated() {
        let config = ServerConfig {
            faults: FaultPlan::parse("optimize:panic@r1").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(config, &input);
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::Internal);
                assert!(
                    error.message.contains("injected fault"),
                    "{}",
                    error.message
                );
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
        assert_eq!((stats.served, stats.errors), (1, 1));
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // r1 runs slowly (held by the delay fault) while r2 fills the
        // single queue slot, so r3 must be shed. The admission delay on
        // r2 gives the executor time to pop r1 first, making the
        // capacity arithmetic deterministic.
        let config = ServerConfig {
            queue_capacity: 1,
            faults: FaultPlan::parse("optimize:delay:400@r1, admission:delay:100@r2").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
            optimize_line("r3", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
        assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
        match &frames[2] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r3"));
                assert_eq!(error.kind, ErrorKind::Overloaded);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!((stats.served, stats.errors), (2, 1));
    }

    #[test]
    fn duplicate_in_flight_id_is_a_protocol_error() {
        let config = ServerConfig {
            faults: FaultPlan::parse("optimize:delay:400@r1").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let (frames, _) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
        match &frames[1] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::Protocol);
                assert!(error.message.contains("duplicate"));
            }
            other => panic!("expected duplicate-id error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_answers_deadline_exceeded() {
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), Some(0)),
        );
        let (frames, _) = run_session(ServerConfig::default(), &input);
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::DeadlineExceeded);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn session_cap_of_one_forces_rebuilds() {
        let config = ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        };
        // p22810 needs a deeper vector memory than the default sample
        // cell, so all three requests use a roomier one.
        let cell = TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let big_cell_line = |request_id: &str, name: &str| {
            serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
                request_id: request_id.to_string(),
                soc: SocSpec::Named(name.to_string()),
                request: OptimizeRequest::new(OptimizerConfig::new(cell)),
                deadline_ms: None,
                stats: false,
            }))
            .unwrap()
        };
        let input = format!(
            "{}\n{}\n{}\n",
            big_cell_line("r1", "d695"),
            big_cell_line("r2", "p22810"),
            big_cell_line("r3", "d695"),
        );
        let (frames, stats) = run_session(config, &input);
        let warms: Vec<bool> = frames[..3]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result.warm,
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        assert_eq!(warms, [false, false, false]);
        assert_eq!(stats.sessions_created, 3);
        assert!(stats.evictions >= 2);
        // r3 repeats r1 exactly: its session was evicted (cold engine),
        // but the solution cache outlives the session and still hits.
        match &frames[2] {
            ServerFrame::Result(result) => assert!(result.cached),
            other => panic!("expected result, got {other:?}"),
        }
        assert_eq!(stats.cache.result_hits, 1);
        assert_eq!(stats.cache.result_misses, 2);
    }

    /// A unique scratch directory for cache-dir tests, removed by
    /// `CacheDirGuard`.
    struct CacheDirGuard(std::path::PathBuf);

    impl CacheDirGuard {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("soctest-server-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create cache dir");
            CacheDirGuard(dir)
        }
    }

    impl Drop for CacheDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn warm_cache_dir_restart_rebuilds_zero_rows() {
        let guard = CacheDirGuard::new("warm-restart");
        let config = || ServerConfig {
            cache_dir: Some(guard.0.clone()),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        let (cold_frames, cold) = run_session(config(), &input);
        assert!(cold.cache.cells_computed > 0, "cold run computes rows");
        assert!(cold.cache.store_rows_saved > 0, "cold run persists rows");
        assert_eq!(cold.cache.store_cells_loaded, 0);
        // A second server on the same cache dir — a "new process" as far
        // as the store is concerned — rebuilds nothing and answers
        // bit-identically.
        let (warm_frames, warm) = run_session(config(), &input);
        assert_eq!(
            warm.cache.cells_computed, 0,
            "warm restart rebuilds zero rows"
        );
        assert!(warm.cache.store_cells_loaded > 0);
        match (&cold_frames[0], &warm_frames[0]) {
            (ServerFrame::Result(a), ServerFrame::Result(b)) => {
                assert_eq!(a.response, b.response);
                // The solution cache is per-server: the warm restart
                // recomputed from stored rows, it did not replay a frame.
                assert!(!b.cached);
            }
            other => panic!("expected results, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_cache_file_degrades_to_a_cold_start() {
        let guard = CacheDirGuard::new("corrupt");
        std::fs::write(guard.0.join(ROWS_FILE), b"SOCROWS1 garbage \x00\x01").unwrap();
        let config = ServerConfig {
            cache_dir: Some(guard.0.clone()),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        let (frames, stats) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(
            stats.cache.store_cells_loaded, 0,
            "corrupt file is a clean miss"
        );
        assert!(stats.cache.cells_computed > 0);
        // The drain overwrote the garbage with a valid file.
        let (_, recovered) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(recovered.cache.store_cells_loaded > 0);
        assert_eq!(recovered.cache.cells_computed, 0);
    }

    #[test]
    fn store_stage_faults_cost_the_cache_not_the_session() {
        let guard = CacheDirGuard::new("store-fault");
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        // A panicking save still answers the request and a clean Bye.
        let (frames, stats) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                faults: FaultPlan::parse("store:panic@save").unwrap(),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(stats.cache.store_rows_saved, 0);
        assert_eq!(stats.served, 1);
        // A panicking load degrades to a cold store.
        let (frames, stats) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                faults: FaultPlan::parse("store:panic@load").unwrap(),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(stats.cache.store_cells_loaded, 0);
        assert!(stats.cache.cells_computed > 0);
    }
}
