//! The streaming optimizer server: reads [`ClientFrame`] lines, answers
//! [`ServerFrame`] lines, in admission order.
//!
//! Since the transport subsystem landed, the server core is
//! *connection-shaped*: all shared state — the session registry, the
//! solution cache, the row store, and one bounded admission queue —
//! lives on the [`Server`], while everything stream-scoped lives on a
//! `Connection` (per-connection cancellation tokens, an ordered output
//! window, per-connection `Bye` accounting). The stdin/stdout session of
//! [`Server::serve`] is simply the one-connection special case, and its
//! transcripts are byte-identical to the pre-transport server.
//!
//! Work flows through three roles:
//!
//! * a **reader** per connection parses frames, admits `Optimize`
//!   requests to the shared bounded queue (shedding with a typed
//!   `Overloaded` frame when full), applies `Cancel` frames immediately
//!   to the in-flight token, and closes the connection on EOF or
//!   `Shutdown`;
//! * **executors** (`ServerConfig::executors` of them, shared by every
//!   connection) drain the queue in admission order, serving each
//!   request under [`std::panic::catch_unwind`] isolation so a panicking
//!   request becomes an [`ErrorKind::Internal`] frame while the server
//!   keeps serving;
//! * the connection's **output window** re-orders completions: each
//!   admitted item owns a slot, and a frame leaves the wire only once
//!   every earlier slot of the same connection has — so per-connection
//!   responses arrive in admission order at any executor count, and the
//!   final `Bye` statistics frame leaves once the connection is closed
//!   and drained.
//!
//! Responses are deterministic for a given input stream (modulo
//! wall-clock effects the client asked for — deadlines and cancellation
//! races — and cross-request races the client opted into by running
//! more than one executor).

use crate::engine::RequestTrace;
use crate::error::OptimizeError;
use crate::service::cache::{CacheOutcome, SolutionCache};
use crate::service::cancel::CancelToken;
use crate::service::faults::{FaultPlan, Stage};
use crate::service::protocol::{
    parse_client_frame, render_server_frame, CacheStats, ClientFrame, ConnectionStats, ErrorFrame,
    ErrorKind, OptimizeFrame, Provenance, RequestStats, ResultFrame, ServerFrame, ServerStats,
    SocSpec, TraceSummary,
};
use crate::service::registry::SessionRegistry;
use crate::service::resolve_named_soc;
use soctest_soc_model::parser::parse_soc;
use soctest_soc_model::validate::{Severity, ValidationIssue};
use soctest_soc_model::Soc;
use soctest_tam::RowStore;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// File name of the persisted row store inside
/// [`ServerConfig::cache_dir`] (the extension names the on-disk format
/// version).
pub const ROWS_FILE: &str = "rows.v1";

/// File name of the persisted solution cache inside
/// [`ServerConfig::cache_dir`] — every *successful* whole-request and
/// sweep-point response, in the same checksummed envelope format as
/// `rows.v1`. Loaded at startup and saved whenever the row store is, so
/// a restarted server answers repeat requests as cache hits without
/// recomputing a single cell.
pub const SOLUTIONS_FILE: &str = "solutions.v1";

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Maximum number of admitted-but-unclaimed requests across all
    /// connections; an `Optimize` frame arriving with the queue full is
    /// shed with [`ErrorKind::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum number of warm engine sessions resident at once.
    pub max_sessions: usize,
    /// Maximum bytes of charged table memory across all resident
    /// sessions (the LRU evicts past either cap, always sparing the
    /// hottest session).
    pub max_table_bytes: u64,
    /// Maximum entries in the exact-hit solution cache.
    pub max_result_entries: usize,
    /// Maximum bytes charged to the solution cache (canonical keys plus
    /// rendered responses; the LRU evicts past either cap, sparing the
    /// hottest entry).
    pub max_result_bytes: u64,
    /// When set, the module-row store is loaded from
    /// `<cache_dir>/rows.v1` at startup and saved back at shutdown, so
    /// a restarted server rebuilds zero rows. A missing, corrupt, or
    /// version-mismatched file is a clean miss (a stderr warning, an
    /// empty store), never an error.
    pub cache_dir: Option<PathBuf>,
    /// When set, `<cache_dir>/rows.v1` is bounded: a save drops the
    /// coldest rows (by last touch, an order the file itself persists)
    /// until the serialized store fits, so a long-lived cache directory
    /// cannot grow without bound. `None` saves every row.
    pub max_store_bytes: Option<u64>,
    /// The armed fault plan (empty in production).
    pub faults: FaultPlan,
    /// Trace every request (not only those with the wire `stats` flag),
    /// feeding the in-process [`Server::session_trace`] aggregate —
    /// what `soc-serve --stats-summary` turns into its utilization
    /// report. Off by default: untraced requests skip the epoch
    /// snapshots entirely, keeping the stats-off path zero-cost.
    pub trace_all: bool,
    /// Number of executor workers draining the shared admission queue.
    /// With one executor (the default) requests of a session run
    /// strictly sequentially and transcripts are deterministic; more
    /// executors trade that for throughput across connections —
    /// per-connection response *order* is still admission order, but
    /// warm/provenance flags may race between connections touching the
    /// same SOC.
    pub executors: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            max_sessions: 8,
            max_table_bytes: 256 * 1024 * 1024,
            max_result_entries: 256,
            max_result_bytes: 64 * 1024 * 1024,
            cache_dir: None,
            max_store_bytes: None,
            faults: FaultPlan::none(),
            trace_all: false,
            executors: 1,
        }
    }
}

/// One admitted request, waiting for (or being served by) an executor.
#[derive(Debug)]
struct Job {
    frame: OptimizeFrame,
    token: CancelToken,
}

/// One slot of a connection's ordered output window. Every admitted
/// item owns a slot; frames leave the wire strictly in slot order, so
/// per-connection responses keep admission order at any executor count.
#[derive(Debug)]
enum Slot {
    /// Admitted, waiting in the shared run queue for an executor.
    Waiting(Job),
    /// Claimed by an executor, still being served.
    Running,
    /// Decided — either served, or settled at admission time (protocol
    /// errors, shed load). Leaves as soon as every earlier slot has.
    Done(ServerFrame),
}

/// Stream-scoped server state under the connection's state lock.
#[derive(Debug, Default)]
struct ConnState {
    /// The output window; `slots[0]` has sequence number `front_seq`.
    slots: VecDeque<Slot>,
    front_seq: u64,
    /// Cleared on EOF / `Shutdown` / forced drain; once clear and the
    /// window is empty, the `Bye` frame leaves and the connection is
    /// finished.
    open: bool,
    /// `Optimize` frames submitted on this connection (admitted or
    /// shed) — the `requests` count of the `Bye` connection block.
    requests: u64,
    /// The wire aggregate covers only requests that asked for stats,
    /// so stats-off sessions answer a byte-identical `Bye`.
    wire_trace: RequestTrace,
    stats_requests: u64,
}

impl ConnState {
    fn push_done(&mut self, frame: ServerFrame) {
        self.slots.push_back(Slot::Done(frame));
    }
}

/// The connection's output half, under its own lock: frames are written
/// (and counted) only while this lock is held, which is what serialises
/// multi-executor completions into one byte stream. Writes run on
/// whichever thread flushes (usually an executor), so socket sinks are
/// given a write timeout by the transport — a client that stops reading
/// turns into a timed-out write here, which marks the sink dead instead
/// of parking the executor pool behind one connection.
struct ConnWriter {
    sink: Box<dyn Write + Send>,
    served: u64,
    errors: u64,
    internal_errors: u64,
    /// First write error; later frames are counted but not written, so
    /// the session still drains and `wait_finished` can report it.
    error: Option<std::io::Error>,
    /// Set once the `Bye` frame has left (or was skipped on a dead
    /// sink); the connection is complete.
    finished: bool,
    /// Set when the transport's drain gives up on a stuck connection
    /// ([`Server::abandon_connection`]): releases waiters that must not
    /// block on a `Bye` that may never leave.
    abandoned: bool,
    /// The `Bye` statistics, recorded when `finished` is set.
    bye: Option<ServerStats>,
}

impl ConnWriter {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        ConnWriter {
            sink,
            served: 0,
            errors: 0,
            internal_errors: 0,
            error: None,
            finished: false,
            abandoned: false,
            bye: None,
        }
    }

    fn write_frame(&mut self, frame: &ServerFrame) {
        match frame {
            ServerFrame::Result(_) => self.served += 1,
            ServerFrame::Error(error) => {
                self.errors += 1;
                if error.kind == ErrorKind::Internal {
                    self.internal_errors += 1;
                }
            }
            ServerFrame::Bye(_) => {}
        }
        if self.error.is_some() {
            return;
        }
        let attempt =
            writeln!(self.sink, "{}", render_server_frame(frame)).and_then(|()| self.sink.flush());
        if let Err(error) = attempt {
            self.error = Some(error);
        }
    }
}

/// One NDJSON session: the stdin/stdout stream of [`Server::serve`], or
/// one accepted socket of the transport listener. Shared between the
/// connection's reader, every executor, and (in socket mode) the drain
/// logic, hence the `Arc` and the three locks (state, tokens, writer —
/// see the field docs for what each guards).
pub(crate) struct Connection {
    /// Accept-order ordinal in socket mode; `0` for the stdin session.
    id: u64,
    /// Whether the `Bye` frame carries a [`ConnectionStats`] block
    /// (socket mode). The stdin session omits it, staying byte-identical
    /// to the pre-transport server.
    wire_identity: bool,
    /// Whether this connection's `Bye` persists the row store (stdin
    /// mode; the transport saves once at listener drain instead, so N
    /// connections don't write the file N times).
    persist_on_bye: bool,
    state: Mutex<ConnState>,
    /// Cancellation tokens of in-flight (queued or running) requests of
    /// this connection, keyed by request id; entries are removed when
    /// the request's frame is decided, so `Cancel` for a finished id
    /// answers [`ErrorKind::UnknownRequest`]. Per-connection, so one
    /// client cannot cancel another's requests.
    tokens: Mutex<HashMap<String, CancelToken>>,
    writer: Mutex<ConnWriter>,
    /// Signalled (with the writer lock) when `finished` flips.
    finished_cv: Condvar,
}

impl Connection {
    /// The accept-order ordinal (0 for the stdin session).
    pub(crate) fn ordinal(&self) -> u64 {
        self.id
    }
}

impl fmt::Debug for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Connection").field("id", &self.id).finish()
    }
}

/// The shared bounded admission queue: `(connection, slot)` pairs in
/// global admission order, drained by the executor pool.
#[derive(Debug, Default)]
struct RunQueue {
    entries: VecDeque<(Arc<Connection>, u64)>,
    /// Set when the serving scope ends; idle executors exit.
    closed: bool,
}

/// The streaming multi-SOC optimizer service. See the
/// [module docs](self) and [`Server::serve`].
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    registry: SessionRegistry,
    /// The exact-hit `(SOC, canonical request) → response` cache with
    /// in-flight coalescing, shared with the registry so every engine's
    /// sweep points read and feed the same namespace; persisted to
    /// [`ServerConfig::cache_dir`] when set.
    solutions: Arc<SolutionCache>,
    /// The content-addressed module-row store every session's table
    /// draws from; persisted to [`ServerConfig::cache_dir`] when set.
    row_store: Arc<RowStore>,
    /// Cells merged from the on-disk cache at startup.
    store_cells_loaded: u64,
    run_queue: Mutex<RunQueue>,
    run_ready: Condvar,
    /// Merged [`RequestTrace`] of every traced request (wire `stats`
    /// flag or [`ServerConfig::trace_all`]), exposed via
    /// [`Server::session_trace`].
    trace: Mutex<RequestTrace>,
}

/// What [`Server::execute`] hands back to the executor loop: the frame
/// to write, the engine trace when the run was traced, and whether the
/// client asked for wire statistics.
struct Executed {
    frame: ServerFrame,
    trace: Option<RequestTrace>,
    wants_stats: bool,
}

impl Server {
    /// A server with the given knobs, an empty session registry, and a
    /// row store warmed from [`ServerConfig::cache_dir`] when set (a
    /// bad cache file degrades to a cold store, never an error).
    pub fn new(config: ServerConfig) -> Self {
        let row_store = Arc::new(RowStore::new());
        let solutions = Arc::new(SolutionCache::new(
            config.max_result_entries,
            config.max_result_bytes,
        ));
        let store_cells_loaded = match &config.cache_dir {
            Some(dir) => {
                load_solution_cache(&solutions, dir, &config.faults);
                load_row_store(&row_store, dir, &config.faults)
            }
            None => 0,
        };
        let registry = SessionRegistry::with_row_store(
            config.max_sessions,
            config.max_table_bytes,
            Arc::clone(&row_store),
        )
        .with_faults(config.faults.clone())
        .with_solution_cache(Arc::clone(&solutions));
        Server {
            config,
            registry,
            solutions,
            row_store,
            store_cells_loaded,
            run_queue: Mutex::new(RunQueue::default()),
            run_ready: Condvar::new(),
            trace: Mutex::new(RequestTrace::default()),
        }
    }

    /// The server's configuration (as given to [`Server::new`]).
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The server's shared module-row store (one per server, shared by
    /// every session its registry builds).
    pub fn row_store(&self) -> &Arc<RowStore> {
        &self.row_store
    }

    /// The merged [`RequestTrace`] of every traced request served so
    /// far — requests that set the wire `stats` flag, plus all requests
    /// when [`ServerConfig::trace_all`] is on. Includes the
    /// run-specific measurements (wall/CPU time, pool occupancy) that
    /// deliberately stay off the wire.
    pub fn session_trace(&self) -> RequestTrace {
        *lock(&self.trace)
    }

    /// Serves one NDJSON session: reads `input` to EOF (or a `Shutdown`
    /// frame), writes one [`ServerFrame`] line per admitted item in
    /// admission order, ends with a `Bye` frame, and returns the same
    /// statistics. [`ServerConfig::executors`] workers drain the queue
    /// (one by default, which keeps transcripts fully deterministic).
    ///
    /// A read error on `input` is treated as end of stream (the session
    /// still drains and answers `Bye`).
    ///
    /// # Errors
    ///
    /// Only write errors on `output` are fatal.
    pub fn serve<R: BufRead, W: Write + Send + 'static>(
        &self,
        input: R,
        output: W,
    ) -> std::io::Result<ServerStats> {
        let conn = self.open_connection(Box::new(output), 0, false, true);
        thread::scope(|scope| {
            self.reopen_queue();
            let workers: Vec<_> = (0..self.config.executors.max(1))
                .map(|_| scope.spawn(|| self.run_worker()))
                .collect();
            self.run_reader(input, &conn);
            let outcome = self.wait_finished(&conn);
            self.close_queue();
            for worker in workers {
                if let Err(payload) = worker.join() {
                    // Executors isolate request panics; anything escaping
                    // them is a server bug worth surfacing loudly.
                    resume_unwind(payload);
                }
            }
            outcome
        })
    }

    /// Opens one connection over `sink`. The transport passes the accept
    /// ordinal and turns the identity block on; the stdin session of
    /// [`Server::serve`] stays anonymous and persists the row store at
    /// its own `Bye`.
    pub(crate) fn open_connection(
        &self,
        sink: Box<dyn Write + Send>,
        id: u64,
        wire_identity: bool,
        persist_on_bye: bool,
    ) -> Arc<Connection> {
        Arc::new(Connection {
            id,
            wire_identity,
            persist_on_bye,
            state: Mutex::new(ConnState {
                open: true,
                ..ConnState::default()
            }),
            tokens: Mutex::new(HashMap::new()),
            writer: Mutex::new(ConnWriter::new(sink)),
            finished_cv: Condvar::new(),
        })
    }

    /// Reopens the shared run queue for a new serving scope.
    pub(crate) fn reopen_queue(&self) {
        lock(&self.run_queue).closed = false;
    }

    /// Closes the shared run queue; idle executors drain and exit.
    pub(crate) fn close_queue(&self) {
        lock(&self.run_queue).closed = true;
        self.run_ready.notify_all();
    }

    /// The reader loop of one connection: parses lines, admits / sheds /
    /// cancels, closes the connection when the stream ends.
    pub(crate) fn run_reader<R: BufRead>(&self, input: R, conn: &Arc<Connection>) {
        for line in input.lines() {
            let Ok(line) = line else {
                break; // read error: treat as end of stream
            };
            if line.trim().is_empty() {
                continue;
            }
            match parse_client_frame(&line) {
                Ok(ClientFrame::Optimize(frame)) => self.admit(conn, frame),
                Ok(ClientFrame::Cancel { request_id }) => self.cancel(conn, &request_id),
                Ok(ClientFrame::Shutdown) => break,
                Err(message) => {
                    self.note(conn, ServerFrame::Error(ErrorFrame::protocol(message)));
                }
            }
        }
        self.close_connection(conn);
    }

    /// Closes a connection's input side: no more admissions; once the
    /// output window drains, `Bye` leaves. Idempotent (the transport
    /// also calls it when force-draining a connection whose reader
    /// died).
    pub(crate) fn close_connection(&self, conn: &Arc<Connection>) {
        lock(&conn.state).open = false;
        self.flush(conn);
    }

    /// Fails a connection whose reader died outside a request (e.g. an
    /// injected connection-stage panic): notes one typed `Internal`
    /// frame so the client sees *why*, then closes the connection so it
    /// still drains to a well-formed `Bye`.
    pub(crate) fn fail_connection(&self, conn: &Arc<Connection>, message: String) {
        self.note(
            conn,
            ServerFrame::Error(ErrorFrame {
                request_id: None,
                kind: ErrorKind::Internal,
                message,
            }),
        );
        self.close_connection(conn);
    }

    /// Appends an admission-time frame to the output window and flushes
    /// whatever the window allows out.
    fn note(&self, conn: &Arc<Connection>, frame: ServerFrame) {
        lock(&conn.state).push_done(frame);
        self.flush(conn);
    }

    /// Admits one `Optimize` frame: rejects duplicate in-flight ids,
    /// sheds when the shared queue is full, otherwise arms the request's
    /// token (deadline measured from here), claims the next output slot,
    /// and queues the job for the executor pool.
    fn admit(&self, conn: &Arc<Connection>, frame: OptimizeFrame) {
        self.config.faults.fire(Stage::Admission, &frame.request_id);
        let mut tokens = lock(&conn.tokens);
        if tokens.contains_key(&frame.request_id) {
            let note = ServerFrame::Error(ErrorFrame {
                request_id: Some(frame.request_id),
                kind: ErrorKind::Protocol,
                message: "duplicate in-flight request id".to_string(),
            });
            drop(tokens);
            lock(&conn.state).requests += 1;
            self.note(conn, note);
            return;
        }
        // The shed-or-admit decision and both pushes happen under the
        // shared queue lock, so the capacity check is atomic across
        // concurrently admitting connections.
        let mut queue = lock(&self.run_queue);
        let mut state = lock(&conn.state);
        state.requests += 1;
        if queue.entries.len() >= self.config.queue_capacity {
            state.push_done(ServerFrame::Error(ErrorFrame {
                request_id: Some(frame.request_id),
                kind: ErrorKind::Overloaded,
                message: format!(
                    "admission queue full (capacity {}); request shed",
                    self.config.queue_capacity
                ),
            }));
            drop(state);
            drop(queue);
            drop(tokens);
            self.flush(conn);
        } else {
            let token = match frame.deadline_ms {
                Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            tokens.insert(frame.request_id.clone(), token.clone());
            let seq = state.front_seq + state.slots.len() as u64;
            state.slots.push_back(Slot::Waiting(Job { frame, token }));
            queue.entries.push_back((Arc::clone(conn), seq));
            drop(state);
            drop(queue);
            drop(tokens);
            self.run_ready.notify_one();
        }
    }

    /// Applies a `Cancel` frame immediately: flips the in-flight token
    /// (the request's own `Cancelled` frame is the acknowledgement), or
    /// notes `UnknownRequest` for an id that is not in flight on this
    /// connection.
    fn cancel(&self, conn: &Arc<Connection>, request_id: &str) {
        let tokens = lock(&conn.tokens);
        match tokens.get(request_id) {
            Some(token) => token.cancel(),
            None => {
                drop(tokens);
                self.note(
                    conn,
                    ServerFrame::Error(ErrorFrame {
                        request_id: Some(request_id.to_string()),
                        kind: ErrorKind::UnknownRequest,
                        message: "no such request in flight".to_string(),
                    }),
                );
            }
        }
    }

    /// One executor worker: claims `(connection, slot)` entries off the
    /// shared queue in admission order until the queue closes.
    pub(crate) fn run_worker(&self) {
        loop {
            let entry = {
                let mut queue = lock(&self.run_queue);
                loop {
                    if let Some(entry) = queue.entries.pop_front() {
                        break entry;
                    }
                    if queue.closed {
                        return;
                    }
                    queue = self
                        .run_ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let (conn, seq) = entry;
            self.serve_slot(&conn, seq);
        }
    }

    /// Serves one claimed slot: runs the request under panic isolation,
    /// records its trace, marks the slot done, and flushes the
    /// connection's output window.
    fn serve_slot(&self, conn: &Arc<Connection>, seq: u64) {
        let job = claim(conn, seq);
        let request_id = job.frame.request_id.clone();
        let executed = self.execute(job);
        lock(&conn.tokens).remove(&request_id);
        if let Some(trace) = &executed.trace {
            let mut session = lock(&self.trace);
            *session = session.merge(trace);
        }
        {
            let mut state = lock(&conn.state);
            if executed.wants_stats {
                state.stats_requests += 1;
                if let Some(trace) = &executed.trace {
                    state.wire_trace = state.wire_trace.merge(trace);
                }
            }
            let index = usize::try_from(seq - state.front_seq).expect("window fits in memory");
            state.slots[index] = Slot::Done(executed.frame);
        }
        self.flush(conn);
    }

    /// Writes every leading `Done` slot of the connection (in slot
    /// order), then the `Bye` frame once the connection is closed and
    /// its window is empty. Pops happen only under the writer lock, so
    /// concurrent flushers (executors, the reader, the drain) serialise
    /// into one correctly ordered byte stream.
    fn flush(&self, conn: &Connection) {
        let mut writer = lock(&conn.writer);
        if writer.finished {
            return;
        }
        loop {
            let mut state = lock(&conn.state);
            match state.slots.front() {
                Some(Slot::Done(_)) => {
                    let Some(Slot::Done(frame)) = state.slots.pop_front() else {
                        unreachable!("front slot just matched Done");
                    };
                    state.front_seq += 1;
                    drop(state);
                    writer.write_frame(&frame);
                }
                // An earlier admission is still in flight: its frame
                // must leave first.
                Some(_) => return,
                None => {
                    if state.open {
                        return;
                    }
                    drop(state);
                    self.write_bye(conn, &mut writer);
                    conn.finished_cv.notify_all();
                    return;
                }
            }
        }
    }

    /// Builds and writes the connection's final `Bye` frame: the
    /// connection-scoped counters, the shared registry/cache statistics
    /// at this moment, and (stdin mode) the persisted row store.
    fn write_bye(&self, conn: &Connection, writer: &mut ConnWriter) {
        let mut stats = ServerStats {
            served: writer.served,
            errors: writer.errors,
            internal_errors: writer.internal_errors,
            ..ServerStats::default()
        };
        let registry = self.registry.stats();
        stats.sessions_created = registry.created;
        stats.session_hits = registry.hits;
        stats.session_misses = registry.misses;
        stats.evictions = registry.evictions;
        // Persist the row store before `Bye` so the saved-row count can
        // ride in the statistics frame.
        let store_rows_saved = match (&self.config.cache_dir, conn.persist_on_bye) {
            (Some(dir), true) => {
                save_solution_cache(&self.solutions, dir, &self.config.faults);
                save_row_store(
                    &self.row_store,
                    dir,
                    self.config.max_store_bytes,
                    &self.config.faults,
                )
            }
            _ => 0,
        };
        let solutions = self.solutions.stats();
        stats.cache = CacheStats {
            result_hits: solutions.hits,
            result_misses: solutions.misses,
            coalesced_waits: solutions.coalesced_waits,
            coalesced_served: solutions.coalesced_served,
            result_bytes: solutions.bytes,
            cells_computed: self.row_store.stats().cells_computed,
            store_cells_loaded: self.store_cells_loaded,
            store_rows_saved,
        };
        {
            let state = lock(&conn.state);
            stats.trace = (state.stats_requests > 0).then(|| TraceSummary {
                requests: state.stats_requests,
                cells_built: state.wire_trace.cells_built(),
                cells_inherited: state.wire_trace.table.cells_inherited,
                store_cells_computed: state.wire_trace.store.cells_computed,
            });
            stats.connection = conn.wire_identity.then(|| ConnectionStats {
                id: conn.id,
                requests: state.requests,
            });
        }
        writer.write_frame(&ServerFrame::Bye(stats));
        writer.bye = Some(stats);
        writer.finished = true;
    }

    /// Blocks until the connection's `Bye` has left, then reports the
    /// session outcome exactly as [`Server::serve`] does.
    ///
    /// # Errors
    ///
    /// The first write error of the connection's sink, if any.
    pub(crate) fn wait_finished(&self, conn: &Connection) -> std::io::Result<ServerStats> {
        let mut writer = lock(&conn.writer);
        while !writer.finished {
            writer = conn
                .finished_cv
                .wait(writer)
                .unwrap_or_else(PoisonError::into_inner);
        }
        match writer.error.take() {
            Some(error) => Err(error),
            None => Ok(writer.bye.expect("finished connection recorded its Bye")),
        }
    }

    /// Blocks until the connection's `Bye` has left — or until the
    /// drain abandons the connection — without consuming the outcome.
    /// For the transport's per-connection closer thread, which only
    /// needs the *moment* (the drain collects the outcome via
    /// [`Server::wait_finished`] afterwards). The abandonment arm is
    /// what keeps the closer thread joinable when a connection never
    /// finishes: the wait here must never outlive the drain's own
    /// bounded wait.
    pub(crate) fn await_finished(&self, conn: &Connection) {
        let mut writer = lock(&conn.writer);
        while !writer.finished && !writer.abandoned {
            writer = conn
                .finished_cv
                .wait(writer)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Gives up on a stuck connection: releases every
    /// [`Server::await_finished`] waiter even though the `Bye` has not
    /// (and may never have) left. The transport's drain calls this
    /// after its bounded wait expires, right before shutting the socket
    /// down, so the connection's closer thread stays joinable.
    pub(crate) fn abandon_connection(&self, conn: &Connection) {
        lock(&conn.writer).abandoned = true;
        conn.finished_cv.notify_all();
    }

    /// Waits up to `timeout` for the connection to finish; `true` once
    /// its `Bye` has left.
    pub(crate) fn wait_finished_timeout(&self, conn: &Connection, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut writer = lock(&conn.writer);
        while !writer.finished {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = conn
                .finished_cv
                .wait_timeout(writer, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            writer = guard;
        }
        true
    }

    /// Tightens every in-flight token of the connection to at most
    /// `deadline` — the transport's drain bound: requests that outlive
    /// the grace period answer [`ErrorKind::DeadlineExceeded`] instead
    /// of holding the drain open.
    pub(crate) fn impose_drain_deadline(&self, conn: &Connection, deadline: Instant) {
        for token in lock(&conn.tokens).values() {
            token.impose_deadline(deadline);
        }
    }

    /// Persists the row store and solution cache now (transport drain);
    /// `0` without a configured cache dir.
    pub(crate) fn save_store_now(&self) -> u64 {
        match &self.config.cache_dir {
            Some(dir) => {
                save_solution_cache(&self.solutions, dir, &self.config.faults);
                save_row_store(
                    &self.row_store,
                    dir,
                    self.config.max_store_bytes,
                    &self.config.faults,
                )
            }
            None => 0,
        }
    }

    /// Serves one admitted request, converting every failure mode —
    /// typed optimizer errors, cancellation, deadline expiry, and
    /// outright panics — into its frame, and attaching the request's
    /// [`RequestTrace`] when the request (or [`ServerConfig::trace_all`])
    /// asked for one.
    fn execute(&self, job: Job) -> Executed {
        let Job { frame, token } = job;
        let OptimizeFrame {
            request_id,
            soc,
            request,
            stats: wants_stats,
            ..
        } = frame;
        let traced = wants_stats || self.config.trace_all;
        // Cancelled while queued / deadline expired while queued: answer
        // without touching the engine.
        if let Err(error) = token.check() {
            return Executed {
                frame: ServerFrame::Error(ErrorFrame::from_error(request_id, &error)),
                trace: None,
                wants_stats,
            };
        }
        let faults = &self.config.faults;
        // Written by the compute closure when this request leads the
        // computation; stays `None` on cache hits and coalesced waits.
        let trace_slot = Cell::new(None);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            faults.fire(Stage::Optimize, &request_id);
            let soc = resolve_soc_spec(&soc)?;
            let handle = self.registry.get_or_build(&soc)?;
            // The coalescing seam: an exact `(SOC, canonical request)`
            // hit answers from the cache, an identical in-flight request
            // blocks on its leader, and only a genuine miss runs the
            // engine.
            let (cache_outcome, response) =
                self.solutions
                    .run_coalesced(handle.key, &request, &token, || {
                        let served = if traced {
                            let (served, trace) =
                                handle.engine.run_with_cancel_traced(&request, &token);
                            trace_slot.set(Some(trace));
                            served
                        } else {
                            handle.engine.run_with_cancel(&request, &token)
                        };
                        // Re-charge the session's (possibly grown) table
                        // before inspecting the result, so even failed
                        // runs account.
                        self.registry.reassess(handle.key, &handle.canonical);
                        served
                    })?;
            faults.fire(Stage::Respond, &request_id);
            Ok((handle.warm, cache_outcome, response))
        }));
        let trace = trace_slot.take();
        match outcome {
            Ok(Ok((warm, cache_outcome, response))) => {
                let stats = wants_stats.then(|| {
                    let provenance = match cache_outcome {
                        CacheOutcome::Hit => Provenance::Hit,
                        CacheOutcome::Coalesced => Provenance::Coalesced,
                        CacheOutcome::Computed => Provenance::Computed,
                    };
                    // Served-from-cache requests did no table work: the
                    // deltas are zero by construction, keeping the block
                    // race-deterministic across thread counts.
                    let trace = trace.unwrap_or_default();
                    RequestStats {
                        provenance,
                        cells_built: trace.cells_built(),
                        cells_inherited: trace.table.cells_inherited,
                        store_cells_computed: trace.store.cells_computed,
                        points_reused: trace.points_reused,
                    }
                });
                Executed {
                    frame: ServerFrame::Result(ResultFrame {
                        request_id,
                        warm,
                        cached: cache_outcome.is_cached(),
                        response,
                        stats,
                    }),
                    trace,
                    wants_stats,
                }
            }
            Ok(Err(error)) => Executed {
                frame: ServerFrame::Error(ErrorFrame::from_error(request_id, &error)),
                trace,
                wants_stats,
            },
            Err(payload) => Executed {
                frame: ServerFrame::Error(ErrorFrame {
                    request_id: Some(request_id),
                    kind: ErrorKind::Internal,
                    message: format!("request panicked: {}", panic_message(payload.as_ref())),
                }),
                trace,
                wants_stats,
            },
        }
    }
}

/// Takes the job out of a claimed slot, leaving `Running` behind.
fn claim(conn: &Connection, seq: u64) -> Job {
    let mut state = lock(&conn.state);
    let index = usize::try_from(seq - state.front_seq).expect("window fits in memory");
    match std::mem::replace(&mut state.slots[index], Slot::Running) {
        Slot::Waiting(job) => job,
        other => unreachable!("claimed slot {seq} held {other:?}"),
    }
}

/// Loads the persisted row store from `dir`, isolating every failure
/// mode — I/O errors, corruption, and injected store-stage panics —
/// into a stderr warning and a cold store. Returns the cells merged.
fn load_row_store(store: &Arc<RowStore>, dir: &Path, faults: &FaultPlan) -> u64 {
    let path = dir.join(ROWS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "load");
        store.load_if_present(&path)
    }));
    match attempt {
        Ok(Ok(cells)) => cells,
        Ok(Err(error)) => {
            eprintln!(
                "warning: ignoring row cache {}: {error}; starting cold",
                path.display()
            );
            0
        }
        Err(payload) => {
            eprintln!(
                "warning: row cache load panicked: {}; starting cold",
                panic_message(payload.as_ref())
            );
            0
        }
    }
}

/// Saves the row store into `dir` (created if absent) with the same
/// isolation as [`load_row_store`]: a failed save costs the cache, not
/// the session. With a byte bound the coldest-touched rows are dropped
/// until the file fits. Returns the rows written (0 on failure).
fn save_row_store(
    store: &Arc<RowStore>,
    dir: &Path,
    max_bytes: Option<u64>,
    faults: &FaultPlan,
) -> u64 {
    let path = dir.join(ROWS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "save");
        std::fs::create_dir_all(dir)?;
        store.save_capped(&path, max_bytes.unwrap_or(u64::MAX))
    }));
    match attempt {
        Ok(Ok(rows)) => rows,
        Ok(Err(error)) => {
            eprintln!(
                "warning: failed to save row cache {}: {error}",
                path.display()
            );
            0
        }
        Err(payload) => {
            eprintln!(
                "warning: row cache save panicked: {}; cache not written",
                panic_message(payload.as_ref())
            );
            0
        }
    }
}

/// Loads the persisted solution cache from `dir` with the failure
/// isolation of [`load_row_store`]: a missing file is an empty cache, a
/// corrupt one is a stderr warning and a clean miss. Returns the
/// entries merged.
fn load_solution_cache(cache: &Arc<SolutionCache>, dir: &Path, faults: &FaultPlan) -> u64 {
    let path = dir.join(SOLUTIONS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "load");
        cache.load_if_present(&path)
    }));
    match attempt {
        Ok(Ok(entries)) => entries,
        Ok(Err(error)) => {
            eprintln!(
                "warning: ignoring solution cache {}: {error}; starting cold",
                path.display()
            );
            0
        }
        Err(payload) => {
            eprintln!(
                "warning: solution cache load panicked: {}; starting cold",
                panic_message(payload.as_ref())
            );
            0
        }
    }
}

/// Saves the solution cache into `dir` (created if absent) with the
/// same isolation as [`save_row_store`].
fn save_solution_cache(cache: &Arc<SolutionCache>, dir: &Path, faults: &FaultPlan) {
    let path = dir.join(SOLUTIONS_FILE);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        faults.fire(Stage::Store, "save");
        std::fs::create_dir_all(dir)?;
        cache.save(&path)
    }));
    match attempt {
        Ok(Ok(())) => {}
        Ok(Err(error)) => {
            eprintln!(
                "warning: failed to save solution cache {}: {error}",
                path.display()
            );
        }
        Err(payload) => {
            eprintln!(
                "warning: solution cache save panicked: {}; cache not written",
                panic_message(payload.as_ref())
            );
        }
    }
}

/// Resolves the SOC a request targets; every failure is a typed
/// [`OptimizeError::InvalidSoc`].
fn resolve_soc_spec(spec: &SocSpec) -> Result<Soc, OptimizeError> {
    match spec {
        SocSpec::Inline(text) => {
            parse_soc(text).map_err(|err| invalid_soc(format!("inline SOC failed to parse: {err}")))
        }
        SocSpec::Named(name) => resolve_named_soc(name).map_err(invalid_soc),
    }
}

fn invalid_soc(message: String) -> OptimizeError {
    OptimizeError::InvalidSoc {
        issues: vec![ValidationIssue {
            module: None,
            severity: Severity::Error,
            message,
        }],
    }
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "<non-string panic payload>"
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OptimizeRequest, SweepAxis};
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use std::io::Cursor;

    /// A cloneable `'static` sink for [`Server::serve`] in tests — the
    /// connection owns one clone, the test keeps another to read the
    /// transcript back.
    #[derive(Debug, Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> Vec<u8> {
            lock(&self.0).clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_request() -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    fn optimize_line(request_id: &str, soc: SocSpec, deadline_ms: Option<u64>) -> String {
        serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
            request_id: request_id.to_string(),
            soc,
            request: sample_request(),
            deadline_ms,
            stats: false,
        }))
        .unwrap()
    }

    fn optimize_line_stats(request_id: &str, soc: SocSpec) -> String {
        serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
            request_id: request_id.to_string(),
            soc,
            request: sample_request(),
            deadline_ms: None,
            stats: true,
        }))
        .unwrap()
    }

    fn run_session(config: ServerConfig, input: &str) -> (Vec<ServerFrame>, ServerStats) {
        let server = Server::new(config);
        let output = SharedBuf::default();
        let stats = server
            .serve(Cursor::new(input.to_string()), output.clone())
            .expect("serve");
        let frames = String::from_utf8(output.contents())
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str::<ServerFrame>(line).expect("server frame parses"))
            .collect();
        (frames, stats)
    }

    #[test]
    fn empty_session_answers_only_bye() {
        let (frames, stats) = run_session(ServerConfig::default(), "\n  \n");
        assert_eq!(frames, vec![ServerFrame::Bye(ServerStats::default())]);
        assert_eq!(stats, ServerStats::default());
    }

    #[test]
    fn named_requests_share_a_warm_session() {
        let input = format!(
            "{}\n{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 3);
        match (&frames[0], &frames[1]) {
            (ServerFrame::Result(first), ServerFrame::Result(second)) => {
                assert_eq!(first.request_id, "r1");
                assert!(!first.warm);
                assert!(!first.cached);
                assert_eq!(second.request_id, "r2");
                assert!(second.warm);
                // Identical SOC + request: the second answer comes out
                // of the solution cache, bit-identical.
                assert!(second.cached);
                assert_eq!(first.response, second.response);
            }
            other => panic!("expected two results, got {other:?}"),
        }
        assert_eq!(stats.served, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.sessions_created, 1);
        assert_eq!(stats.session_hits, 1);
        assert_eq!(stats.session_misses, 1);
        assert_eq!(stats.cache.result_hits, 1);
        assert_eq!(stats.cache.result_misses, 1);
        assert!(stats.cache.result_bytes > 0);
        assert!(stats.cache.cells_computed > 0);
        // The stdin session carries no connection identity block.
        assert!(stats.connection.is_none());
    }

    #[test]
    fn stats_requests_carry_provenance_and_a_bye_trace() {
        let input = format!(
            "{}\n{}\n{}\n\"Shutdown\"\n",
            optimize_line_stats("r1", SocSpec::Named("d695".into())),
            optimize_line_stats("r2", SocSpec::Named("d695".into())),
            optimize_line("r3", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 4);
        let results: Vec<&ResultFrame> = frames[..3]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result,
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        // r1 computes: its stats block attributes the table work.
        let first = results[0].stats.expect("r1 opted in");
        assert_eq!(first.provenance, Provenance::Computed);
        assert!(first.cells_built > 0);
        // r2 repeats r1 and is served from the cache without table work.
        let second = results[1].stats.expect("r2 opted in");
        assert_eq!(second.provenance, Provenance::Hit);
        assert_eq!(second.cells_built, 0);
        assert_eq!(second.store_cells_computed, 0);
        // r3 did not opt in: no block, even though it hit the cache too.
        assert!(results[2].stats.is_none());
        assert!(results[2].cached);
        // The Bye trace aggregates exactly the two opted-in requests.
        let trace = stats.trace.expect("two requests opted in");
        assert_eq!(trace.requests, 2);
        assert_eq!(trace.cells_built, first.cells_built);
        // The session-wide in-process trace saw the same single engine run.
        let session = Server::new(ServerConfig::default());
        assert_eq!(session.session_trace().requests, 0);
    }

    #[test]
    fn stats_flag_never_perturbs_the_response_payload() {
        let plain = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let traced = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line_stats("r1", SocSpec::Named("d695".into())),
        );
        let (plain_frames, plain_stats) = run_session(ServerConfig::default(), &plain);
        let (traced_frames, _) = run_session(ServerConfig::default(), &traced);
        match (&plain_frames[0], &traced_frames[0]) {
            (ServerFrame::Result(p), ServerFrame::Result(t)) => {
                assert_eq!(p.response, t.response);
                assert!(p.stats.is_none());
                assert!(t.stats.is_some());
            }
            other => panic!("expected two results, got {other:?}"),
        }
        // A stats-off session answers a Bye without a trace block.
        assert!(plain_stats.trace.is_none());
    }

    #[test]
    fn trace_all_feeds_the_session_trace_without_wire_stats() {
        let config = ServerConfig {
            trace_all: true,
            ..ServerConfig::default()
        };
        let server = Server::new(config);
        let input = format!(
            "{}\n\"Shutdown\"\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let output = SharedBuf::default();
        let stats = server
            .serve(Cursor::new(input), output.clone())
            .expect("serve");
        // Nothing on the wire...
        assert!(stats.trace.is_none());
        let text = String::from_utf8(output.contents()).unwrap();
        assert!(!text.contains("\"stats\""));
        assert!(!text.contains("\"trace\""));
        // ...but the in-process aggregate recorded the run.
        let trace = server.session_trace();
        assert_eq!(trace.requests, 1);
        assert!(trace.cells_built() > 0);
    }

    #[test]
    fn malformed_lines_do_not_stop_the_server() {
        let input = format!(
            "{{\n\"Shutdow\"\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(ServerConfig::default(), &input);
        assert_eq!(frames.len(), 4);
        for frame in &frames[..2] {
            match frame {
                ServerFrame::Error(error) => {
                    assert_eq!(error.request_id, None);
                    assert_eq!(error.kind, ErrorKind::Protocol);
                }
                other => panic!("expected protocol error, got {other:?}"),
            }
        }
        assert!(matches!(&frames[2], ServerFrame::Result(r) if r.request_id == "r1"));
        assert_eq!((stats.served, stats.errors), (1, 2));
        // Protocol errors are not internal errors.
        assert_eq!(stats.internal_errors, 0);
    }

    #[test]
    fn unparseable_and_invalid_socs_answer_invalid_soc() {
        let input = format!(
            "{}\n{}\n",
            optimize_line(
                "r1",
                SocSpec::Inline("soc broken\nnot a line\n".into()),
                None
            ),
            optimize_line("r2", SocSpec::Named("no_such_soc".into()), None),
        );
        let (frames, _) = run_session(ServerConfig::default(), &input);
        for (frame, id) in frames[..2].iter().zip(["r1", "r2"]) {
            match frame {
                ServerFrame::Error(error) => {
                    assert_eq!(error.request_id.as_deref(), Some(id));
                    assert_eq!(error.kind, ErrorKind::InvalidSoc);
                }
                other => panic!("expected InvalidSoc for {id}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancel_of_unknown_request_is_reported() {
        let (frames, _) = run_session(
            ServerConfig::default(),
            "{\"Cancel\":{\"request_id\":\"ghost\"}}\n",
        );
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("ghost"));
                assert_eq!(error.kind, ErrorKind::UnknownRequest);
            }
            other => panic!("expected UnknownRequest, got {other:?}"),
        }
    }

    #[test]
    fn panicking_request_is_isolated_and_counted() {
        let config = ServerConfig {
            faults: FaultPlan::parse("optimize:panic@r1").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(config, &input);
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::Internal);
                assert!(
                    error.message.contains("injected fault"),
                    "{}",
                    error.message
                );
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
        assert_eq!((stats.served, stats.errors), (1, 1));
        // The panic shows up in the typed Bye counter, not just as the
        // per-request Error frame...
        assert_eq!(stats.internal_errors, 1);
        match &frames[2] {
            ServerFrame::Bye(bye) => assert_eq!(bye.internal_errors, 1),
            other => panic!("expected Bye, got {other:?}"),
        }
        // ...and non-internal failures (unknown SOC) do not inflate it.
        let (_, clean) = run_session(
            ServerConfig::default(),
            &format!(
                "{}\n",
                optimize_line("r1", SocSpec::Named("no_such_soc".into()), None)
            ),
        );
        assert_eq!(clean.errors, 1);
        assert_eq!(clean.internal_errors, 0);
    }

    #[test]
    fn multi_executor_session_keeps_admission_order() {
        // r1 is held by a 300 ms fault while r2/r3 (distinct sweeps, so
        // no coalescing) finish on other executors; the output window
        // must still release frames in admission order.
        let config = ServerConfig {
            executors: 4,
            faults: FaultPlan::parse("optimize:delay:300@r1").unwrap(),
            ..ServerConfig::default()
        };
        let sweep_line = |request_id: &str, channels: Vec<usize>| {
            serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
                request_id: request_id.to_string(),
                soc: SocSpec::Named("d695".into()),
                request: sample_request().with_sweep(SweepAxis::Channels(channels)),
                deadline_ms: None,
                stats: false,
            }))
            .unwrap()
        };
        let input = format!(
            "{}\n{}\n{}\n\"Shutdown\"\n",
            sweep_line("r1", vec![16, 24]),
            sweep_line("r2", vec![32]),
            sweep_line("r3", vec![48]),
        );
        let (frames, stats) = run_session(config, &input);
        let ids: Vec<&str> = frames[..3]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result.request_id.as_str(),
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        assert_eq!(ids, ["r1", "r2", "r3"]);
        assert_eq!((stats.served, stats.errors), (3, 0));
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // r1 runs slowly (held by the delay fault) while r2 fills the
        // single queue slot, so r3 must be shed. The admission delay on
        // r2 gives the executor time to claim r1 first, making the
        // capacity arithmetic deterministic.
        let config = ServerConfig {
            queue_capacity: 1,
            faults: FaultPlan::parse("optimize:delay:400@r1, admission:delay:100@r2").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r2", SocSpec::Named("d695".into()), None),
            optimize_line("r3", SocSpec::Named("d695".into()), None),
        );
        let (frames, stats) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
        assert!(matches!(&frames[1], ServerFrame::Result(r) if r.request_id == "r2"));
        match &frames[2] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r3"));
                assert_eq!(error.kind, ErrorKind::Overloaded);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!((stats.served, stats.errors), (2, 1));
    }

    #[test]
    fn duplicate_in_flight_id_is_a_protocol_error() {
        let config = ServerConfig {
            faults: FaultPlan::parse("optimize:delay:400@r1").unwrap(),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None),
            optimize_line("r1", SocSpec::Named("d695".into()), None),
        );
        let (frames, _) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "r1"));
        match &frames[1] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::Protocol);
                assert!(error.message.contains("duplicate"));
            }
            other => panic!("expected duplicate-id error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_answers_deadline_exceeded() {
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), Some(0)),
        );
        let (frames, _) = run_session(ServerConfig::default(), &input);
        match &frames[0] {
            ServerFrame::Error(error) => {
                assert_eq!(error.request_id.as_deref(), Some("r1"));
                assert_eq!(error.kind, ErrorKind::DeadlineExceeded);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn session_cap_of_one_forces_rebuilds() {
        let config = ServerConfig {
            max_sessions: 1,
            ..ServerConfig::default()
        };
        // p22810 needs a deeper vector memory than the default sample
        // cell, so all three requests use a roomier one.
        let cell = TestCell::new(
            AteSpec::new(512, 768 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let big_cell_line = |request_id: &str, name: &str| {
            serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
                request_id: request_id.to_string(),
                soc: SocSpec::Named(name.to_string()),
                request: OptimizeRequest::new(OptimizerConfig::new(cell)),
                deadline_ms: None,
                stats: false,
            }))
            .unwrap()
        };
        let input = format!(
            "{}\n{}\n{}\n",
            big_cell_line("r1", "d695"),
            big_cell_line("r2", "p22810"),
            big_cell_line("r3", "d695"),
        );
        let (frames, stats) = run_session(config, &input);
        let warms: Vec<bool> = frames[..3]
            .iter()
            .map(|frame| match frame {
                ServerFrame::Result(result) => result.warm,
                other => panic!("expected result, got {other:?}"),
            })
            .collect();
        assert_eq!(warms, [false, false, false]);
        assert_eq!(stats.sessions_created, 3);
        assert!(stats.evictions >= 2);
        // r3 repeats r1 exactly: its session was evicted (cold engine),
        // but the solution cache outlives the session and still hits.
        match &frames[2] {
            ServerFrame::Result(result) => assert!(result.cached),
            other => panic!("expected result, got {other:?}"),
        }
        assert_eq!(stats.cache.result_hits, 1);
        assert_eq!(stats.cache.result_misses, 2);
    }

    /// A unique scratch directory for cache-dir tests, removed by
    /// `CacheDirGuard`.
    struct CacheDirGuard(std::path::PathBuf);

    impl CacheDirGuard {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("soctest-server-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create cache dir");
            CacheDirGuard(dir)
        }
    }

    impl Drop for CacheDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn warm_cache_dir_restart_rebuilds_zero_rows() {
        let guard = CacheDirGuard::new("warm-restart");
        let config = || ServerConfig {
            cache_dir: Some(guard.0.clone()),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        let (cold_frames, cold) = run_session(config(), &input);
        assert!(cold.cache.cells_computed > 0, "cold run computes rows");
        assert!(cold.cache.store_rows_saved > 0, "cold run persists rows");
        assert_eq!(cold.cache.store_cells_loaded, 0);
        // A second server on the same cache dir — a "new process" as far
        // as the store is concerned — rebuilds nothing and answers
        // bit-identically.
        let (warm_frames, warm) = run_session(config(), &input);
        assert_eq!(
            warm.cache.cells_computed, 0,
            "warm restart rebuilds zero rows"
        );
        assert!(warm.cache.store_cells_loaded > 0);
        match (&cold_frames[0], &warm_frames[0]) {
            (ServerFrame::Result(a), ServerFrame::Result(b)) => {
                assert_eq!(a.response, b.response);
                // The solution cache persists alongside the rows: the
                // restarted server replays the response as a hit rather
                // than recomputing it from stored rows.
                assert!(!a.cached);
                assert!(b.cached, "persisted solutions answer the repeat");
            }
            other => panic!("expected results, got {other:?}"),
        }
        assert!(guard.0.join(SOLUTIONS_FILE).is_file());
    }

    #[test]
    fn corrupt_cache_file_degrades_to_a_cold_start() {
        let guard = CacheDirGuard::new("corrupt");
        std::fs::write(guard.0.join(ROWS_FILE), b"SOCROWS1 garbage \x00\x01").unwrap();
        let config = ServerConfig {
            cache_dir: Some(guard.0.clone()),
            ..ServerConfig::default()
        };
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        let (frames, stats) = run_session(config, &input);
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(
            stats.cache.store_cells_loaded, 0,
            "corrupt file is a clean miss"
        );
        assert!(stats.cache.cells_computed > 0);
        // The drain overwrote the garbage with a valid file.
        let (_, recovered) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(recovered.cache.store_cells_loaded > 0);
        assert_eq!(recovered.cache.cells_computed, 0);
    }

    #[test]
    fn store_stage_faults_cost_the_cache_not_the_session() {
        let guard = CacheDirGuard::new("store-fault");
        let input = format!(
            "{}\n",
            optimize_line("r1", SocSpec::Named("d695".into()), None)
        );
        // A panicking save still answers the request and a clean Bye.
        let (frames, stats) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                faults: FaultPlan::parse("store:panic@save").unwrap(),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(stats.cache.store_rows_saved, 0);
        assert_eq!(stats.served, 1);
        // A panicking load degrades to a cold store.
        let (frames, stats) = run_session(
            ServerConfig {
                cache_dir: Some(guard.0.clone()),
                faults: FaultPlan::parse("store:panic@load").unwrap(),
                ..ServerConfig::default()
            },
            &input,
        );
        assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        assert_eq!(stats.cache.store_cells_loaded, 0);
        assert!(stats.cache.cells_computed > 0);
    }
}
