//! The fault-tolerant streaming optimizer service behind the
//! `soc-serve` binary.
//!
//! Where [`crate::engine::Engine::run_batch`] answers one closed batch
//! for one SOC, this layer keeps a *persistent* server alive across many
//! SOCs and many clients' worth of requests on an NDJSON stdin/stdout
//! stream:
//!
//! * [`protocol`] — the typed wire frames ([`ClientFrame`] in,
//!   [`ServerFrame`] out), strict about unknown fields;
//! * [`registry`] — the content-hash-keyed LRU of warm [`Engine`]
//!   sessions with memory accounting ([`SessionRegistry`]);
//! * [`cancel`] — cooperative [`CancelToken`]s: `Cancel` frames and
//!   per-request deadlines observed at sweep-point *and* table-row
//!   granularity;
//! * [`cache`] — the content-addressed [`SolutionCache`]: exact-hit
//!   `(SOC, canonical request) → response` memoisation with in-flight
//!   coalescing, so identical concurrent requests share one
//!   computation;
//! * [`server`] — the [`Server`] loop itself: bounded admission with
//!   typed `Overloaded` shedding, per-request panic isolation, graceful
//!   drain with a final `Bye` statistics frame;
//! * [`transport`] — the socket front-end: a Unix-domain (or TCP)
//!   listener where every accepted connection runs the same NDJSON
//!   protocol as an independent session over one shared [`Server`] —
//!   one registry, one row store, one solution cache, one bounded
//!   admission queue drained by a shared executor pool;
//! * [`faults`] — the env-gated [`FaultPlan`] harness that injects
//!   panics, delays, and allocation pressure to prove the above.
//!
//! [`Engine`]: crate::engine::Engine

pub mod cache;
pub mod cancel;
pub mod faults;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod transport;

pub use cache::{
    canonical_request, CacheOutcome, SessionPointMemo, SolutionCache, SolutionCacheStats,
};
pub use cancel::CancelToken;
pub use faults::{FaultPlan, Stage, FAULTS_ENV_VAR};
pub use protocol::{
    parse_client_frame, render_server_frame, CacheStats, ClientFrame, ConnectionStats, ErrorFrame,
    ErrorKind, OptimizeFrame, Provenance, RequestStats, ResultFrame, ServerFrame, ServerStats,
    SocSpec, TraceSummary,
};
pub use registry::{RegistryStats, SessionHandle, SessionRegistry};
pub use server::{Server, ServerConfig, ROWS_FILE, SOLUTIONS_FILE};
pub use transport::{BoundListener, ClientStream, ListenAddr, TransportConfig, TransportStats};

use soctest_soc_model::synthetic::pnx8550_like;
use soctest_soc_model::writer::write_soc;
use soctest_soc_model::{benchmarks, Soc};

/// Resolves a [`SocSpec::Named`] SOC: one of the embedded ITC'02
/// benchmarks (`d695`, `p22810`, `p34392`, `p93791`) or the synthetic
/// `pnx8550_like` stand-in.
///
/// # Errors
///
/// Returns a human-readable message listing the known names.
pub fn resolve_named_soc(name: &str) -> Result<Soc, String> {
    if name == "pnx8550_like" {
        return Ok(pnx8550_like());
    }
    benchmarks::by_name(name).map_err(|err| {
        format!("unknown SOC {name:?} ({err}); known: d695, p22810, p34392, p93791, pnx8550_like")
    })
}

/// One row of [`named_soc_catalogue`]: a named SOC the service can
/// resolve, with the identity the session registry would key it by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedSoc {
    /// The wire name ([`SocSpec::Named`]).
    pub name: &'static str,
    /// Number of modules in the design.
    pub modules: usize,
    /// FNV-1a 64-bit hash of the canonical `.soc` rendering — the same
    /// content hash the [`SessionRegistry`] keys warm sessions by, so
    /// two servers printing the same hash serve bit-identical designs.
    pub content_hash: u64,
}

/// The shared named-SOC catalogue behind `--list-socs` in `soc-serve`
/// and `soc-batch`: every name [`resolve_named_soc`] accepts, in the
/// order the error message documents them.
pub fn named_soc_catalogue() -> Vec<NamedSoc> {
    ["d695", "p22810", "p34392", "p93791", "pnx8550_like"]
        .into_iter()
        .map(|name| {
            let soc = resolve_named_soc(name).expect("catalogue names resolve");
            NamedSoc {
                name,
                modules: soc.modules().len(),
                content_hash: registry::fnv1a64(&write_soc(&soc)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_the_resolver_and_is_stable() {
        let catalogue = named_soc_catalogue();
        assert_eq!(catalogue.len(), 5);
        for entry in &catalogue {
            assert!(entry.modules > 0, "{} has modules", entry.name);
            assert_ne!(entry.content_hash, 0, "{} has a hash", entry.name);
            // The hash is the registry's identity: recomputing from a
            // fresh resolve must agree.
            let again = resolve_named_soc(entry.name).unwrap();
            assert_eq!(entry.content_hash, registry::fnv1a64(&write_soc(&again)));
        }
        // Distinct designs, distinct identities.
        let mut hashes: Vec<u64> = catalogue.iter().map(|e| e.content_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), catalogue.len());
    }

    #[test]
    fn every_documented_name_resolves() {
        for name in ["d695", "p22810", "p34392", "p93791", "pnx8550_like"] {
            assert!(resolve_named_soc(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn unknown_names_list_the_catalogue() {
        let err = resolve_named_soc("nope").unwrap_err();
        assert!(err.contains("nope"));
        assert!(err.contains("pnx8550_like"));
    }
}
