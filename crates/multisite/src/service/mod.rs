//! The fault-tolerant streaming optimizer service behind the
//! `soc-serve` binary.
//!
//! Where [`crate::engine::Engine::run_batch`] answers one closed batch
//! for one SOC, this layer keeps a *persistent* server alive across many
//! SOCs and many clients' worth of requests on an NDJSON stdin/stdout
//! stream:
//!
//! * [`protocol`] — the typed wire frames ([`ClientFrame`] in,
//!   [`ServerFrame`] out), strict about unknown fields;
//! * [`registry`] — the content-hash-keyed LRU of warm [`Engine`]
//!   sessions with memory accounting ([`SessionRegistry`]);
//! * [`cancel`] — cooperative [`CancelToken`]s: `Cancel` frames and
//!   per-request deadlines observed at sweep-point *and* table-row
//!   granularity;
//! * [`cache`] — the content-addressed [`SolutionCache`]: exact-hit
//!   `(SOC, canonical request) → response` memoisation with in-flight
//!   coalescing, so identical concurrent requests share one
//!   computation;
//! * [`server`] — the [`Server`] loop itself: bounded admission with
//!   typed `Overloaded` shedding, per-request panic isolation, graceful
//!   drain with a final `Bye` statistics frame;
//! * [`faults`] — the env-gated [`FaultPlan`] harness that injects
//!   panics, delays, and allocation pressure to prove the above.
//!
//! [`Engine`]: crate::engine::Engine

pub mod cache;
pub mod cancel;
pub mod faults;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{canonical_request, CacheOutcome, SolutionCache, SolutionCacheStats};
pub use cancel::CancelToken;
pub use faults::{FaultPlan, Stage, FAULTS_ENV_VAR};
pub use protocol::{
    parse_client_frame, render_server_frame, CacheStats, ClientFrame, ErrorFrame, ErrorKind,
    OptimizeFrame, Provenance, RequestStats, ResultFrame, ServerFrame, ServerStats, SocSpec,
    TraceSummary,
};
pub use registry::{RegistryStats, SessionHandle, SessionRegistry};
pub use server::{Server, ServerConfig, ROWS_FILE};

use soctest_soc_model::synthetic::pnx8550_like;
use soctest_soc_model::{benchmarks, Soc};

/// Resolves a [`SocSpec::Named`] SOC: one of the embedded ITC'02
/// benchmarks (`d695`, `p22810`, `p34392`, `p93791`) or the synthetic
/// `pnx8550_like` stand-in.
///
/// # Errors
///
/// Returns a human-readable message listing the known names.
pub fn resolve_named_soc(name: &str) -> Result<Soc, String> {
    if name == "pnx8550_like" {
        return Ok(pnx8550_like());
    }
    benchmarks::by_name(name).map_err(|err| {
        format!("unknown SOC {name:?} ({err}); known: d695, p22810, p34392, p93791, pnx8550_like")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_documented_name_resolves() {
        for name in ["d695", "p22810", "p34392", "p93791", "pnx8550_like"] {
            assert!(resolve_named_soc(name).is_ok(), "{name} must resolve");
        }
    }

    #[test]
    fn unknown_names_list_the_catalogue() {
        let err = resolve_named_soc("nope").unwrap_err();
        assert!(err.contains("nope"));
        assert!(err.contains("pnx8550_like"));
    }
}
