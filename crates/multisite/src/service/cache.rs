//! The content-addressed solution cache with in-flight coalescing.
//!
//! A [`SolutionCache`] memoises whole `(SOC, OptimizeRequest) →
//! OptimizeResponse` computations for the service. The key is the
//! session registry's SOC content hash plus the *canonical* request —
//! the parsed [`OptimizeRequest`] re-rendered through
//! [`canonical_request`] — so two clients spelling the same request with
//! different JSON field orders or explicit defaults share one entry.
//! Hash collisions are harmless: lookups compare the full canonical key
//! on every hash match, so a collision costs a string compare, never a
//! wrong response.
//!
//! The cache also *coalesces* identical in-flight work: while one
//! request (the leader) is computing a key, later identical requests
//! (waiters) block on the leader's result instead of recomputing it.
//! Waiters poll their own [`CancelToken`] while they wait, so
//! cancelling a waiter never disturbs the leader, and a cancelled or
//! failing leader never poisons its waiters — the in-flight marker is
//! removed by an unwind-safe guard and each waiter simply retries
//! (becoming the next leader at most once).
//!
//! Successful responses are cached, and so — *negatively* — are
//! deterministic failures: an invalid SOC, an invalid configuration, or
//! an infeasible architecture fails identically on every repeat, so the
//! typed error is admitted behind a typed negative flag and replayed
//! without recomputation. Wall-clock-dependent failures (cancellation,
//! deadline expiry, shed load, panics) are never cached. Entries of both
//! polarities are evicted least-recently-used when the cache exceeds
//! its entry-count or byte cap, always sparing the hottest entry
//! (mirroring the session registry's policy).
//!
//! # Point-level reuse
//!
//! Sweep requests decompose into plain per-point optimizations, and each
//! point's *effective* configuration is itself a valid
//! [`SweepAxis::None`](crate::engine::SweepAxis::None) request — so the
//! cache keeps a second, point-level index in the same `(soc hash,
//! canonical request)` namespace. [`SessionPointMemo`] is the engine's
//! view of it (see [`crate::engine::PointMemo`]): every sweep point
//! consults the whole-request index *and* the point index before
//! optimizing, and publishes fresh results to the point index. A
//! `Channels([192, 256])` sweep therefore answers a later plain
//! 256-channel request as a [`CacheOutcome::Hit`], and a cached plain
//! request answers a later sweep's identical point. The indexes stay
//! separate so the wire-visible `result_bytes` gauge keeps meaning
//! "whole-request entries"; the point index carries its own
//! `point_entries` / `point_bytes` gauges and mirrors the same LRU caps.
//!
//! # Persistence (`solutions.v1`)
//!
//! [`SolutionCache::save`] persists every *successful* entry (both
//! indexes, coldest first so a load replays the LRU order) to a
//! checksummed, atomically replaced envelope — the same
//! magic/version/FNV-1a trailer format as the row store's `rows.v1`,
//! via [`seal_envelope`] / [`open_envelope`]. Negative entries are not
//! persisted: typed errors are cheap to recompute and have no canonical
//! wire rendering. [`SolutionCache::load`] verifies the envelope, every
//! length field, every entry's canonical-text hash and that every
//! response parses, *before* touching the resident cache — a corrupt
//! file is a typed [`StoreError`] and a clean miss, never a panic and
//! never a wrong response.

use crate::engine::{OptimizeRequest, OptimizeResponse, PointMemo};
use crate::error::OptimizeError;
use crate::service::cancel::CancelToken;
use crate::service::registry::fnv1a64;
use soctest_tam::{open_envelope, push_u64, seal_envelope, write_atomic, Cursor, StoreError};
use std::io;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// File magic (7 bytes) of the persisted solution cache, followed by the
/// one-byte format version — `solutions.v1` in the cache directory.
const SOLUTIONS_MAGIC: &[u8; 7] = b"SOCSOLS";
/// Current `solutions.v1` format version byte.
const SOLUTIONS_VERSION: u8 = b'1';

/// How long a waiter sleeps between checks of its own [`CancelToken`]
/// while blocked on a leader. Purely a cancellation-latency bound: the
/// leader's guard notifies the condvar the moment the result lands.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Renders a parsed request back to its canonical JSON string — the
/// content-addressed identity used by [`SolutionCache`]. Parsing
/// already normalised field order and filled defaulted fields, so any
/// two spellings of the same request canonicalise identically.
pub fn canonical_request(request: &OptimizeRequest) -> String {
    serde_json::to_string(request).expect("requests serialise")
}

/// How a [`SolutionCache::run_coalesced`] call obtained its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident entry without waiting.
    Hit,
    /// Blocked on an identical in-flight computation, then served its
    /// result (or a successor leader's).
    Coalesced,
    /// This call was the leader: it ran the computation.
    Computed,
}

impl CacheOutcome {
    /// Whether the response came out of the cache rather than a fresh
    /// computation by this caller.
    pub fn is_cached(self) -> bool {
        !matches!(self, CacheOutcome::Computed)
    }
}

/// Cache counters, exposed for the service's `Bye` statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolutionCacheStats {
    /// Requests served a success from an already-resident entry without
    /// waiting. Waiter serves are counted in
    /// [`SolutionCacheStats::coalesced_served`], never folded in here.
    pub hits: u64,
    /// Requests that led a computation (successful or not).
    pub misses: u64,
    /// Requests that blocked at least once on an identical in-flight
    /// computation.
    pub coalesced_waits: u64,
    /// Requests that, after blocking, were served a leader's successful
    /// result instead of recomputing.
    pub coalesced_served: u64,
    /// Successful responses admitted to the cache.
    pub insertions: u64,
    /// Deterministic failures admitted as negative entries.
    pub negative_insertions: u64,
    /// Requests answered a replayed failure from a negative entry
    /// (waited or not).
    pub negative_hits: u64,
    /// Entries evicted by the LRU / byte cap (both indexes).
    pub evictions: u64,
    /// Currently resident whole-request entries.
    pub entries: u64,
    /// Currently resident whole-request bytes (canonical keys + rendered
    /// responses). This is the wire-visible `result_bytes` gauge; the
    /// point index is accounted separately in
    /// [`SolutionCacheStats::point_bytes`].
    pub bytes: u64,
    /// Point-level lookups (a sweep point's memo probe, or a plain
    /// request finding a sweep's point) served a success from either
    /// index.
    pub point_hits: u64,
    /// Sweep-point responses admitted to the point index.
    pub point_insertions: u64,
    /// Currently resident point-index entries.
    pub point_entries: u64,
    /// Currently resident point-index bytes.
    pub point_bytes: u64,
}

/// What a resident entry replays: a successful response, or — the typed
/// negative flag — a deterministic failure cached so identical repeats
/// skip the doomed computation.
#[derive(Debug, Clone)]
enum CachedResponse {
    /// A successful [`OptimizeResponse`].
    Success(OptimizeResponse),
    /// A deterministic failure (see [`negative_cacheable`]).
    Negative(OptimizeError),
}

/// Whether a failure is deterministic — a pure function of the `(SOC,
/// request)` key, safe to replay from a negative cache entry. Anything
/// wall-clock- or load-dependent (cancellation, deadlines, shed load,
/// internal panics) must recompute.
fn negative_cacheable(error: &OptimizeError) -> bool {
    matches!(
        error,
        OptimizeError::Architecture(_)
            | OptimizeError::InvalidConfig { .. }
            | OptimizeError::InvalidSoc { .. }
    )
}

/// One resident solution.
#[derive(Debug)]
struct CacheEntry {
    /// FNV-1a of `canonical` (the lookup fast path).
    hash: u64,
    /// The owning session's SOC content hash.
    soc: u64,
    /// The canonical request text (the collision-proof identity).
    canonical: String,
    /// The cached response (successful or negative).
    response: CachedResponse,
    /// Charged size: canonical key plus rendered response.
    bytes: u64,
}

impl CacheEntry {
    fn matches(&self, soc: u64, hash: u64, canonical: &str) -> bool {
        self.soc == soc && self.hash == hash && self.canonical == canonical
    }
}

/// Looks `(soc, hash, canonical)` up in one LRU index; a match is
/// touched hottest and its response cloned out.
fn probe_index(
    list: &mut Vec<CacheEntry>,
    soc: u64,
    hash: u64,
    canonical: &str,
) -> Option<CachedResponse> {
    let position = list
        .iter()
        .position(|entry| entry.matches(soc, hash, canonical))?;
    let entry = list.remove(position);
    let served = entry.response.clone();
    list.push(entry);
    Some(served)
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Whole-request entries in LRU order: index 0 is the coldest.
    entries: Vec<CacheEntry>,
    /// Sweep-point entries in LRU order (successes only) — same key
    /// namespace as `entries`, kept apart so whole-request accounting
    /// (the wire `result_bytes`) is undisturbed by sweep traffic.
    points: Vec<CacheEntry>,
    /// Keys currently being computed by a leader.
    inflight: Vec<(u64, u64, String)>,
    /// Running byte total of `entries` — kept exact on every insert and
    /// eviction so neither the eviction loop nor `stats()` re-sums the
    /// whole list.
    resident_bytes: u64,
    /// Running byte total of `points`.
    point_bytes: u64,
    stats: SolutionCacheStats,
}

/// An exact-hit LRU of [`OptimizeResponse`]s keyed by `(SOC content
/// hash, canonical request)`, with in-flight coalescing. See the
/// [module docs](self).
#[derive(Debug)]
pub struct SolutionCache {
    inner: Mutex<CacheInner>,
    /// Signalled whenever a leader finishes (result landed or leader
    /// gave up) so waiters re-check.
    ready: Condvar,
    max_entries: usize,
    max_bytes: u64,
}

impl SolutionCache {
    /// An empty cache holding at most `max_entries` responses and at
    /// most `max_bytes` of charged memory. The entry cap is clamped to
    /// at least one; the hottest entry is never evicted, so a single
    /// oversized response may exist alone.
    pub fn new(max_entries: usize, max_bytes: u64) -> Self {
        SolutionCache {
            inner: Mutex::new(CacheInner::default()),
            ready: Condvar::new(),
            max_entries: max_entries.max(1),
            max_bytes,
        }
    }

    /// Serves `request` for the session keyed `soc`: from the cache if
    /// resident, by waiting on an identical in-flight computation if
    /// one is running, or by calling `compute` as the leader otherwise.
    /// A successful leader's response is cached before waiters wake.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns when this call leads and the
    /// computation fails (deterministic failures are cached negatively
    /// and replayed to identical repeats; transient ones leave the
    /// cache untouched), a replayed failure when the key has a resident
    /// negative entry, or [`OptimizeError::Cancelled`] /
    /// [`OptimizeError::DeadlineExceeded`] when this call's own `token`
    /// fires while waiting on a leader. A leader's *transient* failure
    /// is not propagated to its waiters — they retry, and the first
    /// retry becomes the next leader.
    pub fn run_coalesced<F>(
        &self,
        soc: u64,
        request: &OptimizeRequest,
        token: &CancelToken,
        compute: F,
    ) -> Result<(CacheOutcome, OptimizeResponse), OptimizeError>
    where
        F: FnOnce() -> Result<OptimizeResponse, OptimizeError>,
    {
        let canonical = canonical_request(request);
        let hash = fnv1a64(&canonical);
        let mut compute = Some(compute);
        let mut waited = false;
        let mut inner = self.lock();
        loop {
            // Touch: a match moves to the hot end.
            if let Some(served) = probe_index(&mut inner.entries, soc, hash, &canonical) {
                return match served {
                    CachedResponse::Success(response) => {
                        // The leader-computed vs waiter-coalesced split:
                        // a direct hit and a waiter waking to find its
                        // leader's entry are counted apart.
                        let outcome = if waited {
                            inner.stats.coalesced_served += 1;
                            CacheOutcome::Coalesced
                        } else {
                            inner.stats.hits += 1;
                            CacheOutcome::Hit
                        };
                        Ok((outcome, response))
                    }
                    CachedResponse::Negative(error) => {
                        inner.stats.negative_hits += 1;
                        Err(error)
                    }
                };
            }

            // No whole-request entry — but a sweep may have computed this
            // exact configuration as one of its points. Point entries
            // hold only successes, so a match is a full, free answer.
            if let Some(CachedResponse::Success(response)) =
                probe_index(&mut inner.points, soc, hash, &canonical)
            {
                inner.stats.point_hits += 1;
                let outcome = if waited {
                    inner.stats.coalesced_served += 1;
                    CacheOutcome::Coalesced
                } else {
                    inner.stats.hits += 1;
                    CacheOutcome::Hit
                };
                return Ok((outcome, response));
            }

            let in_flight = inner
                .inflight
                .iter()
                .any(|(s, h, c)| *s == soc && *h == hash && *c == canonical);
            if in_flight {
                if !waited {
                    waited = true;
                    inner.stats.coalesced_waits += 1;
                }
                // Sleep until the leader's guard notifies (or the
                // slice elapses), then poll our own token: a cancelled
                // waiter gives up without touching the leader.
                inner = self
                    .ready
                    .wait_timeout(inner, WAIT_SLICE)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
                token.check()?;
                continue;
            }

            // No entry, no leader: lead. `compute` is consumed here, and
            // the leader path always returns, so a caller leads at most
            // once — a waiter whose leader failed retries into this arm.
            inner.stats.misses += 1;
            inner.inflight.push((soc, hash, canonical.clone()));
            drop(inner);
            let guard = FlightGuard {
                cache: self,
                soc,
                hash,
                canonical: &canonical,
            };
            let result = (compute.take().expect("leader leads at most once"))();
            match &result {
                Ok(response) => self.insert(
                    soc,
                    hash,
                    &canonical,
                    CachedResponse::Success(response.clone()),
                ),
                Err(error) if negative_cacheable(error) => self.insert(
                    soc,
                    hash,
                    &canonical,
                    CachedResponse::Negative(error.clone()),
                ),
                Err(_) => {}
            }
            // Remove the in-flight marker and wake waiters — also runs
            // on unwind if `compute` panicked, so waiters never hang.
            drop(guard);
            return result.map(|response| (CacheOutcome::Computed, response));
        }
    }

    /// Admits a successful response or a deterministic failure, touching
    /// it hottest and applying the caps.
    fn insert(&self, soc: u64, hash: u64, canonical: &str, response: CachedResponse) {
        let rendered = match &response {
            CachedResponse::Success(response) => {
                serde_json::to_string(response).expect("responses serialise")
            }
            CachedResponse::Negative(error) => error.to_string(),
        };
        let negative = matches!(response, CachedResponse::Negative(_));
        let bytes = (canonical.len() + rendered.len()) as u64;
        let mut inner = self.lock();
        // A resident duplicate is impossible while our in-flight marker
        // blocks other leaders, but stay defensive: replace, don't stack.
        if let Some(position) = inner
            .entries
            .iter()
            .position(|entry| entry.matches(soc, hash, canonical))
        {
            let replaced = inner.entries.remove(position);
            inner.resident_bytes -= replaced.bytes;
        }
        inner.entries.push(CacheEntry {
            hash,
            soc,
            canonical: canonical.to_string(),
            response,
            bytes,
        });
        inner.resident_bytes += bytes;
        if negative {
            inner.stats.negative_insertions += 1;
        } else {
            inner.stats.insertions += 1;
        }
        self.evict_entries_over_caps(&mut inner);
    }

    /// Evicts whole-request entries coldest-first while over either cap,
    /// always sparing the hottest. The running byte counter makes each
    /// iteration O(1) instead of re-summing the resident list.
    fn evict_entries_over_caps(&self, inner: &mut CacheInner) {
        while (inner.entries.len() > self.max_entries || inner.resident_bytes > self.max_bytes)
            && inner.entries.len() > 1
        {
            let evicted = inner.entries.remove(0);
            inner.resident_bytes -= evicted.bytes;
            inner.stats.evictions += 1;
        }
        debug_assert_eq!(
            inner.resident_bytes,
            inner.entries.iter().map(|entry| entry.bytes).sum::<u64>()
        );
    }

    /// The point-index twin of [`SolutionCache::evict_entries_over_caps`],
    /// under the same caps.
    fn evict_points_over_caps(&self, inner: &mut CacheInner) {
        while (inner.points.len() > self.max_entries || inner.point_bytes > self.max_bytes)
            && inner.points.len() > 1
        {
            let evicted = inner.points.remove(0);
            inner.point_bytes -= evicted.bytes;
            inner.stats.evictions += 1;
        }
        debug_assert_eq!(
            inner.point_bytes,
            inner.points.iter().map(|entry| entry.bytes).sum::<u64>()
        );
    }

    /// The memoised success for `request` under session `soc`, from
    /// either index — the read half of [`SessionPointMemo`]. Touches the
    /// served entry hottest and counts a `point_hit`; deliberately off
    /// the wire-visible hit/miss counters, because a memo probe is part
    /// of serving one sweep request, not a request of its own. A
    /// resident *negative* entry answers `None`: the point recomputes
    /// and fails exactly as the cached request did.
    fn get_point(&self, soc: u64, request: &OptimizeRequest) -> Option<OptimizeResponse> {
        let canonical = canonical_request(request);
        let hash = fnv1a64(&canonical);
        let mut guard = self.lock();
        let inner = &mut *guard;
        let served = probe_index(&mut inner.entries, soc, hash, &canonical)
            .or_else(|| probe_index(&mut inner.points, soc, hash, &canonical))?;
        match served {
            CachedResponse::Success(response) => {
                inner.stats.point_hits += 1;
                Some(response)
            }
            CachedResponse::Negative(_) => None,
        }
    }

    /// Publishes a sweep point's fresh success to the point index — the
    /// write half of [`SessionPointMemo`]. First publisher wins: a key
    /// already resident in either index is left untouched (racing points
    /// of one sweep carry bit-identical responses anyway).
    fn put_point(&self, soc: u64, request: &OptimizeRequest, response: &OptimizeResponse) {
        let canonical = canonical_request(request);
        let hash = fnv1a64(&canonical);
        let rendered = serde_json::to_string(response).expect("responses serialise");
        let bytes = (canonical.len() + rendered.len()) as u64;
        let mut inner = self.lock();
        let resident = |list: &[CacheEntry]| {
            list.iter()
                .any(|entry| entry.matches(soc, hash, &canonical))
        };
        if resident(&inner.entries) || resident(&inner.points) {
            return;
        }
        inner.points.push(CacheEntry {
            hash,
            soc,
            canonical,
            response: CachedResponse::Success(response.clone()),
            bytes,
        });
        inner.point_bytes += bytes;
        inner.stats.point_insertions += 1;
        self.evict_points_over_caps(&mut inner);
    }

    /// Current counters (entry/byte gauges read from the running
    /// accounting, which eviction keeps exact).
    pub fn stats(&self) -> SolutionCacheStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.entries = inner.entries.len() as u64;
        stats.bytes = inner.resident_bytes;
        stats.point_entries = inner.points.len() as u64;
        stats.point_bytes = inner.point_bytes;
        stats
    }

    /// Persists every successful entry (both indexes, coldest first so
    /// [`SolutionCache::load`] replays the LRU order) as a `solutions.v1`
    /// envelope at `path`, atomically replaced. Negative entries are
    /// skipped — typed errors are cheap to recompute.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let inner = self.lock();
        let bytes = seal_envelope(SOLUTIONS_MAGIC, SOLUTIONS_VERSION, |out| {
            for list in [&inner.entries, &inner.points] {
                let successes: Vec<(&CacheEntry, String)> = list
                    .iter()
                    .filter_map(|entry| match &entry.response {
                        CachedResponse::Success(response) => Some((
                            entry,
                            serde_json::to_string(response).expect("responses serialise"),
                        )),
                        CachedResponse::Negative(_) => None,
                    })
                    .collect();
                push_u64(out, successes.len() as u64);
                for (entry, rendered) in successes {
                    push_u64(out, entry.soc);
                    push_u64(out, entry.hash);
                    push_u64(out, entry.canonical.len() as u64);
                    out.extend_from_slice(entry.canonical.as_bytes());
                    push_u64(out, rendered.len() as u64);
                    out.extend_from_slice(rendered.as_bytes());
                }
            }
        });
        drop(inner);
        write_atomic(path, &bytes)
    }

    /// Merges every entry of the `solutions.v1` file at `path` into the
    /// cache (resident entries win ties) and returns the number merged.
    /// The whole file is verified first — envelope, lengths, each
    /// entry's canonical-text hash, each response parsing — so a corrupt
    /// file leaves the cache exactly as it was: a typed clean miss.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on unreadable, truncated, corrupted or
    /// version-mismatched files.
    pub fn load(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = std::fs::read(path)?;
        let sections = parse_solutions_file(&bytes)?;
        let mut inner = self.lock();
        let mut merged = 0u64;
        for (into_points, parsed) in [(false, &sections[0]), (true, &sections[1])] {
            for (soc, hash, canonical, response, charge) in parsed {
                let resident = inner
                    .entries
                    .iter()
                    .chain(inner.points.iter())
                    .any(|entry| entry.matches(*soc, *hash, canonical));
                if resident {
                    continue;
                }
                let entry = CacheEntry {
                    hash: *hash,
                    soc: *soc,
                    canonical: canonical.clone(),
                    response: CachedResponse::Success(response.clone()),
                    bytes: *charge,
                };
                if into_points {
                    inner.points.push(entry);
                    inner.point_bytes += charge;
                } else {
                    inner.entries.push(entry);
                    inner.resident_bytes += charge;
                }
                merged += 1;
            }
        }
        self.evict_entries_over_caps(&mut inner);
        self.evict_points_over_caps(&mut inner);
        Ok(merged)
    }

    /// [`SolutionCache::load`], treating a missing file as an empty
    /// cache. Returns `Ok(0)` when `path` does not exist.
    ///
    /// # Errors
    ///
    /// As [`SolutionCache::load`] for files that exist but fail
    /// verification.
    pub fn load_if_present(&self, path: &Path) -> Result<u64, StoreError> {
        match self.load(path) {
            Err(StoreError::Io(err)) if err.kind() == io::ErrorKind::NotFound => Ok(0),
            other => other,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // Leaders mutate the cache only at guarded points (marker push,
    // insert, marker removal), never mid-structure — recover from
    // poisoning like the registry does.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Removes the leader's in-flight marker and wakes every waiter — on
/// the normal path *and* when the computation unwinds (an injected
/// fault, an engine bug), so a dying leader never strands its waiters.
struct FlightGuard<'a> {
    cache: &'a SolutionCache,
    soc: u64,
    hash: u64,
    canonical: &'a str,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.lock();
        inner
            .inflight
            .retain(|(s, h, c)| !(*s == self.soc && *h == self.hash && c == self.canonical));
        drop(inner);
        self.cache.ready.notify_all();
    }
}

/// One verified `solutions.v1` entry: `(soc, hash, canonical, response,
/// charged bytes)`.
type ParsedSolution = (u64, u64, String, OptimizeResponse, u64);

/// Verifies and parses a whole `solutions.v1` file into its two
/// sections (whole-request entries, then points), each coldest first.
/// Pure — no cache state is touched, so callers reject corrupt files
/// with nothing to roll back. Every length field is validated against
/// the remaining byte count before any allocation, every canonical key
/// must re-hash to its stored hash, and every response must parse back
/// through the wire serde; anything else is [`StoreError::Corrupt`].
fn parse_solutions_file(bytes: &[u8]) -> Result<[Vec<ParsedSolution>; 2], StoreError> {
    let payload = open_envelope(SOLUTIONS_MAGIC, SOLUTIONS_VERSION, bytes)?;
    let mut cursor = Cursor::new(payload);
    let mut sections: [Vec<ParsedSolution>; 2] = [Vec::new(), Vec::new()];
    for section in &mut sections {
        let count = cursor.u64()?;
        let count = usize::try_from(count)
            .ok()
            // Each entry carries at least four u64 length/key fields.
            .filter(|&count| {
                count
                    .checked_mul(32)
                    .is_some_and(|min| min <= cursor.remaining())
            })
            .ok_or_else(|| StoreError::Corrupt("entry count exceeds file".to_string()))?;
        section.reserve(count);
        for _ in 0..count {
            let soc = cursor.u64()?;
            let hash = cursor.u64()?;
            let stored_canonical_len = cursor.u64()?;
            let canonical_len = checked_len(&cursor, stored_canonical_len, "canonical length")?;
            let canonical = std::str::from_utf8(cursor.take(canonical_len)?)
                .map_err(|_| StoreError::Corrupt("canonical text is not UTF-8".to_string()))?
                .to_string();
            if fnv1a64(&canonical) != hash {
                return Err(StoreError::Corrupt(
                    "entry hash does not match its canonical text".to_string(),
                ));
            }
            let stored_rendered_len = cursor.u64()?;
            let rendered_len = checked_len(&cursor, stored_rendered_len, "response length")?;
            let rendered = std::str::from_utf8(cursor.take(rendered_len)?)
                .map_err(|_| StoreError::Corrupt("response text is not UTF-8".to_string()))?;
            let response: OptimizeResponse = serde_json::from_str(rendered)
                .map_err(|err| StoreError::Corrupt(format!("response does not parse: {err}")))?;
            let charge = (canonical.len() + rendered.len()) as u64;
            section.push((soc, hash, canonical, response, charge));
        }
    }
    if cursor.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the last entry",
            cursor.remaining()
        )));
    }
    Ok(sections)
}

/// Bounds a stored length field by the cursor's remaining bytes before
/// it is used to allocate.
fn checked_len(cursor: &Cursor<'_>, stored: u64, what: &str) -> Result<usize, StoreError> {
    usize::try_from(stored)
        .ok()
        .filter(|&len| len <= cursor.remaining())
        .ok_or_else(|| StoreError::Corrupt(format!("{what} exceeds file")))
}

/// One session's view of the point-level index: a [`PointMemo`] bound to
/// the session's SOC content hash, handed to the engine at build time by
/// the registry. Every sweep point the engine optimizes consults and
/// populates the shared [`SolutionCache`] through this seam, which is
/// what lets a sweep pre-answer later plain requests (and vice versa)
/// across sessions of the same SOC.
#[derive(Debug)]
pub struct SessionPointMemo {
    cache: Arc<SolutionCache>,
    soc: u64,
}

impl SessionPointMemo {
    /// A memo over `cache`, keyed by the session's SOC content hash.
    pub fn new(cache: Arc<SolutionCache>, soc: u64) -> Self {
        SessionPointMemo { cache, soc }
    }
}

impl PointMemo for SessionPointMemo {
    fn get(&self, request: &OptimizeRequest) -> Option<OptimizeResponse> {
        self.cache.get_point(self.soc, request)
    }

    fn put(&self, request: &OptimizeRequest, response: &OptimizeResponse) {
        self.cache.put_point(self.soc, request, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::thread;

    fn request(channels: usize) -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(channels, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    fn response(marker: usize) -> OptimizeResponse {
        // A cheap, distinguishable stand-in — the cache never inspects
        // response contents.
        OptimizeResponse::Curves(Vec::with_capacity(marker))
    }

    /// Re-sums both indexes from scratch; the running `resident_bytes` /
    /// `point_bytes` counters must always equal this, or the O(1)
    /// eviction accounting has drifted.
    fn resummed(cache: &SolutionCache) -> (u64, u64) {
        let inner = cache.lock();
        (
            inner.entries.iter().map(|entry| entry.bytes).sum::<u64>(),
            inner.points.iter().map(|entry| entry.bytes).sum::<u64>(),
        )
    }

    /// A self-deleting temp-file path for the persistence tests.
    struct TempFile(std::path::PathBuf);

    impl TempFile {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("soctest-solutions-{tag}-{}.v1", std::process::id()));
            let _ = std::fs::remove_file(&path);
            TempFile(path)
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn second_identical_request_hits_without_recomputing() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(response(0))
        };
        let (first, a) = cache
            .run_coalesced(7, &request(64), &token, compute)
            .unwrap();
        let (second, b) = cache
            .run_coalesced(7, &request(64), &token, || {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(response(0))
            })
            .unwrap();
        assert_eq!(first, CacheOutcome::Computed);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(a, b);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn different_socs_and_requests_get_distinct_entries() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        cache
            .run_coalesced(1, &request(64), &token, || Ok(response(0)))
            .unwrap();
        // Same request under another SOC key must recompute...
        let (outcome, _) = cache
            .run_coalesced(2, &request(64), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        // ...and so must a different request under the first SOC.
        let (outcome, _) = cache
            .run_coalesced(1, &request(128), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_computation() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let runs = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let start = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                let start = Arc::clone(&start);
                thread::spawn(move || {
                    start.wait();
                    cache
                        .run_coalesced(3, &request(64), &CancelToken::new(), || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // stragglers to arrive and wait.
                            thread::sleep(Duration::from_millis(100));
                            Ok(response(0))
                        })
                        .unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one computation");
        let expected = response(0);
        for (_, got) in &results {
            assert_eq!(*got, expected);
        }
        let computed = results
            .iter()
            .filter(|(outcome, _)| *outcome == CacheOutcome::Computed)
            .count();
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        // The split: every non-leader was either a direct hit (arrived
        // after the leader finished) or a waiter served its leader's
        // result — never folded together.
        assert_eq!(stats.hits + stats.coalesced_served, threads as u64 - 1);
        assert!(stats.coalesced_waits >= 1);
        assert_eq!(
            stats.coalesced_served, stats.coalesced_waits,
            "every waiter of a successful leader is served, and only waiters count as coalesced"
        );
    }

    #[test]
    fn leader_computed_and_waiter_coalesced_counts_stay_apart() {
        // Pins the exact split with a deterministic interleaving: one
        // leader, one waiter blocked mid-flight, one late direct hit.
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                cache.run_coalesced(11, &request(64), &CancelToken::new(), || {
                    entered.wait();
                    // Hold the flight open while the waiter blocks.
                    thread::sleep(Duration::from_millis(150));
                    Ok(response(0))
                })
            })
        };
        entered.wait();
        let (outcome, _) = cache
            .run_coalesced(11, &request(64), &CancelToken::new(), || {
                panic!("the waiter must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Coalesced);
        leader.join().unwrap().unwrap();
        let (outcome, _) = cache
            .run_coalesced(11, &request(64), &CancelToken::new(), || {
                panic!("the direct hit must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one leader");
        assert_eq!(stats.hits, 1, "one direct hit, waiter not folded in");
        assert_eq!(stats.coalesced_waits, 1);
        assert_eq!(stats.coalesced_served, 1);
    }

    #[test]
    fn deterministic_failures_are_cached_negatively() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let failure = OptimizeError::InvalidConfig {
            message: "always broken".into(),
        };
        let err = cache
            .run_coalesced(12, &request(64), &token, || Err(failure.clone()))
            .unwrap_err();
        assert_eq!(err, failure);
        // The repeat replays the cached failure without recomputing.
        let err = cache
            .run_coalesced(12, &request(64), &token, || {
                panic!("negative hit must not recompute")
            })
            .unwrap_err();
        assert_eq!(err, failure);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.negative_insertions, 1);
        assert_eq!(stats.negative_hits, 1);
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn transient_failures_are_never_cached() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let runs = AtomicUsize::new(0);
        for _ in 0..2 {
            let err = cache
                .run_coalesced(13, &request(64), &token, || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Err(OptimizeError::Cancelled)
                })
                .unwrap_err();
            assert!(matches!(err, OptimizeError::Cancelled));
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2, "every repeat recomputes");
        let stats = cache.stats();
        assert_eq!(stats.negative_insertions, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn negative_entries_age_out_of_the_lru() {
        let cache = SolutionCache::new(2, u64::MAX);
        let token = CancelToken::new();
        let failure = OptimizeError::InvalidConfig {
            message: "always broken".into(),
        };
        cache
            .run_coalesced(14, &request(64), &token, || Err(failure.clone()))
            .unwrap_err();
        // Two successes push the (coldest) negative entry out.
        for channels in [128, 256] {
            cache
                .run_coalesced(14, &request(channels), &token, || Ok(response(0)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The failure is gone: the repeat recomputes (and re-caches).
        let runs = AtomicUsize::new(0);
        let err = cache
            .run_coalesced(14, &request(64), &token, || {
                runs.fetch_add(1, Ordering::SeqCst);
                Err(failure.clone())
            })
            .unwrap_err();
        assert_eq!(err, failure);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.negative_insertions, 2);
        assert_eq!((stats.bytes, stats.point_bytes), resummed(&cache));
    }

    #[test]
    fn failed_leader_does_not_poison_waiters() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let runs = Arc::new(AtomicUsize::new(0));
        let threads = 6;
        let start = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                let start = Arc::clone(&start);
                thread::spawn(move || {
                    start.wait();
                    cache.run_coalesced(4, &request(64), &CancelToken::new(), || {
                        let run = runs.fetch_add(1, Ordering::SeqCst);
                        thread::sleep(Duration::from_millis(50));
                        if run == 0 {
                            // The first leader is "cancelled".
                            Err(OptimizeError::Cancelled)
                        } else {
                            Ok(response(0))
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, 1, "only the first leader sees its own error");
        for result in results.iter().filter(|r| r.is_ok()) {
            assert_eq!(result.as_ref().unwrap().1, response(0));
        }
        // The first leader failed, exactly one successor recomputed.
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_leader_frees_the_flight_for_waiters() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let waiter = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                entered.wait();
                // Give the leader time to panic mid-flight.
                thread::sleep(Duration::from_millis(50));
                cache
                    .run_coalesced(5, &request(64), &CancelToken::new(), || Ok(response(0)))
                    .unwrap()
            })
        };
        let leader = catch_unwind(AssertUnwindSafe(|| {
            cache.run_coalesced(5, &request(64), &CancelToken::new(), || {
                entered.wait();
                thread::sleep(Duration::from_millis(100));
                panic!("injected fault");
            })
        }));
        assert!(leader.is_err());
        let (_, got) = waiter.join().unwrap();
        assert_eq!(got, response(0));
        assert!(cache.lock().inflight.is_empty(), "marker cleaned on unwind");
    }

    #[test]
    fn cancelled_waiter_gives_up_without_disturbing_the_leader() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                cache.run_coalesced(6, &request(64), &CancelToken::new(), || {
                    entered.wait();
                    thread::sleep(Duration::from_millis(200));
                    Ok(response(0))
                })
            })
        };
        entered.wait();
        let token = CancelToken::new();
        token.cancel();
        let err = cache
            .run_coalesced(6, &request(64), &token, || Ok(response(0)))
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled));
        // The leader still completes and caches normally.
        let (outcome, got) = leader.join().unwrap().unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(got, response(0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_lru_and_spares_the_hottest() {
        let cache = SolutionCache::new(2, u64::MAX);
        let token = CancelToken::new();
        for channels in [64, 128, 256] {
            cache
                .run_coalesced(9, &request(channels), &token, || Ok(response(0)))
                .unwrap();
        }
        // 64 was coldest and evicted; 128 and 256 are resident, and the
        // running byte counter shed the evictee exactly.
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!((stats.bytes, stats.point_bytes), resummed(&cache));
        let (outcome, _) = cache
            .run_coalesced(9, &request(256), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let (outcome, _) = cache
            .run_coalesced(9, &request(64), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn byte_cap_evicts_down_to_the_hottest() {
        let cache = SolutionCache::new(8, 1); // 1 byte: everything oversized
        let token = CancelToken::new();
        cache
            .run_coalesced(9, &request(64), &token, || Ok(response(0)))
            .unwrap();
        cache
            .run_coalesced(9, &request(128), &token, || Ok(response(0)))
            .unwrap();
        // Only the hottest survives under the 1-byte cap, and the byte
        // gauge still matches a from-scratch re-sum of the survivors.
        assert_eq!(cache.len(), 1);
        let (outcome, _) = cache
            .run_coalesced(9, &request(128), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let stats = cache.stats();
        assert_eq!((stats.bytes, stats.point_bytes), resummed(&cache));
        assert!(stats.bytes > 1, "the spared entry may exceed the cap");
    }

    #[test]
    fn canonical_request_is_stable_across_clones() {
        let a = request(64);
        let b = a.clone();
        assert_eq!(canonical_request(&a), canonical_request(&b));
        assert_ne!(canonical_request(&a), canonical_request(&request(128)));
    }

    #[test]
    fn point_entries_answer_plain_requests_and_vice_versa() {
        let cache = SolutionCache::new(8, u64::MAX);
        // A sweep publishes one of its points...
        cache.put_point(21, &request(64), &response(0));
        let stats = cache.stats();
        assert_eq!(stats.point_insertions, 1);
        assert_eq!(stats.point_entries, 1);
        assert!(stats.point_bytes > 0);
        assert_eq!(
            stats.entries, 0,
            "points never sit in the whole-request index"
        );
        // ...and the identical *plain* request is a full cache hit.
        let (outcome, got) = cache
            .run_coalesced(21, &request(64), &CancelToken::new(), || {
                panic!("a point-index hit must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(got, response(0));
        assert_eq!(cache.stats().point_hits, 1);

        // The reverse: a whole-request entry pre-answers a sweep's memo
        // probe for the same configuration.
        let token = CancelToken::new();
        cache
            .run_coalesced(22, &request(128), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(cache.get_point(22, &request(128)), Some(response(0)));

        // A memo miss moves no wire-visible counter — the probe is part
        // of serving one sweep, not a request of its own.
        let before = cache.stats();
        assert_eq!(cache.get_point(22, &request(256)), None);
        let after = cache.stats();
        assert_eq!((after.hits, after.misses), (before.hits, before.misses));

        // First publisher wins: re-publishing a resident key is a no-op.
        cache.put_point(21, &request(64), &response(0));
        assert_eq!(cache.stats().point_insertions, 1);
    }

    #[test]
    fn session_point_memo_scopes_points_to_its_soc() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let memo_a = SessionPointMemo::new(Arc::clone(&cache), 1);
        let memo_b = SessionPointMemo::new(Arc::clone(&cache), 2);
        memo_a.put(&request(64), &response(0));
        assert_eq!(memo_a.get(&request(64)), Some(response(0)));
        assert_eq!(
            memo_b.get(&request(64)),
            None,
            "another SOC's session must not see the point"
        );
    }

    #[test]
    fn negative_entries_never_answer_point_probes() {
        let cache = SolutionCache::new(8, u64::MAX);
        let failure = OptimizeError::InvalidConfig {
            message: "always broken".into(),
        };
        cache
            .run_coalesced(23, &request(64), &CancelToken::new(), || {
                Err(failure.clone())
            })
            .unwrap_err();
        // The sweep point recomputes (and fails as the request did)
        // instead of being handed a failure it cannot type.
        assert_eq!(cache.get_point(23, &request(64)), None);
    }

    #[test]
    fn solutions_survive_a_save_load_round_trip() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        cache
            .run_coalesced(31, &request(64), &token, || Ok(response(0)))
            .unwrap();
        cache
            .run_coalesced(31, &request(128), &token, || Ok(response(0)))
            .unwrap();
        cache.put_point(31, &request(256), &response(0));
        // Negative entries are cheap to recompute and never persist.
        cache
            .run_coalesced(31, &request(512), &token, || {
                Err(OptimizeError::InvalidConfig {
                    message: "always broken".into(),
                })
            })
            .unwrap_err();
        let file = TempFile::new("round-trip");
        cache.save(&file.0).unwrap();

        let reloaded = SolutionCache::new(8, u64::MAX);
        assert_eq!(
            reloaded.load(&file.0).unwrap(),
            3,
            "two whole-request successes plus one point, no negatives"
        );
        let (outcome, _) = reloaded
            .run_coalesced(31, &request(64), &CancelToken::new(), || {
                panic!("a persisted entry must answer")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(reloaded.get_point(31, &request(256)), Some(response(0)));
        // The counters stay exact through the merge.
        let stats = reloaded.stats();
        assert_eq!((stats.bytes, stats.point_bytes), resummed(&reloaded));
        // The dropped negative recomputes from scratch.
        let (outcome, _) = reloaded
            .run_coalesced(31, &request(512), &CancelToken::new(), || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn load_merges_without_clobbering_resident_entries() {
        let saved = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        saved
            .run_coalesced(32, &request(64), &token, || Ok(response(0)))
            .unwrap();
        saved
            .run_coalesced(32, &request(128), &token, || Ok(response(0)))
            .unwrap();
        let file = TempFile::new("merge");
        saved.save(&file.0).unwrap();

        // A cache already holding one of the keys merges only the other.
        let target = SolutionCache::new(8, u64::MAX);
        target
            .run_coalesced(32, &request(64), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(target.load(&file.0).unwrap(), 1);
        assert_eq!(target.len(), 2);
        let stats = target.stats();
        assert_eq!((stats.bytes, stats.point_bytes), resummed(&target));
    }

    #[test]
    fn load_applies_the_caps_of_the_loading_cache() {
        let saved = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        for channels in [64, 128, 256] {
            saved
                .run_coalesced(33, &request(channels), &token, || Ok(response(0)))
                .unwrap();
        }
        let file = TempFile::new("caps");
        saved.save(&file.0).unwrap();

        // A smaller cache loads all three, then evicts down to its own
        // entry cap — keeping the hottest (the last-saved) entries.
        let small = SolutionCache::new(2, u64::MAX);
        assert_eq!(small.load(&file.0).unwrap(), 3);
        assert_eq!(small.len(), 2);
        let (outcome, _) = small
            .run_coalesced(33, &request(256), &CancelToken::new(), || {
                panic!("the hottest saved entry must survive the merge")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn corrupt_solution_files_are_typed_clean_misses() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        cache
            .run_coalesced(34, &request(64), &token, || Ok(response(0)))
            .unwrap();
        cache.put_point(34, &request(128), &response(0));
        let file = TempFile::new("corrupt");
        cache.save(&file.0).unwrap();
        let pristine = std::fs::read(&file.0).unwrap();

        // A battery of mutilations: each must be rejected as a typed
        // Corrupt error with the loading cache left untouched.
        let truncated = pristine[..pristine.len() - 3].to_vec();
        let mut bad_magic = pristine.clone();
        bad_magic[0] ^= 0xff;
        let mut flipped_payload = pristine.clone();
        flipped_payload[SOLUTIONS_MAGIC.len() + 12] ^= 0x01;
        let mut trailing = pristine.clone();
        trailing.push(0);
        for (what, bytes) in [
            ("truncated", truncated),
            ("bad magic", bad_magic),
            ("flipped payload byte", flipped_payload),
            ("trailing garbage", trailing),
        ] {
            std::fs::write(&file.0, &bytes).unwrap();
            let target = SolutionCache::new(8, u64::MAX);
            let err = target.load(&file.0).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "{what}: expected a typed Corrupt error, got {err:?}"
            );
            assert!(target.is_empty(), "{what}: the cache must stay untouched");
            assert_eq!(target.stats().point_entries, 0);
        }

        // The pristine bytes still load — the mutations were the problem.
        std::fs::write(&file.0, &pristine).unwrap();
        let target = SolutionCache::new(8, u64::MAX);
        assert_eq!(target.load(&file.0).unwrap(), 2);
    }

    #[test]
    fn load_if_present_treats_a_missing_file_as_empty() {
        let cache = SolutionCache::new(8, u64::MAX);
        let file = TempFile::new("missing");
        assert_eq!(cache.load_if_present(&file.0).unwrap(), 0);
        assert!(cache.is_empty());
    }
}
