//! The content-addressed solution cache with in-flight coalescing.
//!
//! A [`SolutionCache`] memoises whole `(SOC, OptimizeRequest) →
//! OptimizeResponse` computations for the service. The key is the
//! session registry's SOC content hash plus the *canonical* request —
//! the parsed [`OptimizeRequest`] re-rendered through
//! [`canonical_request`] — so two clients spelling the same request with
//! different JSON field orders or explicit defaults share one entry.
//! Hash collisions are harmless: lookups compare the full canonical key
//! on every hash match, so a collision costs a string compare, never a
//! wrong response.
//!
//! The cache also *coalesces* identical in-flight work: while one
//! request (the leader) is computing a key, later identical requests
//! (waiters) block on the leader's result instead of recomputing it.
//! Waiters poll their own [`CancelToken`] while they wait, so
//! cancelling a waiter never disturbs the leader, and a cancelled or
//! failing leader never poisons its waiters — the in-flight marker is
//! removed by an unwind-safe guard and each waiter simply retries
//! (becoming the next leader at most once).
//!
//! Successful responses are cached, and so — *negatively* — are
//! deterministic failures: an invalid SOC, an invalid configuration, or
//! an infeasible architecture fails identically on every repeat, so the
//! typed error is admitted behind a typed negative flag and replayed
//! without recomputation. Wall-clock-dependent failures (cancellation,
//! deadline expiry, shed load, panics) are never cached. Entries of both
//! polarities are evicted least-recently-used when the cache exceeds
//! its entry-count or byte cap, always sparing the hottest entry
//! (mirroring the session registry's policy).

use crate::engine::{OptimizeRequest, OptimizeResponse};
use crate::error::OptimizeError;
use crate::service::cancel::CancelToken;
use crate::service::registry::fnv1a64;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a waiter sleeps between checks of its own [`CancelToken`]
/// while blocked on a leader. Purely a cancellation-latency bound: the
/// leader's guard notifies the condvar the moment the result lands.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Renders a parsed request back to its canonical JSON string — the
/// content-addressed identity used by [`SolutionCache`]. Parsing
/// already normalised field order and filled defaulted fields, so any
/// two spellings of the same request canonicalise identically.
pub fn canonical_request(request: &OptimizeRequest) -> String {
    serde_json::to_string(request).expect("requests serialise")
}

/// How a [`SolutionCache::run_coalesced`] call obtained its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a resident entry without waiting.
    Hit,
    /// Blocked on an identical in-flight computation, then served its
    /// result (or a successor leader's).
    Coalesced,
    /// This call was the leader: it ran the computation.
    Computed,
}

impl CacheOutcome {
    /// Whether the response came out of the cache rather than a fresh
    /// computation by this caller.
    pub fn is_cached(self) -> bool {
        !matches!(self, CacheOutcome::Computed)
    }
}

/// Cache counters, exposed for the service's `Bye` statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolutionCacheStats {
    /// Requests served a success from an already-resident entry without
    /// waiting. Waiter serves are counted in
    /// [`SolutionCacheStats::coalesced_served`], never folded in here.
    pub hits: u64,
    /// Requests that led a computation (successful or not).
    pub misses: u64,
    /// Requests that blocked at least once on an identical in-flight
    /// computation.
    pub coalesced_waits: u64,
    /// Requests that, after blocking, were served a leader's successful
    /// result instead of recomputing.
    pub coalesced_served: u64,
    /// Successful responses admitted to the cache.
    pub insertions: u64,
    /// Deterministic failures admitted as negative entries.
    pub negative_insertions: u64,
    /// Requests answered a replayed failure from a negative entry
    /// (waited or not).
    pub negative_hits: u64,
    /// Entries evicted by the LRU / byte cap.
    pub evictions: u64,
    /// Currently resident entries.
    pub entries: u64,
    /// Currently resident bytes (canonical keys + rendered responses).
    pub bytes: u64,
}

/// What a resident entry replays: a successful response, or — the typed
/// negative flag — a deterministic failure cached so identical repeats
/// skip the doomed computation.
#[derive(Debug, Clone)]
enum CachedResponse {
    /// A successful [`OptimizeResponse`].
    Success(OptimizeResponse),
    /// A deterministic failure (see [`negative_cacheable`]).
    Negative(OptimizeError),
}

/// Whether a failure is deterministic — a pure function of the `(SOC,
/// request)` key, safe to replay from a negative cache entry. Anything
/// wall-clock- or load-dependent (cancellation, deadlines, shed load,
/// internal panics) must recompute.
fn negative_cacheable(error: &OptimizeError) -> bool {
    matches!(
        error,
        OptimizeError::Architecture(_)
            | OptimizeError::InvalidConfig { .. }
            | OptimizeError::InvalidSoc { .. }
    )
}

/// One resident solution.
#[derive(Debug)]
struct CacheEntry {
    /// FNV-1a of `canonical` (the lookup fast path).
    hash: u64,
    /// The owning session's SOC content hash.
    soc: u64,
    /// The canonical request text (the collision-proof identity).
    canonical: String,
    /// The cached response (successful or negative).
    response: CachedResponse,
    /// Charged size: canonical key plus rendered response.
    bytes: u64,
}

impl CacheEntry {
    fn matches(&self, soc: u64, hash: u64, canonical: &str) -> bool {
        self.soc == soc && self.hash == hash && self.canonical == canonical
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Entries in LRU order: index 0 is the coldest.
    entries: Vec<CacheEntry>,
    /// Keys currently being computed by a leader.
    inflight: Vec<(u64, u64, String)>,
    stats: SolutionCacheStats,
}

/// An exact-hit LRU of [`OptimizeResponse`]s keyed by `(SOC content
/// hash, canonical request)`, with in-flight coalescing. See the
/// [module docs](self).
#[derive(Debug)]
pub struct SolutionCache {
    inner: Mutex<CacheInner>,
    /// Signalled whenever a leader finishes (result landed or leader
    /// gave up) so waiters re-check.
    ready: Condvar,
    max_entries: usize,
    max_bytes: u64,
}

impl SolutionCache {
    /// An empty cache holding at most `max_entries` responses and at
    /// most `max_bytes` of charged memory. The entry cap is clamped to
    /// at least one; the hottest entry is never evicted, so a single
    /// oversized response may exist alone.
    pub fn new(max_entries: usize, max_bytes: u64) -> Self {
        SolutionCache {
            inner: Mutex::new(CacheInner::default()),
            ready: Condvar::new(),
            max_entries: max_entries.max(1),
            max_bytes,
        }
    }

    /// Serves `request` for the session keyed `soc`: from the cache if
    /// resident, by waiting on an identical in-flight computation if
    /// one is running, or by calling `compute` as the leader otherwise.
    /// A successful leader's response is cached before waiters wake.
    ///
    /// # Errors
    ///
    /// Whatever `compute` returns when this call leads and the
    /// computation fails (deterministic failures are cached negatively
    /// and replayed to identical repeats; transient ones leave the
    /// cache untouched), a replayed failure when the key has a resident
    /// negative entry, or [`OptimizeError::Cancelled`] /
    /// [`OptimizeError::DeadlineExceeded`] when this call's own `token`
    /// fires while waiting on a leader. A leader's *transient* failure
    /// is not propagated to its waiters — they retry, and the first
    /// retry becomes the next leader.
    pub fn run_coalesced<F>(
        &self,
        soc: u64,
        request: &OptimizeRequest,
        token: &CancelToken,
        compute: F,
    ) -> Result<(CacheOutcome, OptimizeResponse), OptimizeError>
    where
        F: FnOnce() -> Result<OptimizeResponse, OptimizeError>,
    {
        let canonical = canonical_request(request);
        let hash = fnv1a64(&canonical);
        let mut compute = Some(compute);
        let mut waited = false;
        let mut inner = self.lock();
        loop {
            if let Some(position) = inner
                .entries
                .iter()
                .position(|entry| entry.matches(soc, hash, &canonical))
            {
                // Touch: move to the hot end.
                let entry = inner.entries.remove(position);
                let served = entry.response.clone();
                inner.entries.push(entry);
                return match served {
                    CachedResponse::Success(response) => {
                        // The leader-computed vs waiter-coalesced split:
                        // a direct hit and a waiter waking to find its
                        // leader's entry are counted apart.
                        let outcome = if waited {
                            inner.stats.coalesced_served += 1;
                            CacheOutcome::Coalesced
                        } else {
                            inner.stats.hits += 1;
                            CacheOutcome::Hit
                        };
                        Ok((outcome, response))
                    }
                    CachedResponse::Negative(error) => {
                        inner.stats.negative_hits += 1;
                        Err(error)
                    }
                };
            }

            let in_flight = inner
                .inflight
                .iter()
                .any(|(s, h, c)| *s == soc && *h == hash && *c == canonical);
            if in_flight {
                if !waited {
                    waited = true;
                    inner.stats.coalesced_waits += 1;
                }
                // Sleep until the leader's guard notifies (or the
                // slice elapses), then poll our own token: a cancelled
                // waiter gives up without touching the leader.
                inner = self
                    .ready
                    .wait_timeout(inner, WAIT_SLICE)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
                token.check()?;
                continue;
            }

            // No entry, no leader: lead. `compute` is consumed here, and
            // the leader path always returns, so a caller leads at most
            // once — a waiter whose leader failed retries into this arm.
            inner.stats.misses += 1;
            inner.inflight.push((soc, hash, canonical.clone()));
            drop(inner);
            let guard = FlightGuard {
                cache: self,
                soc,
                hash,
                canonical: &canonical,
            };
            let result = (compute.take().expect("leader leads at most once"))();
            match &result {
                Ok(response) => self.insert(
                    soc,
                    hash,
                    &canonical,
                    CachedResponse::Success(response.clone()),
                ),
                Err(error) if negative_cacheable(error) => self.insert(
                    soc,
                    hash,
                    &canonical,
                    CachedResponse::Negative(error.clone()),
                ),
                Err(_) => {}
            }
            // Remove the in-flight marker and wake waiters — also runs
            // on unwind if `compute` panicked, so waiters never hang.
            drop(guard);
            return result.map(|response| (CacheOutcome::Computed, response));
        }
    }

    /// Admits a successful response or a deterministic failure, touching
    /// it hottest and applying the caps.
    fn insert(&self, soc: u64, hash: u64, canonical: &str, response: CachedResponse) {
        let rendered = match &response {
            CachedResponse::Success(response) => {
                serde_json::to_string(response).expect("responses serialise")
            }
            CachedResponse::Negative(error) => error.to_string(),
        };
        let negative = matches!(response, CachedResponse::Negative(_));
        let bytes = (canonical.len() + rendered.len()) as u64;
        let mut inner = self.lock();
        // A resident duplicate is impossible while our in-flight marker
        // blocks other leaders, but stay defensive: replace, don't stack.
        inner
            .entries
            .retain(|entry| !entry.matches(soc, hash, canonical));
        inner.entries.push(CacheEntry {
            hash,
            soc,
            canonical: canonical.to_string(),
            response,
            bytes,
        });
        if negative {
            inner.stats.negative_insertions += 1;
        } else {
            inner.stats.insertions += 1;
        }
        loop {
            let total: u64 = inner.entries.iter().map(|entry| entry.bytes).sum();
            let over = inner.entries.len() > self.max_entries || total > self.max_bytes;
            if !over || inner.entries.len() <= 1 {
                break;
            }
            inner.entries.remove(0);
            inner.stats.evictions += 1;
        }
    }

    /// Current counters (entries/bytes recomputed from the residents).
    pub fn stats(&self) -> SolutionCacheStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.entries = inner.entries.len() as u64;
        stats.bytes = inner.entries.iter().map(|entry| entry.bytes).sum();
        stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // Leaders mutate the cache only at guarded points (marker push,
    // insert, marker removal), never mid-structure — recover from
    // poisoning like the registry does.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Removes the leader's in-flight marker and wakes every waiter — on
/// the normal path *and* when the computation unwinds (an injected
/// fault, an engine bug), so a dying leader never strands its waiters.
struct FlightGuard<'a> {
    cache: &'a SolutionCache,
    soc: u64,
    hash: u64,
    canonical: &'a str,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.lock();
        inner
            .inflight
            .retain(|(s, h, c)| !(*s == self.soc && *h == self.hash && c == self.canonical));
        drop(inner);
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::thread;

    fn request(channels: usize) -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(channels, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    fn response(marker: usize) -> OptimizeResponse {
        // A cheap, distinguishable stand-in — the cache never inspects
        // response contents.
        OptimizeResponse::Curves(Vec::with_capacity(marker))
    }

    #[test]
    fn second_identical_request_hits_without_recomputing() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok(response(0))
        };
        let (first, a) = cache
            .run_coalesced(7, &request(64), &token, compute)
            .unwrap();
        let (second, b) = cache
            .run_coalesced(7, &request(64), &token, || {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(response(0))
            })
            .unwrap();
        assert_eq!(first, CacheOutcome::Computed);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(a, b);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn different_socs_and_requests_get_distinct_entries() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        cache
            .run_coalesced(1, &request(64), &token, || Ok(response(0)))
            .unwrap();
        // Same request under another SOC key must recompute...
        let (outcome, _) = cache
            .run_coalesced(2, &request(64), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        // ...and so must a different request under the first SOC.
        let (outcome, _) = cache
            .run_coalesced(1, &request(128), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_computation() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let runs = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let start = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                let start = Arc::clone(&start);
                thread::spawn(move || {
                    start.wait();
                    cache
                        .run_coalesced(3, &request(64), &CancelToken::new(), || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // stragglers to arrive and wait.
                            thread::sleep(Duration::from_millis(100));
                            Ok(response(0))
                        })
                        .unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one computation");
        let expected = response(0);
        for (_, got) in &results {
            assert_eq!(*got, expected);
        }
        let computed = results
            .iter()
            .filter(|(outcome, _)| *outcome == CacheOutcome::Computed)
            .count();
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        // The split: every non-leader was either a direct hit (arrived
        // after the leader finished) or a waiter served its leader's
        // result — never folded together.
        assert_eq!(stats.hits + stats.coalesced_served, threads as u64 - 1);
        assert!(stats.coalesced_waits >= 1);
        assert_eq!(
            stats.coalesced_served, stats.coalesced_waits,
            "every waiter of a successful leader is served, and only waiters count as coalesced"
        );
    }

    #[test]
    fn leader_computed_and_waiter_coalesced_counts_stay_apart() {
        // Pins the exact split with a deterministic interleaving: one
        // leader, one waiter blocked mid-flight, one late direct hit.
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                cache.run_coalesced(11, &request(64), &CancelToken::new(), || {
                    entered.wait();
                    // Hold the flight open while the waiter blocks.
                    thread::sleep(Duration::from_millis(150));
                    Ok(response(0))
                })
            })
        };
        entered.wait();
        let (outcome, _) = cache
            .run_coalesced(11, &request(64), &CancelToken::new(), || {
                panic!("the waiter must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Coalesced);
        leader.join().unwrap().unwrap();
        let (outcome, _) = cache
            .run_coalesced(11, &request(64), &CancelToken::new(), || {
                panic!("the direct hit must not recompute")
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one leader");
        assert_eq!(stats.hits, 1, "one direct hit, waiter not folded in");
        assert_eq!(stats.coalesced_waits, 1);
        assert_eq!(stats.coalesced_served, 1);
    }

    #[test]
    fn deterministic_failures_are_cached_negatively() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let failure = OptimizeError::InvalidConfig {
            message: "always broken".into(),
        };
        let err = cache
            .run_coalesced(12, &request(64), &token, || Err(failure.clone()))
            .unwrap_err();
        assert_eq!(err, failure);
        // The repeat replays the cached failure without recomputing.
        let err = cache
            .run_coalesced(12, &request(64), &token, || {
                panic!("negative hit must not recompute")
            })
            .unwrap_err();
        assert_eq!(err, failure);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.negative_insertions, 1);
        assert_eq!(stats.negative_hits, 1);
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn transient_failures_are_never_cached() {
        let cache = SolutionCache::new(8, u64::MAX);
        let token = CancelToken::new();
        let runs = AtomicUsize::new(0);
        for _ in 0..2 {
            let err = cache
                .run_coalesced(13, &request(64), &token, || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Err(OptimizeError::Cancelled)
                })
                .unwrap_err();
            assert!(matches!(err, OptimizeError::Cancelled));
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2, "every repeat recomputes");
        let stats = cache.stats();
        assert_eq!(stats.negative_insertions, 0);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn negative_entries_age_out_of_the_lru() {
        let cache = SolutionCache::new(2, u64::MAX);
        let token = CancelToken::new();
        let failure = OptimizeError::InvalidConfig {
            message: "always broken".into(),
        };
        cache
            .run_coalesced(14, &request(64), &token, || Err(failure.clone()))
            .unwrap_err();
        // Two successes push the (coldest) negative entry out.
        for channels in [128, 256] {
            cache
                .run_coalesced(14, &request(channels), &token, || Ok(response(0)))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The failure is gone: the repeat recomputes (and re-caches).
        let runs = AtomicUsize::new(0);
        let err = cache
            .run_coalesced(14, &request(64), &token, || {
                runs.fetch_add(1, Ordering::SeqCst);
                Err(failure.clone())
            })
            .unwrap_err();
        assert_eq!(err, failure);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().negative_insertions, 2);
    }

    #[test]
    fn failed_leader_does_not_poison_waiters() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let runs = Arc::new(AtomicUsize::new(0));
        let threads = 6;
        let start = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                let start = Arc::clone(&start);
                thread::spawn(move || {
                    start.wait();
                    cache.run_coalesced(4, &request(64), &CancelToken::new(), || {
                        let run = runs.fetch_add(1, Ordering::SeqCst);
                        thread::sleep(Duration::from_millis(50));
                        if run == 0 {
                            // The first leader is "cancelled".
                            Err(OptimizeError::Cancelled)
                        } else {
                            Ok(response(0))
                        }
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let failures = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(failures, 1, "only the first leader sees its own error");
        for result in results.iter().filter(|r| r.is_ok()) {
            assert_eq!(result.as_ref().unwrap().1, response(0));
        }
        // The first leader failed, exactly one successor recomputed.
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panicking_leader_frees_the_flight_for_waiters() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let waiter = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                entered.wait();
                // Give the leader time to panic mid-flight.
                thread::sleep(Duration::from_millis(50));
                cache
                    .run_coalesced(5, &request(64), &CancelToken::new(), || Ok(response(0)))
                    .unwrap()
            })
        };
        let leader = catch_unwind(AssertUnwindSafe(|| {
            cache.run_coalesced(5, &request(64), &CancelToken::new(), || {
                entered.wait();
                thread::sleep(Duration::from_millis(100));
                panic!("injected fault");
            })
        }));
        assert!(leader.is_err());
        let (_, got) = waiter.join().unwrap();
        assert_eq!(got, response(0));
        assert!(cache.lock().inflight.is_empty(), "marker cleaned on unwind");
    }

    #[test]
    fn cancelled_waiter_gives_up_without_disturbing_the_leader() {
        let cache = Arc::new(SolutionCache::new(8, u64::MAX));
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let entered = Arc::clone(&entered);
            thread::spawn(move || {
                cache.run_coalesced(6, &request(64), &CancelToken::new(), || {
                    entered.wait();
                    thread::sleep(Duration::from_millis(200));
                    Ok(response(0))
                })
            })
        };
        entered.wait();
        let token = CancelToken::new();
        token.cancel();
        let err = cache
            .run_coalesced(6, &request(64), &token, || Ok(response(0)))
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Cancelled));
        // The leader still completes and caches normally.
        let (outcome, got) = leader.join().unwrap().unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(got, response(0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_lru_and_spares_the_hottest() {
        let cache = SolutionCache::new(2, u64::MAX);
        let token = CancelToken::new();
        for channels in [64, 128, 256] {
            cache
                .run_coalesced(9, &request(channels), &token, || Ok(response(0)))
                .unwrap();
        }
        // 64 was coldest and evicted; 128 and 256 are resident.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let (outcome, _) = cache
            .run_coalesced(9, &request(256), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let (outcome, _) = cache
            .run_coalesced(9, &request(64), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn byte_cap_evicts_down_to_the_hottest() {
        let cache = SolutionCache::new(8, 1); // 1 byte: everything oversized
        let token = CancelToken::new();
        cache
            .run_coalesced(9, &request(64), &token, || Ok(response(0)))
            .unwrap();
        cache
            .run_coalesced(9, &request(128), &token, || Ok(response(0)))
            .unwrap();
        // Only the hottest survives under the 1-byte cap.
        assert_eq!(cache.len(), 1);
        let (outcome, _) = cache
            .run_coalesced(9, &request(128), &token, || Ok(response(0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn canonical_request_is_stable_across_clones() {
        let a = request(64);
        let b = a.clone();
        assert_eq!(canonical_request(&a), canonical_request(&b));
        assert_ne!(canonical_request(&a), canonical_request(&request(128)));
    }
}
