//! Cooperative cancellation and per-request deadlines.
//!
//! A [`CancelToken`] is the service's handle on one in-flight request:
//! the reader thread cancels it when a `Cancel` frame arrives, and the
//! optimizer observes it at two granularities:
//!
//! * **sweep-point granularity** — the engine's point loops call
//!   [`CancelToken::check`] between optimizations and return the typed
//!   [`OptimizeError::Cancelled`] / [`OptimizeError::DeadlineExceeded`];
//! * **table-row granularity** — `CancelGuarded` wraps the session's
//!   time table and probes the token on every [`TimeLookup::time`] call,
//!   so even one long-running optimization inside a single sweep point
//!   stops within a few table lookups. `time` returns a bare `u64`, so
//!   the guard bails by unwinding with a private `CancelUnwind`
//!   payload; [`crate::engine::Engine::run_with_cancel`] catches it at
//!   the request boundary and converts it back into the typed error.
//!
//! Deadline probes throttle the `Instant::now()` syscall to every 64th
//! table lookup (the cancelled flag is checked on every probe — an
//! explicit `Cancel` takes effect immediately); at typical row costs that
//! bounds the overshoot well below a millisecond.

use crate::error::OptimizeError;
use soctest_soc_model::ModuleId;
use soctest_tam::TimeLookup;
use std::any::Any;
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// How many table-row probes share one deadline clock read.
const DEADLINE_PROBE_STRIDE: u64 = 64;

/// Sentinel in [`TokenState::deadline_nanos`] for "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

/// A shareable cancellation + deadline token for one optimizer request.
///
/// Clones share state: cancelling any clone cancels the request. Tokens
/// are cheap (`Arc` of two words) and safe to poll from every worker
/// thread of a parallel sweep.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

#[derive(Debug)]
struct TokenState {
    cancelled: AtomicBool,
    /// The instant deadlines are measured from (token creation), so the
    /// deadline itself can live in an atomic as nanoseconds-from-anchor.
    anchor: Instant,
    /// Nanoseconds from `anchor` to the deadline; [`NO_DEADLINE`] when
    /// none is armed. Only ever lowered (see
    /// [`CancelToken::impose_deadline`]), so lock-free `fetch_min` is
    /// race-correct: the tightest deadline always wins.
    deadline_nanos: AtomicU64,
    probes: AtomicU64,
    /// Every poll of the token — sweep-point checks and table-row probes
    /// alike — for the engine's request traces.
    polls: AtomicU64,
}

/// Nanoseconds from `anchor` to `deadline`, clamped below the
/// [`NO_DEADLINE`] sentinel; a deadline at or before the anchor maps to
/// zero (already expired).
fn nanos_from(anchor: Instant, deadline: Instant) -> u64 {
    let nanos = deadline.saturating_duration_since(anchor).as_nanos();
    u64::try_from(nanos)
        .unwrap_or(NO_DEADLINE - 1)
        .min(NO_DEADLINE - 1)
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::build(None)
    }

    /// A token that additionally expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken::build(Some(deadline))
    }

    fn build(deadline: Option<Instant>) -> Self {
        install_quiet_cancel_hook();
        let anchor = Instant::now();
        CancelToken {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                anchor,
                deadline_nanos: AtomicU64::new(
                    deadline.map_or(NO_DEADLINE, |d| nanos_from(anchor, d)),
                ),
                probes: AtomicU64::new(0),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Arms (or tightens) the deadline to at most `deadline`: the
    /// effective deadline is the minimum of every deadline the token has
    /// ever been given, so a drain can only shorten a request's budget,
    /// never extend one the client asked for. Used by the transport's
    /// graceful drain to bound in-flight work after the grace period.
    pub fn impose_deadline(&self, deadline: Instant) {
        let nanos = nanos_from(self.inner.anchor, deadline);
        self.inner
            .deadline_nanos
            .fetch_min(nanos, Ordering::Relaxed);
    }

    /// Whether the armed deadline (if any) has passed.
    fn deadline_expired(&self) -> bool {
        let nanos = self.inner.deadline_nanos.load(Ordering::Relaxed);
        nanos != NO_DEADLINE && self.inner.anchor.elapsed().as_nanos() >= u128::from(nanos)
    }

    /// Whether any deadline is armed (without reading the clock).
    fn has_deadline(&self) -> bool {
        self.inner.deadline_nanos.load(Ordering::Relaxed) != NO_DEADLINE
    }

    /// Requests cooperative cancellation. Idempotent; takes effect at the
    /// optimizer's next check point (sweep point or table-row probe).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called (deadline expiry
    /// is not reflected here — use [`CancelToken::check`]).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Polls the token: `Ok(())` to keep going, or the typed reason to
    /// stop ([`OptimizeError::Cancelled`] wins over
    /// [`OptimizeError::DeadlineExceeded`] when both hold).
    ///
    /// # Errors
    ///
    /// [`OptimizeError::Cancelled`] after [`CancelToken::cancel`];
    /// [`OptimizeError::DeadlineExceeded`] once the deadline has passed.
    pub fn check(&self) -> Result<(), OptimizeError> {
        self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if self.is_cancelled() {
            return Err(OptimizeError::Cancelled);
        }
        if self.deadline_expired() {
            return Err(OptimizeError::DeadlineExceeded);
        }
        Ok(())
    }

    /// How many times this token has been polled so far — sweep-point
    /// checks and table-row probes alike. This is the cancellation-probe
    /// count the engine's `RequestTrace` attributes to a request (clones
    /// share the counter, so a parallel sweep's probes all land here).
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// [`CancelToken::check`] for hot paths: the cancelled flag is read
    /// every call, the deadline clock only every
    /// [`DEADLINE_PROBE_STRIDE`]th call.
    fn check_throttled(&self) -> Result<(), OptimizeError> {
        self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if self.is_cancelled() {
            return Err(OptimizeError::Cancelled);
        }
        if self.has_deadline() {
            let probe = self.inner.probes.fetch_add(1, Ordering::Relaxed);
            if probe.is_multiple_of(DEADLINE_PROBE_STRIDE) && self.deadline_expired() {
                return Err(OptimizeError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Unwinds with a [`CancelUnwind`] payload when the token says stop —
    /// the escape hatch for infallible interfaces like
    /// [`TimeLookup::time`]. Must run under the `catch_unwind` of
    /// [`crate::engine::Engine::run_with_cancel`], which turns the
    /// payload back into the typed error.
    pub(crate) fn bail_if_stopped(&self) {
        if let Err(reason) = self.check_throttled() {
            panic::panic_any(CancelUnwind(reason));
        }
    }

    /// Recovers the typed stop reason from a caught unwind payload, or
    /// hands the payload back when it is a genuine panic.
    pub(crate) fn unwind_reason(
        payload: Box<dyn Any + Send>,
    ) -> Result<OptimizeError, Box<dyn Any + Send>> {
        payload.downcast::<CancelUnwind>().map(|unwind| unwind.0)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// The unwind payload of a cooperative stop: not an error in the process,
/// just a control-flow envelope for the typed reason.
struct CancelUnwind(OptimizeError);

/// Installs (once per process) a panic hook that stays silent for
/// [`CancelUnwind`] payloads — cancellation is normal service operation
/// and must not spam stderr — and delegates everything else to the
/// previously installed hook.
fn install_quiet_cancel_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A [`TimeLookup`] adapter that probes a [`CancelToken`] on every cell
/// lookup, giving table-row-granular cancellation to every algorithm that
/// reads the table — with zero change to the algorithms themselves.
#[derive(Debug)]
pub(crate) struct CancelGuarded<'a, T: ?Sized> {
    table: &'a T,
    token: &'a CancelToken,
}

impl<'a, T: TimeLookup + ?Sized> CancelGuarded<'a, T> {
    pub(crate) fn new(table: &'a T, token: &'a CancelToken) -> Self {
        CancelGuarded { table, token }
    }
}

impl<T: TimeLookup + ?Sized> TimeLookup for CancelGuarded<'_, T> {
    fn num_modules(&self) -> usize {
        self.table.num_modules()
    }

    fn max_width(&self) -> usize {
        self.table.max_width()
    }

    fn time(&self, module: ModuleId, width: usize) -> u64 {
        self.token.bail_if_stopped();
        self.table.time(module, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn fresh_token_passes_checks() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.check().is_ok());
    }

    #[test]
    fn polls_count_every_check_and_are_shared_by_clones() {
        let token = CancelToken::new();
        assert_eq!(token.polls(), 0);
        token.check().unwrap();
        token.check().unwrap();
        token.check_throttled().unwrap();
        assert_eq!(token.polls(), 3);
        token.clone().check().unwrap();
        assert_eq!(token.polls(), 4);
    }

    #[test]
    fn cancel_is_observed_and_idempotent() {
        let token = CancelToken::new();
        token.cancel();
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.check(), Err(OptimizeError::Cancelled));
        // Clones share the flag.
        let clone = token.clone();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_is_reported() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.check(), Err(OptimizeError::DeadlineExceeded));
        // Cancellation wins over the deadline.
        token.cancel();
        assert_eq!(token.check(), Err(OptimizeError::Cancelled));
    }

    #[test]
    fn future_deadline_passes() {
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(token.check().is_ok());
    }

    #[test]
    fn imposed_deadline_arms_a_deadline_free_token() {
        let token = CancelToken::new();
        assert!(token.check().is_ok());
        token.impose_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.check(), Err(OptimizeError::DeadlineExceeded));
    }

    #[test]
    fn imposed_deadline_only_tightens() {
        // Tightening an hour-away deadline to "already expired" fires...
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        token.impose_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(token.check(), Err(OptimizeError::DeadlineExceeded));
        // ...but an expired deadline cannot be pushed back out.
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        expired.impose_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(expired.check(), Err(OptimizeError::DeadlineExceeded));
    }

    #[test]
    fn bail_unwinds_with_a_recoverable_reason() {
        let token = CancelToken::new();
        token.cancel();
        let payload = catch_unwind(AssertUnwindSafe(|| token.bail_if_stopped()))
            .expect_err("cancelled token must unwind");
        assert_eq!(
            CancelToken::unwind_reason(payload).unwrap(),
            OptimizeError::Cancelled
        );
    }

    #[test]
    fn foreign_panics_are_handed_back() {
        let payload = catch_unwind(|| panic::panic_any("plain panic")).unwrap_err();
        assert!(CancelToken::unwind_reason(payload).is_err());
    }

    #[test]
    fn throttled_deadline_check_fires_within_a_stride() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let mut stopped = false;
        for _ in 0..=DEADLINE_PROBE_STRIDE {
            if token.check_throttled().is_err() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "expired deadline not observed within one stride");
    }
}
