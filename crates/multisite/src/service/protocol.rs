//! The NDJSON wire protocol of the `soc-serve` streaming service.
//!
//! One JSON value per line, in each direction:
//!
//! * client → server: [`ClientFrame`] — `{"Optimize": {...}}`,
//!   `{"Cancel": {"request_id": "r1"}}`, `"Shutdown"`;
//! * server → client: [`ServerFrame`] — `{"Result": {...}}`,
//!   `{"Error": {...}}`, and a final `{"Bye": {...}}` with session
//!   statistics when the stream drains.
//!
//! The enums are modeled like the `soc-batch` wire types: invalid states
//! are unrepresentable in the Rust types, and the hand-written serde
//! impls keep real serde's externally-tagged enum format so the frames
//! survive a swap to the crates.io serde. Unlike the lenient derived
//! struct impls, every protocol-level object here is **strict**: an
//! unknown or duplicate field on a frame is a protocol error (a typo'd
//! `"deadline_ms"` must not silently become "no deadline"), enforced by
//! `expect_fields`. Truncated frames fail JSON parsing one layer below.

use crate::engine::{tagged, untag, OptimizeRequest, OptimizeResponse};
use crate::error::OptimizeError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Rejects unknown and duplicate fields on a protocol object — the
/// strictness layer the lenient derived impls don't provide.
fn expect_fields(value: &Value, allowed: &[&str], type_name: &str) -> Result<(), SerdeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| SerdeError::custom(format!("expected object for {type_name}")))?;
    for (index, (name, _)) in fields.iter().enumerate() {
        if !allowed.contains(&name.as_str()) {
            return Err(SerdeError::custom(format!(
                "unknown field `{name}` for {type_name}"
            )));
        }
        if fields[..index].iter().any(|(earlier, _)| earlier == name) {
            return Err(SerdeError::custom(format!(
                "duplicate field `{name}` for {type_name}"
            )));
        }
    }
    Ok(())
}

/// The SOC a request targets: inline `.soc` text (parsed and validated
/// per session) or the name of an embedded benchmark
/// (see [`crate::service::resolve_named_soc`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocSpec {
    /// Inline `.soc` document text.
    Inline(String),
    /// Name of an embedded benchmark (`d695`, `p22810`, `p34392`,
    /// `p93791`, `pnx8550_like`).
    Named(String),
}

impl Serialize for SocSpec {
    fn to_value(&self) -> Value {
        match self {
            SocSpec::Inline(text) => tagged("Inline", text.to_value()),
            SocSpec::Named(name) => tagged("Named", name.to_value()),
        }
    }
}

impl Deserialize for SocSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "SocSpec")?;
        match tag {
            "Inline" => Ok(SocSpec::Inline(String::from_value(body)?)),
            "Named" => Ok(SocSpec::Named(String::from_value(body)?)),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for SocSpec"
            ))),
        }
    }
}

/// One optimizer request on the wire: an id chosen by the client (echoed
/// on every frame about this request), the target SOC, the typed engine
/// request, and an optional deadline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OptimizeFrame {
    /// Client-chosen correlation id; must be unique among in-flight
    /// requests.
    pub request_id: String,
    /// The SOC this request targets.
    pub soc: SocSpec,
    /// The engine request to serve.
    pub request: OptimizeRequest,
    /// Optional deadline in milliseconds, measured from admission; an
    /// expired request answers [`ErrorKind::DeadlineExceeded`]. Absent or
    /// `null` means no deadline.
    pub deadline_ms: Option<u64>,
}

impl Deserialize for OptimizeFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(
            value,
            &["request_id", "soc", "request", "deadline_ms"],
            "OptimizeFrame",
        )?;
        // `deadline_ms` may be omitted entirely (None), unlike the other
        // fields, which are required.
        let deadline_ms = match value.get("deadline_ms") {
            None => None,
            Some(raw) => Option::<u64>::from_value(raw)?,
        };
        Ok(OptimizeFrame {
            request_id: serde::get_field(value, "request_id", "OptimizeFrame")?,
            soc: serde::get_field(value, "soc", "OptimizeFrame")?,
            request: serde::get_field(value, "request", "OptimizeFrame")?,
            deadline_ms,
        })
    }
}

/// One line of client input.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Admit one optimizer request.
    Optimize(OptimizeFrame),
    /// Cooperatively cancel an in-flight (queued or running) request.
    Cancel {
        /// The id of the request to cancel.
        request_id: String,
    },
    /// Stop reading input, drain the queue, answer `Bye`, exit.
    Shutdown,
}

impl Serialize for ClientFrame {
    fn to_value(&self) -> Value {
        match self {
            ClientFrame::Optimize(frame) => tagged("Optimize", frame.to_value()),
            ClientFrame::Cancel { request_id } => tagged(
                "Cancel",
                Value::Object(vec![("request_id".to_string(), request_id.to_value())]),
            ),
            ClientFrame::Shutdown => Value::String("Shutdown".to_string()),
        }
    }
}

impl Deserialize for ClientFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Shutdown" => Ok(ClientFrame::Shutdown),
                other => Err(SerdeError::custom(format!(
                    "unknown unit variant `{other}` for ClientFrame"
                ))),
            };
        }
        let (tag, body) = untag(value, "ClientFrame")?;
        match tag {
            "Optimize" => Ok(ClientFrame::Optimize(OptimizeFrame::from_value(body)?)),
            "Cancel" => {
                expect_fields(body, &["request_id"], "ClientFrame::Cancel")?;
                Ok(ClientFrame::Cancel {
                    request_id: serde::get_field(body, "request_id", "ClientFrame::Cancel")?,
                })
            }
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for ClientFrame"
            ))),
        }
    }
}

/// The failure class of an [`ErrorFrame`] — a stable, machine-matchable
/// discriminant next to the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The input line was not a well-formed frame (bad JSON, unknown
    /// variant, unknown/duplicate/missing field, duplicate request id).
    Protocol,
    /// A `Cancel` named a request id that is not in flight.
    UnknownRequest,
    /// The SOC failed to parse, failed validation, or an unknown SOC name
    /// was given.
    InvalidSoc,
    /// The request's optimizer configuration is invalid.
    InvalidConfig,
    /// The architecture design failed (module infeasible, channel
    /// shortage, empty SOC).
    Architecture,
    /// The request panicked or broke an optimizer invariant; the server
    /// keeps serving.
    Internal,
    /// The request was cancelled by a `Cancel` frame.
    Cancelled,
    /// The request's deadline expired before it completed.
    DeadlineExceeded,
    /// The admission queue was full; the request was shed unserved.
    Overloaded,
}

impl From<&OptimizeError> for ErrorKind {
    fn from(error: &OptimizeError) -> Self {
        match error {
            OptimizeError::Architecture(_) => ErrorKind::Architecture,
            OptimizeError::InvalidConfig { .. } => ErrorKind::InvalidConfig,
            OptimizeError::InvalidSoc { .. } => ErrorKind::InvalidSoc,
            OptimizeError::Internal { .. } => ErrorKind::Internal,
            OptimizeError::Cancelled => ErrorKind::Cancelled,
            OptimizeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            OptimizeError::Overloaded => ErrorKind::Overloaded,
        }
    }
}

/// A successful answer to one [`OptimizeFrame`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResultFrame {
    /// The id of the request this answers.
    pub request_id: String,
    /// Whether the request hit an already-warm engine session (same SOC
    /// content served before and still resident in the registry).
    pub warm: bool,
    /// Whether the response came out of the solution cache (an exact
    /// hit or a coalesced wait on an identical in-flight request)
    /// rather than a fresh computation.
    pub cached: bool,
    /// The engine's response.
    pub response: OptimizeResponse,
}

impl Deserialize for ResultFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(
            value,
            &["request_id", "warm", "cached", "response"],
            "ResultFrame",
        )?;
        Ok(ResultFrame {
            request_id: serde::get_field(value, "request_id", "ResultFrame")?,
            warm: serde::get_field(value, "warm", "ResultFrame")?,
            cached: serde::get_field(value, "cached", "ResultFrame")?,
            response: serde::get_field(value, "response", "ResultFrame")?,
        })
    }
}

/// A typed failure: per-request when `request_id` is set, stream-level
/// (an unparseable line) when it is `null`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ErrorFrame {
    /// The id of the request this answers, or `null` for line-level
    /// protocol errors.
    pub request_id: Option<String>,
    /// The machine-matchable failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorFrame {
    /// The error frame for a typed optimizer failure of `request_id`.
    pub fn from_error(request_id: impl Into<String>, error: &OptimizeError) -> Self {
        ErrorFrame {
            request_id: Some(request_id.into()),
            kind: ErrorKind::from(error),
            message: error.to_string(),
        }
    }

    /// A stream-level protocol error (no request id to blame).
    pub fn protocol(message: impl Into<String>) -> Self {
        ErrorFrame {
            request_id: None,
            kind: ErrorKind::Protocol,
            message: message.into(),
        }
    }
}

impl Deserialize for ErrorFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(value, &["request_id", "kind", "message"], "ErrorFrame")?;
        Ok(ErrorFrame {
            request_id: serde::get_field(value, "request_id", "ErrorFrame")?,
            kind: serde::get_field(value, "kind", "ErrorFrame")?,
            message: serde::get_field(value, "message", "ErrorFrame")?,
        })
    }
}

/// Solution-cache and row-store statistics inside the final `Bye`
/// frame. Every counter here is deterministic for a given input stream
/// and thread count — duplicate-computation races are settled by
/// first-insert-wins guards before anything is counted — so golden
/// transcripts can compare `Bye` byte-for-byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served straight from the solution cache (including
    /// coalesced waiters).
    pub result_hits: u64,
    /// Requests that computed their response (successfully or not).
    pub result_misses: u64,
    /// Requests that blocked on an identical in-flight computation.
    pub coalesced_waits: u64,
    /// Bytes resident in the solution cache at shutdown.
    pub result_bytes: u64,
    /// Module-row cells computed fresh this session (first insert of a
    /// `(shape, width)` pair). Zero on a warm restart means the row
    /// store rebuilt nothing.
    pub cells_computed: u64,
    /// Row-store cells loaded from the on-disk cache at startup.
    pub store_cells_loaded: u64,
    /// Row-store rows saved to the on-disk cache at shutdown.
    pub store_rows_saved: u64,
}

/// End-of-session statistics, answered in the final `Bye` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// `Result` frames written.
    pub served: u64,
    /// `Error` frames written (all kinds, including shed load).
    pub errors: u64,
    /// Engine sessions built over the lifetime of the stream.
    pub sessions_created: u64,
    /// Requests that found their session warm in the registry.
    pub session_hits: u64,
    /// Requests that had to (re)build their session.
    pub session_misses: u64,
    /// Sessions evicted by the registry's LRU / memory cap.
    pub evictions: u64,
    /// Solution-cache and row-store counters.
    pub cache: CacheStats,
}

/// One line of server output.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// A request succeeded.
    Result(ResultFrame),
    /// A request (or input line) failed.
    Error(ErrorFrame),
    /// The stream drained; statistics of the whole session. Always the
    /// last frame.
    Bye(ServerStats),
}

impl Serialize for ServerFrame {
    fn to_value(&self) -> Value {
        match self {
            ServerFrame::Result(frame) => tagged("Result", frame.to_value()),
            ServerFrame::Error(frame) => tagged("Error", frame.to_value()),
            ServerFrame::Bye(stats) => tagged("Bye", stats.to_value()),
        }
    }
}

impl Deserialize for ServerFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "ServerFrame")?;
        match tag {
            "Result" => Ok(ServerFrame::Result(ResultFrame::from_value(body)?)),
            "Error" => Ok(ServerFrame::Error(ErrorFrame::from_value(body)?)),
            "Bye" => {
                expect_fields(
                    body,
                    &[
                        "served",
                        "errors",
                        "sessions_created",
                        "session_hits",
                        "session_misses",
                        "evictions",
                        "cache",
                    ],
                    "ServerFrame::Bye",
                )?;
                Ok(ServerFrame::Bye(ServerStats::from_value(body)?))
            }
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for ServerFrame"
            ))),
        }
    }
}

/// Parses one line of client input.
///
/// # Errors
///
/// A human-readable message on malformed JSON, unknown variants, and
/// unknown/duplicate/missing fields — rendered back to the client in a
/// [`ErrorKind::Protocol`] frame.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, String> {
    serde_json::from_str(line).map_err(|err| format!("malformed frame: {err}"))
}

/// Renders one server frame as its single NDJSON line (no trailing
/// newline — the writer adds it).
///
/// # Panics
///
/// Panics if the frame contains a non-finite float (the optimizer never
/// produces one).
pub fn render_server_frame(frame: &ServerFrame) -> String {
    serde_json::to_string(frame).expect("server frames serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepAxis;
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_tam::TamError;

    fn sample_request() -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(64, 16 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Optimize(OptimizeFrame {
                request_id: "r1".into(),
                soc: SocSpec::Named("d695".into()),
                request: sample_request(),
                deadline_ms: Some(250),
            }),
            ClientFrame::Optimize(OptimizeFrame {
                request_id: "r2".into(),
                soc: SocSpec::Inline("soc t\n".into()),
                request: sample_request().with_sweep(SweepAxis::Channels(vec![32, 64])),
                deadline_ms: None,
            }),
            ClientFrame::Cancel {
                request_id: "r1".into(),
            },
            ClientFrame::Shutdown,
        ];
        for frame in &frames {
            let json = serde_json::to_string(frame).unwrap();
            let back = parse_client_frame(&json).unwrap();
            assert_eq!(&back, frame, "round trip failed for {json}");
        }
        assert_eq!(
            serde_json::to_string(&ClientFrame::Shutdown).unwrap(),
            "\"Shutdown\""
        );
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Error(ErrorFrame::protocol("bad line")),
            ServerFrame::Error(ErrorFrame::from_error(
                "r9",
                &OptimizeError::Architecture(TamError::EmptySoc),
            )),
            ServerFrame::Error(ErrorFrame {
                request_id: Some("r3".into()),
                kind: ErrorKind::Overloaded,
                message: "queue full".into(),
            }),
            ServerFrame::Bye(ServerStats {
                served: 4,
                errors: 1,
                sessions_created: 2,
                session_hits: 3,
                session_misses: 2,
                evictions: 1,
                cache: CacheStats {
                    result_hits: 2,
                    result_misses: 2,
                    coalesced_waits: 1,
                    result_bytes: 4096,
                    cells_computed: 77,
                    store_cells_loaded: 11,
                    store_rows_saved: 5,
                },
            }),
        ];
        for frame in &frames {
            let json = render_server_frame(frame);
            let back: ServerFrame = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, frame, "round trip failed for {json}");
        }
    }

    #[test]
    fn deadline_may_be_omitted_but_other_fields_may_not() {
        let json = r#"{"Optimize":{"request_id":"r1","soc":{"Named":"d695"},"request":REQ}}"#
            .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        let frame = parse_client_frame(&json).unwrap();
        match frame {
            ClientFrame::Optimize(inner) => assert_eq!(inner.deadline_ms, None),
            other => panic!("unexpected frame {other:?}"),
        }
        let missing_id = r#"{"Optimize":{"soc":{"Named":"d695"},"request":REQ}}"#
            .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        assert!(parse_client_frame(&missing_id)
            .unwrap_err()
            .contains("request_id"));
    }

    #[test]
    fn unknown_fields_are_rejected_at_frame_level() {
        let json =
            r#"{"Optimize":{"request_id":"r1","soc":{"Named":"d695"},"request":REQ,"deadine_ms":5}}"#
                .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        let err = parse_client_frame(&json).unwrap_err();
        assert!(err.contains("deadine_ms"), "got: {err}");
        assert!(
            parse_client_frame(r#"{"Cancel":{"request_id":"r1","force":true}}"#)
                .unwrap_err()
                .contains("force")
        );
    }

    #[test]
    fn truncated_and_malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"Optimize\":",
            "\"Shutdow\"",
            "{\"Nope\":{}}",
            "[1,2,3]",
            "{\"Cancel\":{}}",
        ] {
            assert!(parse_client_frame(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn error_kind_maps_every_optimizer_error() {
        let cases = [
            (
                OptimizeError::Architecture(TamError::EmptySoc),
                ErrorKind::Architecture,
            ),
            (
                OptimizeError::InvalidConfig {
                    message: "x".into(),
                },
                ErrorKind::InvalidConfig,
            ),
            (
                OptimizeError::InvalidSoc { issues: vec![] },
                ErrorKind::InvalidSoc,
            ),
            (OptimizeError::internal("x"), ErrorKind::Internal),
            (OptimizeError::Cancelled, ErrorKind::Cancelled),
            (OptimizeError::DeadlineExceeded, ErrorKind::DeadlineExceeded),
            (OptimizeError::Overloaded, ErrorKind::Overloaded),
        ];
        for (error, kind) in cases {
            assert_eq!(ErrorKind::from(&error), kind);
            let frame = ErrorFrame::from_error("r1", &error);
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.message, error.to_string());
        }
    }
}
