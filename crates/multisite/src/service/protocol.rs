//! The NDJSON wire protocol of the `soc-serve` streaming service.
//!
//! One JSON value per line, in each direction:
//!
//! * client → server: [`ClientFrame`] — `{"Optimize": {...}}`,
//!   `{"Cancel": {"request_id": "r1"}}`, `"Shutdown"`;
//! * server → client: [`ServerFrame`] — `{"Result": {...}}`,
//!   `{"Error": {...}}`, and a final `{"Bye": {...}}` with session
//!   statistics when the stream drains.
//!
//! The enums are modeled like the `soc-batch` wire types: invalid states
//! are unrepresentable in the Rust types, and the hand-written serde
//! impls keep real serde's externally-tagged enum format so the frames
//! survive a swap to the crates.io serde. Unlike the lenient derived
//! struct impls, every protocol-level object here is **strict**: an
//! unknown or duplicate field on a frame is a protocol error (a typo'd
//! `"deadline_ms"` must not silently become "no deadline"), enforced by
//! `expect_fields`. Truncated frames fail JSON parsing one layer below.

use crate::engine::{tagged, untag, OptimizeRequest, OptimizeResponse};
use crate::error::OptimizeError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Rejects unknown and duplicate fields on a protocol object — the
/// strictness layer the lenient derived impls don't provide.
fn expect_fields(value: &Value, allowed: &[&str], type_name: &str) -> Result<(), SerdeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| SerdeError::custom(format!("expected object for {type_name}")))?;
    for (index, (name, _)) in fields.iter().enumerate() {
        if !allowed.contains(&name.as_str()) {
            return Err(SerdeError::custom(format!(
                "unknown field `{name}` for {type_name}"
            )));
        }
        if fields[..index].iter().any(|(earlier, _)| earlier == name) {
            return Err(SerdeError::custom(format!(
                "duplicate field `{name}` for {type_name}"
            )));
        }
    }
    Ok(())
}

/// The SOC a request targets: inline `.soc` text (parsed and validated
/// per session) or the name of an embedded benchmark
/// (see [`crate::service::resolve_named_soc`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocSpec {
    /// Inline `.soc` document text.
    Inline(String),
    /// Name of an embedded benchmark (`d695`, `p22810`, `p34392`,
    /// `p93791`, `pnx8550_like`).
    Named(String),
}

impl Serialize for SocSpec {
    fn to_value(&self) -> Value {
        match self {
            SocSpec::Inline(text) => tagged("Inline", text.to_value()),
            SocSpec::Named(name) => tagged("Named", name.to_value()),
        }
    }
}

impl Deserialize for SocSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "SocSpec")?;
        match tag {
            "Inline" => Ok(SocSpec::Inline(String::from_value(body)?)),
            "Named" => Ok(SocSpec::Named(String::from_value(body)?)),
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for SocSpec"
            ))),
        }
    }
}

/// One optimizer request on the wire: an id chosen by the client (echoed
/// on every frame about this request), the target SOC, the typed engine
/// request, an optional deadline, and an opt-in statistics flag.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeFrame {
    /// Client-chosen correlation id; must be unique among in-flight
    /// requests.
    pub request_id: String,
    /// The SOC this request targets.
    pub soc: SocSpec,
    /// The engine request to serve.
    pub request: OptimizeRequest,
    /// Optional deadline in milliseconds, measured from admission; an
    /// expired request answers [`ErrorKind::DeadlineExceeded`]. Absent or
    /// `null` means no deadline.
    pub deadline_ms: Option<u64>,
    /// Opt-in per-request statistics: when `true`, the answering
    /// [`ResultFrame`] carries a [`RequestStats`] block. Absent means
    /// `false`, and a `false` flag is omitted on the wire, so frames
    /// that never ask for statistics serialise exactly as before.
    pub stats: bool,
}

// Hand-written (not derived) so a `false` stats flag is omitted: frames
// from stats-unaware clients round-trip byte-identically.
impl Serialize for OptimizeFrame {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("request_id".to_string(), self.request_id.to_value()),
            ("soc".to_string(), self.soc.to_value()),
            ("request".to_string(), self.request.to_value()),
            ("deadline_ms".to_string(), self.deadline_ms.to_value()),
        ];
        if self.stats {
            fields.push(("stats".to_string(), self.stats.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for OptimizeFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(
            value,
            &["request_id", "soc", "request", "deadline_ms", "stats"],
            "OptimizeFrame",
        )?;
        // `deadline_ms` and `stats` may be omitted entirely, unlike the
        // other fields, which are required.
        let deadline_ms = match value.get("deadline_ms") {
            None => None,
            Some(raw) => Option::<u64>::from_value(raw)?,
        };
        let stats = match value.get("stats") {
            None => false,
            Some(raw) => bool::from_value(raw)?,
        };
        Ok(OptimizeFrame {
            request_id: serde::get_field(value, "request_id", "OptimizeFrame")?,
            soc: serde::get_field(value, "soc", "OptimizeFrame")?,
            request: serde::get_field(value, "request", "OptimizeFrame")?,
            deadline_ms,
            stats,
        })
    }
}

/// One line of client input.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Admit one optimizer request.
    Optimize(OptimizeFrame),
    /// Cooperatively cancel an in-flight (queued or running) request.
    Cancel {
        /// The id of the request to cancel.
        request_id: String,
    },
    /// Stop reading input, drain the queue, answer `Bye`, exit.
    Shutdown,
}

impl Serialize for ClientFrame {
    fn to_value(&self) -> Value {
        match self {
            ClientFrame::Optimize(frame) => tagged("Optimize", frame.to_value()),
            ClientFrame::Cancel { request_id } => tagged(
                "Cancel",
                Value::Object(vec![("request_id".to_string(), request_id.to_value())]),
            ),
            ClientFrame::Shutdown => Value::String("Shutdown".to_string()),
        }
    }
}

impl Deserialize for ClientFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return match name {
                "Shutdown" => Ok(ClientFrame::Shutdown),
                other => Err(SerdeError::custom(format!(
                    "unknown unit variant `{other}` for ClientFrame"
                ))),
            };
        }
        let (tag, body) = untag(value, "ClientFrame")?;
        match tag {
            "Optimize" => Ok(ClientFrame::Optimize(OptimizeFrame::from_value(body)?)),
            "Cancel" => {
                expect_fields(body, &["request_id"], "ClientFrame::Cancel")?;
                Ok(ClientFrame::Cancel {
                    request_id: serde::get_field(body, "request_id", "ClientFrame::Cancel")?,
                })
            }
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for ClientFrame"
            ))),
        }
    }
}

/// The failure class of an [`ErrorFrame`] — a stable, machine-matchable
/// discriminant next to the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The input line was not a well-formed frame (bad JSON, unknown
    /// variant, unknown/duplicate/missing field, duplicate request id).
    Protocol,
    /// A `Cancel` named a request id that is not in flight.
    UnknownRequest,
    /// The SOC failed to parse, failed validation, or an unknown SOC name
    /// was given.
    InvalidSoc,
    /// The request's optimizer configuration is invalid.
    InvalidConfig,
    /// The architecture design failed (module infeasible, channel
    /// shortage, empty SOC).
    Architecture,
    /// The request panicked or broke an optimizer invariant; the server
    /// keeps serving.
    Internal,
    /// The request was cancelled by a `Cancel` frame.
    Cancelled,
    /// The request's deadline expired before it completed.
    DeadlineExceeded,
    /// The admission queue was full; the request was shed unserved.
    Overloaded,
}

impl From<&OptimizeError> for ErrorKind {
    fn from(error: &OptimizeError) -> Self {
        match error {
            OptimizeError::Architecture(_) => ErrorKind::Architecture,
            OptimizeError::InvalidConfig { .. } => ErrorKind::InvalidConfig,
            OptimizeError::InvalidSoc { .. } => ErrorKind::InvalidSoc,
            OptimizeError::Internal { .. } => ErrorKind::Internal,
            OptimizeError::Cancelled => ErrorKind::Cancelled,
            OptimizeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            OptimizeError::Overloaded => ErrorKind::Overloaded,
        }
    }
}

/// How a request's response was obtained — the per-request cache
/// provenance reported in the opt-in [`RequestStats`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Served from a resident solution-cache entry without waiting.
    Hit,
    /// Blocked on an identical in-flight computation, then served its
    /// leader's result.
    Coalesced,
    /// This request led the computation (a genuine cache miss).
    Computed,
}

/// The opt-in per-request `stats` block on a [`ResultFrame`], present
/// only when the request's [`OptimizeFrame::stats`] flag was set.
///
/// Every field is race-deterministic for a given input stream at any
/// thread count, so stats-enabled transcripts remain golden-checkable:
/// cell deltas use first-swap-wins counting and the store counter is
/// first-insert-deterministic. Run-specific measurements (wall/CPU time,
/// pool occupancy) deliberately stay off the wire — `soc-serve
/// --stats-summary` reports them on stderr instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// How the response was obtained.
    pub provenance: Provenance,
    /// `(module, width)` table cells this request materialised (computed,
    /// replayed from the row store, or inherited across a table regrow).
    /// Zero for cache hits.
    pub cells_built: u64,
    /// Cells this request inherited by forcing a table regrow.
    pub cells_inherited: u64,
    /// Module rows this request computed fresh into the shared row store
    /// (first insert of a `(shape, width)` pair).
    pub store_cells_computed: u64,
    /// Sweep points this request answered from the point-level cache
    /// index instead of optimizing (see the service cache docs). Zero
    /// for plain requests and for sweeps with nothing to reuse, and
    /// omitted on the wire when zero, so reuse-free transcripts
    /// serialise exactly as before.
    pub points_reused: u64,
}

// Hand-written (not derived) so a zero `points_reused` is omitted:
// frames for requests that reused nothing round-trip byte-identically
// with pre-point-cache servers.
impl Serialize for RequestStats {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("provenance".to_string(), self.provenance.to_value()),
            ("cells_built".to_string(), self.cells_built.to_value()),
            (
                "cells_inherited".to_string(),
                self.cells_inherited.to_value(),
            ),
            (
                "store_cells_computed".to_string(),
                self.store_cells_computed.to_value(),
            ),
        ];
        if self.points_reused != 0 {
            fields.push(("points_reused".to_string(), self.points_reused.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for RequestStats {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(
            value,
            &[
                "provenance",
                "cells_built",
                "cells_inherited",
                "store_cells_computed",
                "points_reused",
            ],
            "RequestStats",
        )?;
        // `points_reused` may be omitted entirely (older transcripts).
        let points_reused = match value.get("points_reused") {
            None => 0,
            Some(raw) => u64::from_value(raw)?,
        };
        Ok(RequestStats {
            provenance: serde::get_field(value, "provenance", "RequestStats")?,
            cells_built: serde::get_field(value, "cells_built", "RequestStats")?,
            cells_inherited: serde::get_field(value, "cells_inherited", "RequestStats")?,
            store_cells_computed: serde::get_field(value, "store_cells_computed", "RequestStats")?,
            points_reused,
        })
    }
}

/// Deterministic aggregate of every stats-enabled request of a session,
/// carried in the final `Bye` frame — but only when at least one request
/// opted in, so stats-off transcripts stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Requests that asked for statistics (served or failed).
    pub requests: u64,
    /// Total table cells those requests materialised.
    pub cells_built: u64,
    /// Total cells inherited across table regrows.
    pub cells_inherited: u64,
    /// Total module rows computed fresh into the row store.
    pub store_cells_computed: u64,
}

/// A successful answer to one [`OptimizeFrame`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// The id of the request this answers.
    pub request_id: String,
    /// Whether the request hit an already-warm engine session (same SOC
    /// content served before and still resident in the registry).
    pub warm: bool,
    /// Whether the response came out of the solution cache (an exact
    /// hit or a coalesced wait on an identical in-flight request)
    /// rather than a fresh computation.
    pub cached: bool,
    /// The engine's response.
    pub response: OptimizeResponse,
    /// The opt-in statistics block; `None` (and omitted on the wire)
    /// unless the request set [`OptimizeFrame::stats`].
    pub stats: Option<RequestStats>,
}

// Hand-written (not derived) so an absent stats block is omitted: result
// frames for stats-off requests serialise exactly as before.
impl Serialize for ResultFrame {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("request_id".to_string(), self.request_id.to_value()),
            ("warm".to_string(), self.warm.to_value()),
            ("cached".to_string(), self.cached.to_value()),
            ("response".to_string(), self.response.to_value()),
        ];
        if let Some(stats) = &self.stats {
            fields.push(("stats".to_string(), stats.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ResultFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(
            value,
            &["request_id", "warm", "cached", "response", "stats"],
            "ResultFrame",
        )?;
        let stats = match value.get("stats") {
            None => None,
            Some(raw) => Option::<RequestStats>::from_value(raw)?,
        };
        Ok(ResultFrame {
            request_id: serde::get_field(value, "request_id", "ResultFrame")?,
            warm: serde::get_field(value, "warm", "ResultFrame")?,
            cached: serde::get_field(value, "cached", "ResultFrame")?,
            response: serde::get_field(value, "response", "ResultFrame")?,
            stats,
        })
    }
}

/// A typed failure: per-request when `request_id` is set, stream-level
/// (an unparseable line) when it is `null`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ErrorFrame {
    /// The id of the request this answers, or `null` for line-level
    /// protocol errors.
    pub request_id: Option<String>,
    /// The machine-matchable failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorFrame {
    /// The error frame for a typed optimizer failure of `request_id`.
    pub fn from_error(request_id: impl Into<String>, error: &OptimizeError) -> Self {
        ErrorFrame {
            request_id: Some(request_id.into()),
            kind: ErrorKind::from(error),
            message: error.to_string(),
        }
    }

    /// A stream-level protocol error (no request id to blame).
    pub fn protocol(message: impl Into<String>) -> Self {
        ErrorFrame {
            request_id: None,
            kind: ErrorKind::Protocol,
            message: message.into(),
        }
    }
}

impl Deserialize for ErrorFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        expect_fields(value, &["request_id", "kind", "message"], "ErrorFrame")?;
        Ok(ErrorFrame {
            request_id: serde::get_field(value, "request_id", "ErrorFrame")?,
            kind: serde::get_field(value, "kind", "ErrorFrame")?,
            message: serde::get_field(value, "message", "ErrorFrame")?,
        })
    }
}

/// Solution-cache and row-store statistics inside the final `Bye`
/// frame. Every counter here is deterministic for a given input stream
/// and thread count — duplicate-computation races are settled by
/// first-insert-wins guards before anything is counted — so golden
/// transcripts can compare `Bye` byte-for-byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests served from an already-resident solution-cache entry
    /// without waiting (waiter-coalesced serves are counted separately
    /// in [`CacheStats::coalesced_served`], never folded in here).
    pub result_hits: u64,
    /// Requests that led a computation (successfully or not).
    pub result_misses: u64,
    /// Requests that blocked on an identical in-flight computation.
    pub coalesced_waits: u64,
    /// Requests that, after blocking, were served a leader's result
    /// instead of recomputing — the waiter-coalesced half of what
    /// `result_hits` used to conflate.
    pub coalesced_served: u64,
    /// Bytes resident in the solution cache at shutdown.
    pub result_bytes: u64,
    /// Module-row cells computed fresh this session (first insert of a
    /// `(shape, width)` pair). Zero on a warm restart means the row
    /// store rebuilt nothing.
    pub cells_computed: u64,
    /// Row-store cells loaded from the on-disk cache at startup.
    pub store_cells_loaded: u64,
    /// Row-store rows saved to the on-disk cache at shutdown.
    pub store_rows_saved: u64,
}

/// Identity and accounting of the transport connection a `Bye` frame
/// closes, present only in socket mode — stdin/stdout sessions omit the
/// block entirely, keeping their transcripts byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionStats {
    /// Accept-order ordinal of this connection (`1` for the first
    /// connection the listener accepted).
    pub id: u64,
    /// `Optimize` frames this connection submitted (admitted or shed).
    pub requests: u64,
}

/// End-of-session statistics, answered in the final `Bye` frame.
///
/// In socket mode every connection answers its own `Bye`: `served`,
/// `errors`, `internal_errors`, and the `connection` block are scoped to
/// that connection, while the session/cache counters describe the shared
/// server at the moment the connection drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// `Result` frames written.
    pub served: u64,
    /// `Error` frames written (all kinds, including shed load).
    pub errors: u64,
    /// The subset of `errors` with [`ErrorKind::Internal`] — requests
    /// that died by panic (or broke an optimizer invariant) under the
    /// executor's isolation. Omitted on the wire when zero, so
    /// healthy-session transcripts are unchanged.
    pub internal_errors: u64,
    /// Engine sessions built over the lifetime of the stream.
    pub sessions_created: u64,
    /// Requests that found their session warm in the registry.
    pub session_hits: u64,
    /// Requests that had to (re)build their session.
    pub session_misses: u64,
    /// Sessions evicted by the registry's LRU / memory cap.
    pub evictions: u64,
    /// Solution-cache and row-store counters.
    pub cache: CacheStats,
    /// Aggregate of the stats-enabled requests; `None` (and omitted on
    /// the wire) when no request of the session opted in.
    pub trace: Option<TraceSummary>,
    /// The transport connection this `Bye` closes; `None` (and omitted
    /// on the wire) in stdin/stdout mode.
    pub connection: Option<ConnectionStats>,
}

// Hand-written (not derived) so the absent-by-default blocks are
// omitted: `Bye` frames of stats-off, panic-free, stdin-mode sessions
// serialise exactly as before.
impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("served".to_string(), self.served.to_value()),
            ("errors".to_string(), self.errors.to_value()),
        ];
        if self.internal_errors != 0 {
            fields.push((
                "internal_errors".to_string(),
                self.internal_errors.to_value(),
            ));
        }
        fields.extend([
            (
                "sessions_created".to_string(),
                self.sessions_created.to_value(),
            ),
            ("session_hits".to_string(), self.session_hits.to_value()),
            ("session_misses".to_string(), self.session_misses.to_value()),
            ("evictions".to_string(), self.evictions.to_value()),
            ("cache".to_string(), self.cache.to_value()),
        ]);
        if let Some(trace) = &self.trace {
            fields.push(("trace".to_string(), trace.to_value()));
        }
        if let Some(connection) = &self.connection {
            fields.push(("connection".to_string(), connection.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for ServerStats {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let internal_errors = match value.get("internal_errors") {
            None => 0,
            Some(raw) => u64::from_value(raw)?,
        };
        let trace = match value.get("trace") {
            None => None,
            Some(raw) => Option::<TraceSummary>::from_value(raw)?,
        };
        let connection = match value.get("connection") {
            None => None,
            Some(raw) => Option::<ConnectionStats>::from_value(raw)?,
        };
        Ok(ServerStats {
            served: serde::get_field(value, "served", "ServerStats")?,
            errors: serde::get_field(value, "errors", "ServerStats")?,
            internal_errors,
            sessions_created: serde::get_field(value, "sessions_created", "ServerStats")?,
            session_hits: serde::get_field(value, "session_hits", "ServerStats")?,
            session_misses: serde::get_field(value, "session_misses", "ServerStats")?,
            evictions: serde::get_field(value, "evictions", "ServerStats")?,
            cache: serde::get_field(value, "cache", "ServerStats")?,
            trace,
            connection,
        })
    }
}

/// One line of server output.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// A request succeeded.
    Result(ResultFrame),
    /// A request (or input line) failed.
    Error(ErrorFrame),
    /// The stream drained; statistics of the whole session. Always the
    /// last frame.
    Bye(ServerStats),
}

impl Serialize for ServerFrame {
    fn to_value(&self) -> Value {
        match self {
            ServerFrame::Result(frame) => tagged("Result", frame.to_value()),
            ServerFrame::Error(frame) => tagged("Error", frame.to_value()),
            ServerFrame::Bye(stats) => tagged("Bye", stats.to_value()),
        }
    }
}

impl Deserialize for ServerFrame {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let (tag, body) = untag(value, "ServerFrame")?;
        match tag {
            "Result" => Ok(ServerFrame::Result(ResultFrame::from_value(body)?)),
            "Error" => Ok(ServerFrame::Error(ErrorFrame::from_value(body)?)),
            "Bye" => {
                expect_fields(
                    body,
                    &[
                        "served",
                        "errors",
                        "internal_errors",
                        "sessions_created",
                        "session_hits",
                        "session_misses",
                        "evictions",
                        "cache",
                        "trace",
                        "connection",
                    ],
                    "ServerFrame::Bye",
                )?;
                Ok(ServerFrame::Bye(ServerStats::from_value(body)?))
            }
            other => Err(SerdeError::custom(format!(
                "unknown variant `{other}` for ServerFrame"
            ))),
        }
    }
}

/// Parses one line of client input.
///
/// # Errors
///
/// A human-readable message on malformed JSON, unknown variants, and
/// unknown/duplicate/missing fields — rendered back to the client in a
/// [`ErrorKind::Protocol`] frame.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, String> {
    serde_json::from_str(line).map_err(|err| format!("malformed frame: {err}"))
}

/// Renders one server frame as its single NDJSON line (no trailing
/// newline — the writer adds it).
///
/// # Panics
///
/// Panics if the frame contains a non-finite float (the optimizer never
/// produces one).
pub fn render_server_frame(frame: &ServerFrame) -> String {
    serde_json::to_string(frame).expect("server frames serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepAxis;
    use crate::problem::OptimizerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_tam::TamError;

    fn sample_request() -> OptimizeRequest {
        let cell = TestCell::new(
            AteSpec::new(64, 16 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        OptimizeRequest::new(OptimizerConfig::new(cell))
    }

    #[test]
    fn client_frames_round_trip() {
        let frames = [
            ClientFrame::Optimize(OptimizeFrame {
                request_id: "r1".into(),
                soc: SocSpec::Named("d695".into()),
                request: sample_request(),
                deadline_ms: Some(250),
                stats: false,
            }),
            ClientFrame::Optimize(OptimizeFrame {
                request_id: "r2".into(),
                soc: SocSpec::Inline("soc t\n".into()),
                request: sample_request().with_sweep(SweepAxis::Channels(vec![32, 64])),
                deadline_ms: None,
                stats: true,
            }),
            ClientFrame::Cancel {
                request_id: "r1".into(),
            },
            ClientFrame::Shutdown,
        ];
        for frame in &frames {
            let json = serde_json::to_string(frame).unwrap();
            let back = parse_client_frame(&json).unwrap();
            assert_eq!(&back, frame, "round trip failed for {json}");
        }
        assert_eq!(
            serde_json::to_string(&ClientFrame::Shutdown).unwrap(),
            "\"Shutdown\""
        );
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Error(ErrorFrame::protocol("bad line")),
            ServerFrame::Error(ErrorFrame::from_error(
                "r9",
                &OptimizeError::Architecture(TamError::EmptySoc),
            )),
            ServerFrame::Error(ErrorFrame {
                request_id: Some("r3".into()),
                kind: ErrorKind::Overloaded,
                message: "queue full".into(),
            }),
            ServerFrame::Bye(ServerStats {
                served: 4,
                errors: 1,
                internal_errors: 0,
                sessions_created: 2,
                session_hits: 3,
                session_misses: 2,
                evictions: 1,
                cache: CacheStats {
                    result_hits: 2,
                    result_misses: 2,
                    coalesced_waits: 1,
                    coalesced_served: 1,
                    result_bytes: 4096,
                    cells_computed: 77,
                    store_cells_loaded: 11,
                    store_rows_saved: 5,
                },
                trace: None,
                connection: None,
            }),
            ServerFrame::Bye(ServerStats {
                served: 1,
                trace: Some(TraceSummary {
                    requests: 1,
                    cells_built: 640,
                    cells_inherited: 0,
                    store_cells_computed: 320,
                }),
                ..ServerStats::default()
            }),
            ServerFrame::Bye(ServerStats {
                served: 2,
                errors: 1,
                internal_errors: 1,
                connection: Some(ConnectionStats { id: 3, requests: 3 }),
                ..ServerStats::default()
            }),
        ];
        for frame in &frames {
            let json = render_server_frame(frame);
            let back: ServerFrame = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, frame, "round trip failed for {json}");
        }
    }

    #[test]
    fn stats_flag_and_blocks_are_omitted_when_off() {
        // A stats-off Optimize frame must serialise without a `stats`
        // key at all — stats-unaware clients and goldens see identical
        // bytes.
        let off = ClientFrame::Optimize(OptimizeFrame {
            request_id: "r1".into(),
            soc: SocSpec::Named("d695".into()),
            request: sample_request(),
            deadline_ms: None,
            stats: false,
        });
        let rendered = serde_json::to_string(&off).unwrap();
        assert!(!rendered.contains("\"stats\""), "{rendered}");
        // ...and an explicit `"stats":true` round-trips.
        let on = rendered.replace(
            "\"deadline_ms\":null}",
            "\"deadline_ms\":null,\"stats\":true}",
        );
        match parse_client_frame(&on).unwrap() {
            ClientFrame::Optimize(frame) => assert!(frame.stats),
            other => panic!("unexpected frame {other:?}"),
        }
        // Result frames omit an absent block and round-trip a present
        // one; Bye omits an absent trace summary.
        let result = ServerFrame::Result(ResultFrame {
            request_id: "r1".into(),
            warm: false,
            cached: true,
            response: OptimizeResponse::Curves(vec![]),
            stats: None,
        });
        assert!(!render_server_frame(&result).contains("\"stats\""));
        let with_stats = ServerFrame::Result(ResultFrame {
            request_id: "r1".into(),
            warm: true,
            cached: false,
            response: OptimizeResponse::Curves(vec![]),
            stats: Some(RequestStats {
                provenance: Provenance::Computed,
                cells_built: 9,
                cells_inherited: 2,
                store_cells_computed: 7,
                points_reused: 0,
            }),
        });
        let json = render_server_frame(&with_stats);
        assert!(json.contains("\"provenance\":\"Computed\""), "{json}");
        let back: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, with_stats);
        let bye = render_server_frame(&ServerFrame::Bye(ServerStats::default()));
        assert!(!bye.contains("\"trace\""), "{bye}");
        // The connection-scoped fields are likewise omitted by default —
        // a healthy stdin-mode Bye serialises exactly as before.
        assert!(!bye.contains("\"internal_errors\""), "{bye}");
        assert!(!bye.contains("\"connection\""), "{bye}");
        let socket_bye = render_server_frame(&ServerFrame::Bye(ServerStats {
            internal_errors: 2,
            connection: Some(ConnectionStats { id: 1, requests: 5 }),
            ..ServerStats::default()
        }));
        assert!(socket_bye.contains("\"internal_errors\":2"), "{socket_bye}");
        assert!(
            socket_bye.contains("\"connection\":{\"id\":1,\"requests\":5}"),
            "{socket_bye}"
        );
    }

    #[test]
    fn deadline_may_be_omitted_but_other_fields_may_not() {
        let json = r#"{"Optimize":{"request_id":"r1","soc":{"Named":"d695"},"request":REQ}}"#
            .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        let frame = parse_client_frame(&json).unwrap();
        match frame {
            ClientFrame::Optimize(inner) => assert_eq!(inner.deadline_ms, None),
            other => panic!("unexpected frame {other:?}"),
        }
        let missing_id = r#"{"Optimize":{"soc":{"Named":"d695"},"request":REQ}}"#
            .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        assert!(parse_client_frame(&missing_id)
            .unwrap_err()
            .contains("request_id"));
    }

    #[test]
    fn unknown_fields_are_rejected_at_frame_level() {
        let json =
            r#"{"Optimize":{"request_id":"r1","soc":{"Named":"d695"},"request":REQ,"deadine_ms":5}}"#
                .replace("REQ", &serde_json::to_string(&sample_request()).unwrap());
        let err = parse_client_frame(&json).unwrap_err();
        assert!(err.contains("deadine_ms"), "got: {err}");
        assert!(
            parse_client_frame(r#"{"Cancel":{"request_id":"r1","force":true}}"#)
                .unwrap_err()
                .contains("force")
        );
    }

    #[test]
    fn truncated_and_malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"Optimize\":",
            "\"Shutdow\"",
            "{\"Nope\":{}}",
            "[1,2,3]",
            "{\"Cancel\":{}}",
        ] {
            assert!(parse_client_frame(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn error_kind_maps_every_optimizer_error() {
        let cases = [
            (
                OptimizeError::Architecture(TamError::EmptySoc),
                ErrorKind::Architecture,
            ),
            (
                OptimizeError::InvalidConfig {
                    message: "x".into(),
                },
                ErrorKind::InvalidConfig,
            ),
            (
                OptimizeError::InvalidSoc { issues: vec![] },
                ErrorKind::InvalidSoc,
            ),
            (OptimizeError::internal("x"), ErrorKind::Internal),
            (OptimizeError::Cancelled, ErrorKind::Cancelled),
            (OptimizeError::DeadlineExceeded, ErrorKind::DeadlineExceeded),
            (OptimizeError::Overloaded, ErrorKind::Overloaded),
        ];
        for (error, kind) in cases {
            assert_eq!(ErrorKind::from(&error), kind);
            let frame = ErrorFrame::from_error("r1", &error);
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.message, error.to_string());
        }
    }
}
