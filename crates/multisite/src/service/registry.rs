//! The warm-session registry: content-hash-keyed LRU of [`Engine`]s with
//! memory accounting.
//!
//! The service holds one engine per distinct SOC *content*: the key is an
//! FNV-1a hash of the canonical [`write_soc`] rendering, so an inline
//! `.soc` document and a named benchmark with identical content share one
//! warm session (same table, same cached cells) regardless of how the
//! client spelled them. Sessions are evicted least-recently-used when the
//! registry exceeds its session-count or memory cap; memory is charged as
//! each engine's [`Engine::table_memory_bytes`] estimate and re-assessed
//! after every request (tables grow on demand). The most recently used
//! session is never evicted — a single session larger than the whole cap
//! is allowed to exist alone, it just prevents any second resident
//! session.

use crate::engine::Engine;
use crate::error::OptimizeError;
use soctest_soc_model::writer::write_soc;
use soctest_soc_model::Soc;
use soctest_tam::RowStore;
use std::sync::{Arc, Mutex, PoisonError};

/// FNV-1a 64-bit over the canonical SOC text — stable, dependency-free,
/// and plenty for distinguishing SOC descriptions (collisions would only
/// merge two sessions, never corrupt results... except they would serve
/// the wrong SOC, so the registry double-checks the canonical text on
/// hash hits).
pub(crate) fn fnv1a64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One resident session.
#[derive(Debug)]
struct SessionSlot {
    /// FNV-1a of `canonical` (the lookup fast path).
    hash: u64,
    /// The canonical `.soc` text (the collision-proof identity).
    canonical: String,
    /// The warm engine.
    engine: Arc<Engine>,
    /// Last-assessed [`Engine::table_memory_bytes`].
    bytes: u64,
}

/// Registry counters, exposed for the service's `Bye` statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegistryStats {
    /// Requests that found their session resident.
    pub hits: u64,
    /// Requests that had to build a session.
    pub misses: u64,
    /// Sessions built (equals `misses`; kept separate for clarity).
    pub created: u64,
    /// Sessions evicted by the LRU / memory cap.
    pub evictions: u64,
    /// Currently charged bytes across all resident sessions.
    pub current_bytes: u64,
}

/// A successful [`SessionRegistry::get_or_build`]: the engine to run on,
/// whether it was already warm, and the key for the post-run
/// [`SessionRegistry::reassess`].
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The (shared) engine session.
    pub engine: Arc<Engine>,
    /// `true` when the session was already resident.
    pub warm: bool,
    /// The session's content-hash key.
    pub key: u64,
}

/// An LRU of warm [`Engine`] sessions keyed by SOC content hash, bounded
/// by a session count and a memory cap. See the [module docs](self).
#[derive(Debug)]
pub struct SessionRegistry {
    /// Slots in LRU order: index 0 is the coldest.
    inner: Mutex<RegistryInner>,
    max_sessions: usize,
    max_table_bytes: u64,
    /// When set, every built engine shares this row store, so module
    /// time rows survive session eviction and are shared across SOCs
    /// with equal-shaped modules.
    row_store: Option<Arc<RowStore>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    slots: Vec<SessionSlot>,
    stats: RegistryStats,
}

impl SessionRegistry {
    /// An empty registry holding at most `max_sessions` sessions and at
    /// most `max_table_bytes` of charged table memory (both clamped to at
    /// least one session).
    pub fn new(max_sessions: usize, max_table_bytes: u64) -> Self {
        SessionRegistry {
            inner: Mutex::new(RegistryInner::default()),
            max_sessions: max_sessions.max(1),
            max_table_bytes,
            row_store: None,
        }
    }

    /// Like [`SessionRegistry::new`], but every built engine shares
    /// `store` for its module time rows (see
    /// [`crate::engine::EngineBuilder::row_store`]): evicting and
    /// rebuilding a session no longer loses its computed cells.
    pub fn with_row_store(max_sessions: usize, max_table_bytes: u64, store: Arc<RowStore>) -> Self {
        SessionRegistry {
            row_store: Some(store),
            ..SessionRegistry::new(max_sessions, max_table_bytes)
        }
    }

    /// Returns the warm session for `soc`'s content, building (and
    /// admitting) one if absent. Eviction runs after an admission.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::InvalidSoc`] when a fresh build is needed and the
    /// SOC fails validation (via [`crate::engine::EngineBuilder::try_build`]) —
    /// nothing is admitted in that case.
    pub fn get_or_build(&self, soc: &Soc) -> Result<SessionHandle, OptimizeError> {
        let canonical = write_soc(soc);
        let hash = fnv1a64(&canonical);
        let mut inner = self.lock();
        if let Some(position) = inner
            .slots
            .iter()
            .position(|slot| slot.hash == hash && slot.canonical == canonical)
        {
            // Touch: move to the hot end.
            let slot = inner.slots.remove(position);
            let engine = Arc::clone(&slot.engine);
            inner.slots.push(slot);
            inner.stats.hits += 1;
            return Ok(SessionHandle {
                engine,
                warm: true,
                key: hash,
            });
        }

        inner.stats.misses += 1;
        let mut builder = Engine::builder(soc);
        if let Some(store) = &self.row_store {
            builder = builder.row_store(Arc::clone(store));
        }
        let engine = Arc::new(builder.try_build()?);
        inner.stats.created += 1;
        let bytes = engine.table_memory_bytes();
        inner.slots.push(SessionSlot {
            hash,
            canonical,
            engine: Arc::clone(&engine),
            bytes,
        });
        self.evict_over_caps(&mut inner);
        Ok(SessionHandle {
            engine,
            warm: false,
            key: hash,
        })
    }

    /// Re-assesses a session's memory charge after a request ran (its
    /// table may have grown or been rebuilt wider) and re-applies the
    /// caps. A no-op for sessions already evicted.
    pub fn reassess(&self, key: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.iter_mut().find(|slot| slot.hash == key) {
            slot.bytes = slot.engine.table_memory_bytes();
        }
        self.evict_over_caps(&mut inner);
    }

    /// Current counters (bytes recomputed from the resident slots).
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.current_bytes = inner.slots.iter().map(|slot| slot.bytes).sum();
        stats
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts coldest-first while over either cap, always sparing the
    /// hottest slot.
    fn evict_over_caps(&self, inner: &mut RegistryInner) {
        loop {
            let total: u64 = inner.slots.iter().map(|slot| slot.bytes).sum();
            let over = inner.slots.len() > self.max_sessions || total > self.max_table_bytes;
            if !over || inner.slots.len() <= 1 {
                break;
            }
            inner.slots.remove(0);
            inner.stats.evictions += 1;
        }
    }

    // A panicking request can never leave the registry mid-mutation (all
    // mutations happen outside the optimizer's unwind path), so poisoning
    // only records that *some* thread panicked — recover the data.
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::benchmarks::{d695, p22810};
    use soctest_soc_model::{Module, Soc};

    #[test]
    fn same_content_shares_a_session_across_spellings() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let first = registry.get_or_build(&d695()).unwrap();
        assert!(!first.warm);
        // A re-parsed copy has identical canonical text.
        let reparsed =
            soctest_soc_model::parser::parse_soc(&write_soc(&d695())).expect("round trip");
        let second = registry.get_or_build(&reparsed).unwrap();
        assert!(second.warm);
        assert!(Arc::ptr_eq(&first.engine, &second.engine));
        assert_eq!(registry.len(), 1);
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.created), (1, 1, 1));
    }

    #[test]
    fn session_cap_evicts_least_recently_used() {
        let registry = SessionRegistry::new(2, u64::MAX);
        registry.get_or_build(&d695()).unwrap(); // [d695]
        registry.get_or_build(&p22810()).unwrap(); // [d695, p22810]
        assert!(registry.get_or_build(&d695()).unwrap().warm); // [p22810, d695]
        let mut third = Soc::new("third");
        third.push_module(
            Module::builder("m")
                .patterns(3)
                .inputs(2)
                .outputs(2)
                .build(),
        );
        registry.get_or_build(&third).unwrap(); // evicts p22810
        assert_eq!(registry.len(), 2);
        assert!(registry.get_or_build(&d695()).unwrap().warm);
        assert!(!registry.get_or_build(&p22810()).unwrap().warm);
        assert!(registry.stats().evictions >= 1);
    }

    #[test]
    fn memory_cap_keeps_at_most_the_hottest_session() {
        let registry = SessionRegistry::new(8, 1); // 1 byte: everything is oversized
        assert!(!registry.get_or_build(&d695()).unwrap().warm);
        // The single oversized session stays resident (never evict the
        // hottest slot) — so a re-request is warm...
        assert!(registry.get_or_build(&d695()).unwrap().warm);
        // ...but admitting a second SOC evicts the first.
        assert!(!registry.get_or_build(&p22810()).unwrap().warm);
        assert_eq!(registry.len(), 1);
        assert!(!registry.get_or_build(&d695()).unwrap().warm);
    }

    #[test]
    fn invalid_soc_is_rejected_and_not_admitted() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let err = registry.get_or_build(&Soc::new("empty")).unwrap_err();
        assert!(matches!(err, OptimizeError::InvalidSoc { .. }));
        assert!(registry.is_empty());
        let stats = registry.stats();
        assert_eq!(stats.created, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn reassess_recharges_grown_tables() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let handle = registry.get_or_build(&d695()).unwrap();
        let before = registry.stats().current_bytes;
        // Widen the table by serving a request.
        use crate::engine::OptimizeRequest;
        use crate::problem::OptimizerConfig;
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        handle
            .engine
            .run(&OptimizeRequest::new(OptimizerConfig::new(cell)))
            .unwrap();
        registry.reassess(handle.key);
        assert!(registry.stats().current_bytes > before);
    }

    #[test]
    fn shared_row_store_survives_eviction_and_rebuild() {
        use crate::engine::OptimizeRequest;
        use crate::problem::OptimizerConfig;
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        let store = Arc::new(RowStore::new());
        let registry = SessionRegistry::with_row_store(1, u64::MAX, Arc::clone(&store));
        let cell = TestCell::new(
            AteSpec::new(128, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let request = OptimizeRequest::new(OptimizerConfig::new(cell));
        let first = registry.get_or_build(&d695()).unwrap();
        let expected = first.engine.run(&request).unwrap();
        let computed_cold = store.stats().cells_computed;
        assert!(computed_cold > 0);
        // Evict d695 by admitting a second SOC into the 1-session cap...
        registry.get_or_build(&p22810()).unwrap();
        // ...then rebuild it: the fresh engine pulls every cell from the
        // shared store instead of recomputing, bit-identically.
        let rebuilt = registry.get_or_build(&d695()).unwrap();
        assert!(!rebuilt.warm);
        assert_eq!(rebuilt.engine.run(&request).unwrap(), expected);
        assert_eq!(store.stats().cells_computed, computed_cold);
    }

    #[test]
    fn fnv_hash_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("soc a\n"), fnv1a64("soc b\n"));
    }
}
