//! The warm-session registry: content-hash-keyed LRU of [`Engine`]s with
//! memory accounting.
//!
//! The service holds one engine per distinct SOC *content*: the key is an
//! FNV-1a hash of the canonical [`write_soc`] rendering, so an inline
//! `.soc` document and a named benchmark with identical content share one
//! warm session (same table, same cached cells) regardless of how the
//! client spelled them. Sessions are evicted least-recently-used when the
//! registry exceeds its session-count or memory cap; memory is charged as
//! each engine's [`Engine::table_memory_bytes`] estimate and re-assessed
//! after every request (tables grow on demand). The most recently used
//! session is never evicted — a single session larger than the whole cap
//! is allowed to exist alone, it just prevents any second resident
//! session.
//!
//! Cold builds are *coalesced*, not serialised: the registry lock is
//! released for the whole cold build
//! ([`EngineBuilder::try_build`](crate::engine::EngineBuilder::try_build)),
//! with a per-key in-flight
//! marker (the same leader/waiter protocol as
//! [`crate::service::cache::SolutionCache`]) keeping duplicate builders
//! of one SOC behind a single leader while distinct SOCs build
//! concurrently. One slow cold build therefore never blocks a warm hit,
//! and a failing or panicking leader releases its waiters to retry.

use crate::engine::Engine;
use crate::error::OptimizeError;
use crate::service::cache::{SessionPointMemo, SolutionCache};
use crate::service::faults::{FaultPlan, Stage};
use soctest_soc_model::writer::write_soc;
use soctest_soc_model::Soc;
use soctest_tam::RowStore;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// How long a waiter sleeps between re-checks of the slots while an
/// identical cold build is in flight. Purely a latency bound on rare
/// wake-up races: the leader's guard notifies the condvar the moment
/// the build lands (or fails).
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// FNV-1a 64-bit over the canonical SOC text — stable, dependency-free,
/// and plenty for distinguishing SOC descriptions (collisions would only
/// merge two sessions, never corrupt results... except they would serve
/// the wrong SOC, so the registry double-checks the canonical text on
/// hash hits).
pub(crate) fn fnv1a64(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One resident session.
#[derive(Debug)]
struct SessionSlot {
    /// FNV-1a of `canonical` (the lookup fast path).
    hash: u64,
    /// The canonical `.soc` text (the collision-proof identity), shared
    /// with every [`SessionHandle`] so the post-run
    /// [`SessionRegistry::reassess`] can match the full key cheaply.
    canonical: Arc<str>,
    /// The warm engine.
    engine: Arc<Engine>,
    /// Last-assessed [`Engine::table_memory_bytes`].
    bytes: u64,
}

/// Registry counters, exposed for the service's `Bye` statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegistryStats {
    /// Requests that found their session resident.
    pub hits: u64,
    /// Requests that had to build a session.
    pub misses: u64,
    /// Sessions built (equals `misses`; kept separate for clarity).
    pub created: u64,
    /// Sessions evicted by the LRU / memory cap.
    pub evictions: u64,
    /// Currently charged bytes across all resident sessions.
    pub current_bytes: u64,
    /// Requests that blocked at least once on an identical in-flight
    /// cold build instead of starting their own.
    pub coalesced_builds: u64,
}

/// A successful [`SessionRegistry::get_or_build`]: the engine to run on,
/// whether it was already warm, and the key for the post-run
/// [`SessionRegistry::reassess`].
#[derive(Debug, Clone)]
pub struct SessionHandle {
    /// The (shared) engine session.
    pub engine: Arc<Engine>,
    /// `true` when the session was already resident.
    pub warm: bool,
    /// The session's content-hash key.
    pub key: u64,
    /// The canonical `.soc` text behind `key` — the collision-proof half
    /// of the session identity, which [`SessionRegistry::reassess`]
    /// matches alongside the hash.
    pub canonical: Arc<str>,
}

/// An LRU of warm [`Engine`] sessions keyed by SOC content hash, bounded
/// by a session count and a memory cap. See the [module docs](self).
#[derive(Debug)]
pub struct SessionRegistry {
    /// Slots in LRU order: index 0 is the coldest.
    inner: Mutex<RegistryInner>,
    /// Signalled whenever a cold-build leader finishes (successfully or
    /// not) so waiters re-check the slots.
    build_ready: Condvar,
    max_sessions: usize,
    max_table_bytes: u64,
    /// When set, every built engine shares this row store, so module
    /// time rows survive session eviction and are shared across SOCs
    /// with equal-shaped modules.
    row_store: Option<Arc<RowStore>>,
    /// When set, every built engine gets a point-level memo view of this
    /// cache bound to its SOC hash, so sweep points and plain requests
    /// share one `(soc, canonical config)` namespace.
    solution_cache: Option<Arc<SolutionCache>>,
    /// The armed fault plan ([`Stage::Build`] fires on the cold-build
    /// path); empty in production.
    faults: FaultPlan,
}

#[derive(Debug, Default)]
struct RegistryInner {
    slots: Vec<SessionSlot>,
    /// Keys whose cold build is currently led by some caller.
    inflight: Vec<(u64, Arc<str>)>,
    stats: RegistryStats,
}

impl SessionRegistry {
    /// An empty registry holding at most `max_sessions` sessions and at
    /// most `max_table_bytes` of charged table memory (both clamped to at
    /// least one session).
    pub fn new(max_sessions: usize, max_table_bytes: u64) -> Self {
        SessionRegistry {
            inner: Mutex::new(RegistryInner::default()),
            build_ready: Condvar::new(),
            max_sessions: max_sessions.max(1),
            max_table_bytes,
            row_store: None,
            solution_cache: None,
            faults: FaultPlan::default(),
        }
    }

    /// Arms `faults` on this registry's cold-build path
    /// ([`Stage::Build`] fires with the SOC name as the pseudo request
    /// id, after the in-flight marker is planted and the lock released).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Gives every engine built by this registry a point-level memo view
    /// of `cache` bound to its SOC hash (see
    /// [`crate::engine::EngineBuilder::point_memo`]): sweep points and
    /// plain requests then share one `(soc, canonical config)` namespace.
    #[must_use]
    pub fn with_solution_cache(mut self, cache: Arc<SolutionCache>) -> Self {
        self.solution_cache = Some(cache);
        self
    }

    /// Like [`SessionRegistry::new`], but every built engine shares
    /// `store` for its module time rows (see
    /// [`crate::engine::EngineBuilder::row_store`]): evicting and
    /// rebuilding a session no longer loses its computed cells.
    pub fn with_row_store(max_sessions: usize, max_table_bytes: u64, store: Arc<RowStore>) -> Self {
        SessionRegistry {
            row_store: Some(store),
            ..SessionRegistry::new(max_sessions, max_table_bytes)
        }
    }

    /// Returns the warm session for `soc`'s content, building (and
    /// admitting) one if absent. Eviction runs after an admission.
    ///
    /// # Errors
    ///
    /// [`OptimizeError::InvalidSoc`] when a fresh build is needed and the
    /// SOC fails validation (via [`crate::engine::EngineBuilder::try_build`]) —
    /// nothing is admitted in that case.
    pub fn get_or_build(&self, soc: &Soc) -> Result<SessionHandle, OptimizeError> {
        let canonical: Arc<str> = write_soc(soc).into();
        let hash = fnv1a64(&canonical);
        let mut waited = false;
        let mut inner = self.lock();
        loop {
            if let Some(position) = inner
                .slots
                .iter()
                .position(|slot| slot.hash == hash && slot.canonical == canonical)
            {
                // Touch: move to the hot end. A waiter that wakes to
                // find the leader's slot counts as a plain hit — same
                // observable outcome as the old serialized behaviour.
                let slot = inner.slots.remove(position);
                let engine = Arc::clone(&slot.engine);
                inner.slots.push(slot);
                inner.stats.hits += 1;
                return Ok(SessionHandle {
                    engine,
                    warm: true,
                    key: hash,
                    canonical,
                });
            }

            let in_flight = inner
                .inflight
                .iter()
                .any(|(h, c)| *h == hash && *c == canonical);
            if in_flight {
                // An identical build is running: wait for its guard to
                // notify, then re-check. A failed leader leaves no slot,
                // so the next waiter through becomes the new leader.
                if !waited {
                    waited = true;
                    inner.stats.coalesced_builds += 1;
                }
                inner = self
                    .build_ready
                    .wait_timeout(inner, WAIT_SLICE)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
                continue;
            }

            // Lead: plant the in-flight marker, drop the lock, build.
            inner.stats.misses += 1;
            inner.inflight.push((hash, Arc::clone(&canonical)));
            drop(inner);
            let _guard = BuildGuard {
                registry: self,
                hash,
                canonical: Arc::clone(&canonical),
            };
            // The guard's Drop clears the marker and wakes waiters on
            // the error return below and on unwind alike.
            let engine = Arc::new(self.build_engine(soc, hash)?);
            let bytes = engine.table_memory_bytes();
            let mut inner = self.lock();
            // Double-checked insert: never stack a duplicate slot.
            inner
                .slots
                .retain(|slot| !(slot.hash == hash && slot.canonical == canonical));
            inner.stats.created += 1;
            inner.slots.push(SessionSlot {
                hash,
                canonical: Arc::clone(&canonical),
                engine: Arc::clone(&engine),
                bytes,
            });
            self.evict_over_caps(&mut inner);
            drop(inner);
            return Ok(SessionHandle {
                engine,
                warm: false,
                key: hash,
                canonical,
            });
        }
    }

    /// The lock-free part of a cold build: fire the [`Stage::Build`]
    /// fault (keyed by SOC name), then run [`Engine::try_build`] wired
    /// to the shared row store and solution cache.
    fn build_engine(&self, soc: &Soc, hash: u64) -> Result<Engine, OptimizeError> {
        self.faults.fire(Stage::Build, soc.name());
        let mut builder = Engine::builder(soc);
        if let Some(store) = &self.row_store {
            builder = builder.row_store(Arc::clone(store));
        }
        if let Some(cache) = &self.solution_cache {
            builder = builder.point_memo(Arc::new(SessionPointMemo::new(Arc::clone(cache), hash)));
        }
        builder.try_build()
    }

    /// Re-assesses a session's memory charge after a request ran (its
    /// table may have grown or been rebuilt wider) and re-applies the
    /// caps. A no-op for sessions already evicted. Matches the full
    /// `(hash, canonical)` key — on an FNV-1a collision the charge must
    /// land on the session that actually ran, not a hash twin.
    pub fn reassess(&self, key: u64, canonical: &str) {
        let mut inner = self.lock();
        if let Some(slot) = inner
            .slots
            .iter_mut()
            .find(|slot| slot.hash == key && slot.canonical.as_ref() == canonical)
        {
            slot.bytes = slot.engine.table_memory_bytes();
        }
        self.evict_over_caps(&mut inner);
    }

    /// Current counters (bytes recomputed from the resident slots).
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        let mut stats = inner.stats;
        stats.current_bytes = inner.slots.iter().map(|slot| slot.bytes).sum();
        stats
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Whether no session is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts coldest-first while over either cap, always sparing the
    /// hottest slot.
    fn evict_over_caps(&self, inner: &mut RegistryInner) {
        loop {
            let total: u64 = inner.slots.iter().map(|slot| slot.bytes).sum();
            let over = inner.slots.len() > self.max_sessions || total > self.max_table_bytes;
            if !over || inner.slots.len() <= 1 {
                break;
            }
            inner.slots.remove(0);
            inner.stats.evictions += 1;
        }
    }

    // A panicking request can never leave the registry mid-mutation (all
    // mutations happen outside the optimizer's unwind path), so poisoning
    // only records that *some* thread panicked — recover the data.
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Clears the leader's in-flight marker and wakes waiters, whether the
/// build succeeded, returned an error, or panicked.
struct BuildGuard<'a> {
    registry: &'a SessionRegistry,
    hash: u64,
    canonical: Arc<str>,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.registry.lock();
        inner
            .inflight
            .retain(|(h, c)| !(*h == self.hash && *c == self.canonical));
        drop(inner);
        self.registry.build_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctest_soc_model::benchmarks::{d695, p22810};
    use soctest_soc_model::{Module, Soc};

    #[test]
    fn same_content_shares_a_session_across_spellings() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let first = registry.get_or_build(&d695()).unwrap();
        assert!(!first.warm);
        // A re-parsed copy has identical canonical text.
        let reparsed =
            soctest_soc_model::parser::parse_soc(&write_soc(&d695())).expect("round trip");
        let second = registry.get_or_build(&reparsed).unwrap();
        assert!(second.warm);
        assert!(Arc::ptr_eq(&first.engine, &second.engine));
        assert_eq!(registry.len(), 1);
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.created), (1, 1, 1));
    }

    #[test]
    fn session_cap_evicts_least_recently_used() {
        let registry = SessionRegistry::new(2, u64::MAX);
        registry.get_or_build(&d695()).unwrap(); // [d695]
        registry.get_or_build(&p22810()).unwrap(); // [d695, p22810]
        assert!(registry.get_or_build(&d695()).unwrap().warm); // [p22810, d695]
        let mut third = Soc::new("third");
        third.push_module(
            Module::builder("m")
                .patterns(3)
                .inputs(2)
                .outputs(2)
                .build(),
        );
        registry.get_or_build(&third).unwrap(); // evicts p22810
        assert_eq!(registry.len(), 2);
        assert!(registry.get_or_build(&d695()).unwrap().warm);
        assert!(!registry.get_or_build(&p22810()).unwrap().warm);
        assert!(registry.stats().evictions >= 1);
    }

    #[test]
    fn memory_cap_keeps_at_most_the_hottest_session() {
        let registry = SessionRegistry::new(8, 1); // 1 byte: everything is oversized
        assert!(!registry.get_or_build(&d695()).unwrap().warm);
        // The single oversized session stays resident (never evict the
        // hottest slot) — so a re-request is warm...
        assert!(registry.get_or_build(&d695()).unwrap().warm);
        // ...but admitting a second SOC evicts the first.
        assert!(!registry.get_or_build(&p22810()).unwrap().warm);
        assert_eq!(registry.len(), 1);
        assert!(!registry.get_or_build(&d695()).unwrap().warm);
    }

    #[test]
    fn invalid_soc_is_rejected_and_not_admitted() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let err = registry.get_or_build(&Soc::new("empty")).unwrap_err();
        assert!(matches!(err, OptimizeError::InvalidSoc { .. }));
        assert!(registry.is_empty());
        let stats = registry.stats();
        assert_eq!(stats.created, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn reassess_recharges_grown_tables() {
        let registry = SessionRegistry::new(4, u64::MAX);
        let handle = registry.get_or_build(&d695()).unwrap();
        let before = registry.stats().current_bytes;
        // Widen the table by serving a request.
        use crate::engine::OptimizeRequest;
        use crate::problem::OptimizerConfig;
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        handle
            .engine
            .run(&OptimizeRequest::new(OptimizerConfig::new(cell)))
            .unwrap();
        registry.reassess(handle.key, &handle.canonical);
        assert!(registry.stats().current_bytes > before);
    }

    #[test]
    fn reassess_matches_the_full_key_not_just_the_hash() {
        // Force a hash collision by inserting two slots under the same
        // fake hash with different canonical texts: reassessing one must
        // not recharge (or evict through) the other.
        let registry = SessionRegistry::new(4, u64::MAX);
        // Two *instances* (the SOC content is irrelevant here — the slot
        // keys are faked below, only the tables' charges matter).
        let engine_a = Arc::new(Engine::builder(&d695()).try_build().unwrap());
        let engine_b = Arc::new(Engine::builder(&d695()).try_build().unwrap());
        {
            let mut inner = registry.lock();
            inner.slots.push(SessionSlot {
                hash: 42,
                canonical: "a".into(),
                engine: Arc::clone(&engine_a),
                bytes: 7,
            });
            inner.slots.push(SessionSlot {
                hash: 42,
                canonical: "b".into(),
                engine: Arc::clone(&engine_b),
                bytes: 7,
            });
        }
        // Widen b's table by serving a request on it.
        use crate::engine::OptimizeRequest;
        use crate::problem::OptimizerConfig;
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        engine_b
            .run(&OptimizeRequest::new(OptimizerConfig::new(cell)))
            .unwrap();
        registry.reassess(42, "b");
        let inner = registry.lock();
        let charge = |canonical: &str| {
            inner
                .slots
                .iter()
                .find(|slot| slot.canonical.as_ref() == canonical)
                .map(|slot| slot.bytes)
                .unwrap()
        };
        assert_eq!(charge("a"), 7, "hash twin must keep its stale charge");
        assert!(charge("b") > 7, "the session that ran must be recharged");
    }

    #[test]
    fn concurrent_cold_builds_of_distinct_socs_overlap() {
        use std::time::Instant;
        let plan = FaultPlan::parse("build:delay:600").unwrap();
        let registry = Arc::new(SessionRegistry::new(4, u64::MAX).with_faults(plan));
        let start = Instant::now();
        std::thread::scope(|scope| {
            let r1 = Arc::clone(&registry);
            let r2 = Arc::clone(&registry);
            let a = scope.spawn(move || r1.get_or_build(&d695()).unwrap());
            let b = scope.spawn(move || r2.get_or_build(&p22810()).unwrap());
            a.join().unwrap();
            b.join().unwrap();
        });
        let elapsed = start.elapsed();
        // Serialized builds would take >= 1200ms of injected delay alone;
        // concurrent ones pay it once (plus real build time).
        assert!(
            elapsed < Duration::from_millis(1100),
            "distinct-SOC cold builds serialized: {elapsed:?}"
        );
        let stats = registry.stats();
        assert_eq!((stats.misses, stats.created), (2, 2));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn concurrent_same_soc_builds_coalesce_onto_one_leader() {
        let plan = FaultPlan::parse("build:delay:300").unwrap();
        let registry = Arc::new(SessionRegistry::new(4, u64::MAX).with_faults(plan));
        let (first, second) = std::thread::scope(|scope| {
            let r1 = Arc::clone(&registry);
            let r2 = Arc::clone(&registry);
            let a = scope.spawn(move || r1.get_or_build(&d695()).unwrap());
            // Give the first thread time to become the leader.
            std::thread::sleep(Duration::from_millis(50));
            let b = scope.spawn(move || r2.get_or_build(&d695()).unwrap());
            (a.join().unwrap(), b.join().unwrap())
        });
        assert!(Arc::ptr_eq(&first.engine, &second.engine));
        let stats = registry.stats();
        assert_eq!((stats.misses, stats.created), (1, 1));
        assert_eq!(stats.hits, 1, "the waiter lands as a warm hit");
        assert!(stats.coalesced_builds >= 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn failed_build_releases_waiters_to_retry() {
        let plan = FaultPlan::parse("build:delay:200@empty").unwrap();
        let registry = Arc::new(SessionRegistry::new(4, u64::MAX).with_faults(plan));
        std::thread::scope(|scope| {
            let r1 = Arc::clone(&registry);
            let r2 = Arc::clone(&registry);
            let a = scope.spawn(move || r1.get_or_build(&Soc::new("empty")).unwrap_err());
            std::thread::sleep(Duration::from_millis(50));
            let b = scope.spawn(move || r2.get_or_build(&Soc::new("empty")).unwrap_err());
            assert!(matches!(
                a.join().unwrap(),
                OptimizeError::InvalidSoc { .. }
            ));
            assert!(matches!(
                b.join().unwrap(),
                OptimizeError::InvalidSoc { .. }
            ));
        });
        let stats = registry.stats();
        // Both callers ended up leading a (failed) build.
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.created, 0);
        assert!(registry.is_empty());
        assert!(registry.lock().inflight.is_empty());
    }

    #[test]
    fn shared_row_store_survives_eviction_and_rebuild() {
        use crate::engine::OptimizeRequest;
        use crate::problem::OptimizerConfig;
        use soctest_ate::{AteSpec, ProbeStation, TestCell};
        let store = Arc::new(RowStore::new());
        let registry = SessionRegistry::with_row_store(1, u64::MAX, Arc::clone(&store));
        let cell = TestCell::new(
            AteSpec::new(128, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        let request = OptimizeRequest::new(OptimizerConfig::new(cell));
        let first = registry.get_or_build(&d695()).unwrap();
        let expected = first.engine.run(&request).unwrap();
        let computed_cold = store.stats().cells_computed;
        assert!(computed_cold > 0);
        // Evict d695 by admitting a second SOC into the 1-session cap...
        registry.get_or_build(&p22810()).unwrap();
        // ...then rebuild it: the fresh engine pulls every cell from the
        // shared store instead of recomputing, bit-identically.
        let rebuilt = registry.get_or_build(&d695()).unwrap();
        assert!(!rebuilt.warm);
        assert_eq!(rebuilt.engine.run(&request).unwrap(), expected);
        assert_eq!(store.stats().cells_computed, computed_cold);
    }

    #[test]
    fn fnv_hash_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64("soc a\n"), fnv1a64("soc b\n"));
    }
}
