//! The fault-injection harness: deterministic panics, delays, and
//! allocation pressure at chosen pipeline stages.
//!
//! Robustness claims ("a panicking request yields an `Internal` frame and
//! the server keeps serving") are only testable if a fault can be placed
//! *exactly* where the claim lives. A [`FaultPlan`] is a comma-separated
//! list of directives,
//!
//! ```text
//! <stage>:<kind>[:<arg>][@<request_id>]
//! ```
//!
//! e.g. `optimize:panic@r2` (panic while serving request `r2`),
//! `optimize:delay:400` (sleep 400 ms in every request),
//! `respond:alloc:64@r1` (allocate and touch 64 MiB before answering
//! `r1`). Stages are [`Stage::Admission`] (reader thread, before the
//! request is queued), [`Stage::Optimize`] (executor, before the engine
//! runs), [`Stage::Build`] (inside the registry's lock-free cold-build
//! path, before `Engine::try_build` — fires with the SOC name as the
//! pseudo request id), [`Stage::Respond`] (executor, after the engine
//! ran, before the frame is written), [`Stage::Store`] (around cache
//! file I/O — fires with the pseudo request ids `load` / `save`), and
//! the transport stages [`Stage::Accept`] / [`Stage::Connection`]
//! (around socket accept and connection setup — fire with the
//! connection ordinal, `1`, `2`, ..., as the pseudo request id).
//! Without an `@` filter a directive fires on every request.
//!
//! The harness is env-gated: production paths never construct a non-empty
//! plan unless `SOCTEST_FAULTS` is set (or the `soc-serve` binary is
//! given `--faults`), and an empty plan's [`FaultPlan::fire`] is a single
//! slice-emptiness check.

use std::fmt;
use std::thread;
use std::time::Duration;

/// The environment variable [`FaultPlan::from_env`] reads.
pub const FAULTS_ENV_VAR: &str = "SOCTEST_FAULTS";

/// A pipeline stage a fault can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Stage {
    /// On the reader thread, after parsing an `Optimize` frame, before
    /// admission to the queue. Delays here back-pressure the reader
    /// (useful for making overload tests deterministic); a panic here
    /// takes the reader down and is *not* isolated.
    Admission,
    /// On the executor, inside per-request isolation, before the engine
    /// serves the request.
    Optimize,
    /// Inside the session registry's cold-build path, after the in-flight
    /// marker is planted and the registry lock released, before
    /// `Engine::try_build` runs — the spot that proves cold builds of
    /// distinct SOCs no longer serialise behind one registry mutex. Fires
    /// with the SOC name as the pseudo request id.
    Build,
    /// On the executor, inside per-request isolation, after the engine
    /// served the request, before its frame is written.
    Respond,
    /// Around row-store cache-file I/O (startup load, shutdown save),
    /// inside the server's store isolation: a panicking store never
    /// takes the session down, it only costs the cache. Fires with the
    /// pseudo request ids `load` and `save`.
    Store,
    /// On the transport's accept loop, after a connection is accepted,
    /// before its session starts — inside the transport's isolation, so
    /// a panicking accept costs that one connection, never the
    /// listener. Fires with the connection ordinal (`1`, `2`, ...) as
    /// the pseudo request id.
    Accept,
    /// On a transport connection's reader thread, before the first frame
    /// is read — inside per-connection isolation, so a panic drops the
    /// connection while the server keeps serving the others. Fires with
    /// the connection ordinal as the pseudo request id.
    Connection,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::Admission => "admission",
            Stage::Optimize => "optimize",
            Stage::Build => "build",
            Stage::Respond => "respond",
            Stage::Store => "store",
            Stage::Accept => "accept",
            Stage::Connection => "connection",
        };
        f.write_str(name)
    }
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FaultKind {
    /// `panic!` with a recognisable message.
    Panic,
    /// Sleep for the given number of milliseconds.
    DelayMs(u64),
    /// Allocate the given number of MiB, touch every page, drop it.
    AllocMib(u64),
}

/// One armed fault.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fault {
    stage: Stage,
    kind: FaultKind,
    /// Fire only for this request id; `None` fires for every request.
    request_id: Option<String>,
}

/// A parsed set of faults; empty in production. See the
/// [module docs](self) for the directive grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fires.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses a comma-separated directive list (empty input → empty
    /// plan).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending directive.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            faults.push(Fault::parse(directive)?);
        }
        Ok(FaultPlan { faults })
    }

    /// The plan armed by the `SOCTEST_FAULTS` environment variable; empty
    /// when the variable is unset.
    ///
    /// # Errors
    ///
    /// The parse error of a set-but-malformed variable (refusing to run
    /// with a half-understood plan beats silently dropping faults).
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULTS_ENV_VAR) {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::none()),
        }
    }

    /// Fires every fault armed for `stage` whose request filter matches
    /// `request_id`, in plan order.
    ///
    /// # Panics
    ///
    /// A matching `panic` fault panics (that is its job); the caller's
    /// isolation layer is what is being tested.
    pub fn fire(&self, stage: Stage, request_id: &str) {
        if self.faults.is_empty() {
            return;
        }
        for fault in &self.faults {
            if fault.stage != stage {
                continue;
            }
            if let Some(only) = &fault.request_id {
                if only != request_id {
                    continue;
                }
            }
            fault.execute(request_id);
        }
    }
}

impl Fault {
    fn parse(directive: &str) -> Result<Fault, String> {
        let (spec, request_id) = match directive.split_once('@') {
            Some((spec, id)) if !id.is_empty() => (spec, Some(id.to_string())),
            Some(_) => return Err(format!("empty request filter in `{directive}`")),
            None => (directive, None),
        };
        let mut parts = spec.split(':');
        let stage = match parts.next() {
            Some("admission") => Stage::Admission,
            Some("optimize") => Stage::Optimize,
            Some("build") => Stage::Build,
            Some("respond") => Stage::Respond,
            Some("store") => Stage::Store,
            Some("accept") => Stage::Accept,
            Some("connection") => Stage::Connection,
            other => {
                return Err(format!(
                    "unknown stage `{}` in `{directive}` \
                     (expected admission|optimize|build|respond|store|accept|connection)",
                    other.unwrap_or("")
                ))
            }
        };
        let kind = match (parts.next(), parts.next()) {
            (Some("panic"), None) => FaultKind::Panic,
            (Some("delay"), Some(ms)) => FaultKind::DelayMs(
                ms.parse()
                    .map_err(|_| format!("invalid delay `{ms}` in `{directive}`"))?,
            ),
            (Some("alloc"), Some(mib)) => FaultKind::AllocMib(
                mib.parse()
                    .map_err(|_| format!("invalid alloc size `{mib}` in `{directive}`"))?,
            ),
            _ => {
                return Err(format!(
                    "unknown fault kind in `{directive}` \
                     (expected panic | delay:<ms> | alloc:<mib>)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("trailing tokens in `{directive}`"));
        }
        Ok(Fault {
            stage,
            kind,
            request_id,
        })
    }

    fn execute(&self, request_id: &str) {
        match &self.kind {
            FaultKind::Panic => {
                panic!(
                    "injected fault: {} panic for request `{request_id}`",
                    self.stage
                )
            }
            FaultKind::DelayMs(ms) => thread::sleep(Duration::from_millis(*ms)),
            FaultKind::AllocMib(mib) => {
                // Touch a byte of every page so the pressure is resident,
                // not just reserved address space.
                let bytes = usize::try_from(mib.saturating_mul(1024 * 1024))
                    .unwrap_or(usize::MAX)
                    .max(1);
                let mut block = vec![0u8; bytes];
                for index in (0..block.len()).step_by(4096) {
                    block[index] = 1;
                }
                std::hint::black_box(&block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Instant;

    #[test]
    fn empty_specs_parse_to_the_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn directives_parse_with_and_without_filters() {
        let plan =
            FaultPlan::parse("optimize:panic@r2, admission:delay:200, respond:alloc:4@r1").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].stage, Stage::Optimize);
        assert_eq!(plan.faults[0].kind, FaultKind::Panic);
        assert_eq!(plan.faults[0].request_id.as_deref(), Some("r2"));
        assert_eq!(plan.faults[1].kind, FaultKind::DelayMs(200));
        assert_eq!(plan.faults[1].request_id, None);
        assert_eq!(plan.faults[2].kind, FaultKind::AllocMib(4));
    }

    #[test]
    fn build_stage_parses_and_fires_on_soc_names() {
        let plan = FaultPlan::parse("build:delay:1@d695").unwrap();
        assert_eq!(plan.faults[0].stage, Stage::Build);
        plan.fire(Stage::Build, "p22810"); // filtered out
        plan.fire(Stage::Build, "d695"); // 1 ms delay, returns
        let panicking = FaultPlan::parse("build:panic").unwrap();
        assert!(catch_unwind(AssertUnwindSafe(|| panicking.fire(Stage::Build, "any"))).is_err());
    }

    #[test]
    fn store_stage_parses_and_fires_on_its_pseudo_ids() {
        let plan = FaultPlan::parse("store:panic@save").unwrap();
        assert_eq!(plan.faults[0].stage, Stage::Store);
        plan.fire(Stage::Store, "load"); // filtered out
        assert!(catch_unwind(AssertUnwindSafe(|| plan.fire(Stage::Store, "save"))).is_err());
    }

    #[test]
    fn transport_stages_parse_and_fire_on_connection_ordinals() {
        let plan = FaultPlan::parse("accept:panic@2, connection:delay:1").unwrap();
        assert_eq!(plan.faults[0].stage, Stage::Accept);
        assert_eq!(plan.faults[1].stage, Stage::Connection);
        plan.fire(Stage::Accept, "1"); // filtered out
        plan.fire(Stage::Connection, "7"); // unfiltered delay, returns
        assert!(catch_unwind(AssertUnwindSafe(|| plan.fire(Stage::Accept, "2"))).is_err());
    }

    #[test]
    fn malformed_directives_name_the_problem() {
        for (spec, needle) in [
            ("nowhere:panic", "unknown stage"),
            ("optimize:explode", "unknown fault kind"),
            ("optimize:delay:soon", "invalid delay"),
            ("optimize:alloc:lots", "invalid alloc"),
            ("optimize:panic:extra", "unknown fault kind"),
            ("optimize:delay:5:extra", "trailing tokens"),
            ("optimize:panic@", "empty request filter"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec:?} gave: {err}");
        }
    }

    #[test]
    fn panic_fault_fires_only_for_its_request() {
        let plan = FaultPlan::parse("optimize:panic@r2").unwrap();
        plan.fire(Stage::Optimize, "r1"); // filtered out
        plan.fire(Stage::Respond, "r2"); // wrong stage
        let payload = catch_unwind(AssertUnwindSafe(|| plan.fire(Stage::Optimize, "r2")))
            .expect_err("armed fault must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("injected fault"), "got: {message}");
        assert!(message.contains("r2"));
    }

    #[test]
    fn delay_fault_actually_sleeps() {
        let plan = FaultPlan::parse("respond:delay:30").unwrap();
        let start = Instant::now();
        plan.fire(Stage::Respond, "any");
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn alloc_fault_survives_and_returns() {
        let plan = FaultPlan::parse("optimize:alloc:2").unwrap();
        plan.fire(Stage::Optimize, "any"); // must not crash or leak
    }
}
