//! The socket front-end of the service: a Unix-domain (or TCP)
//! listener where every accepted connection speaks the same NDJSON
//! frame protocol as the stdin/stdout session, concurrently, over one
//! shared [`Server`].
//!
//! The sharing is the point: all connections hit one
//! [`SessionRegistry`], one row store, one [`SolutionCache`], and one
//! bounded admission queue drained by the server's executor pool — so a
//! SOC warmed by one client is warm for the next, identical concurrent
//! requests from different clients coalesce onto a single computation,
//! and admission control is global rather than per-stream. What stays
//! per-connection is exactly what the protocol promises per-stream:
//! response *order* (admission order on that connection, whatever the
//! executor count), cancellation scope (a client can only cancel its
//! own requests), and the final `Bye` frame, whose counters are scoped
//! to the connection and carry a [`ConnectionStats`] identity block.
//!
//! Lifecycle: [`ListenAddr::parse`] → [`BoundListener::bind`] →
//! [`BoundListener::serve`], which accepts until the caller's shutdown
//! flag flips (typically from a `SIGTERM`/`SIGINT` handler), then
//! **drains**: stop accepting, half-close every live socket so readers
//! see EOF, tighten every in-flight cancellation token to a drain
//! deadline ([`TransportConfig::drain_grace`] from now), and wait for
//! each connection to finish with its own `Bye`. Requests that outlive
//! the grace answer `DeadlineExceeded` instead of holding the drain
//! open; a connection that still refuses to finish
//! ([`TransportConfig::drain_margin`] past the grace) is abandoned —
//! counted lost, its socket fully shut down — rather than allowed to
//! wedge the drain. Accepted sockets carry a write timeout
//! ([`TransportConfig::write_timeout`]), so a client that stops reading
//! costs its own connection (dead sink), never the shared executor
//! pool. The row store is persisted once, at drain — not once per
//! connection.
//!
//! The fault harness extends here: `accept`-stage faults fire in the
//! accept loop (a panic refuses that one connection), and
//! `connection`-stage faults fire on the connection's reader thread
//! before the first frame (a panic fails that one connection with a
//! typed `Internal` frame and a clean `Bye`). Both are keyed by the
//! accept ordinal (`"1"`, `"2"`, …) in place of a request id.
//!
//! [`SessionRegistry`]: crate::service::registry::SessionRegistry
//! [`SolutionCache`]: crate::service::cache::SolutionCache
//! [`ConnectionStats`]: crate::service::protocol::ConnectionStats

use crate::service::faults::Stage;
use crate::service::protocol::ServerStats;
use crate::service::server::{panic_message, Server};
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending (the
/// listener runs non-blocking so the shutdown flag is observed
/// promptly). Short enough that connection setup and drain latency stay
/// in the low single-digit milliseconds, long enough that an idle
/// listener wakes only a few hundred times a second.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix-domain socket at this path (created at bind, removed at
    /// close).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7878` or `localhost:7878` (`:0`
    /// picks a free port — the bound address is echoed by
    /// [`BoundListener::local_addr`]).
    Tcp(String),
}

impl ListenAddr {
    /// Parses a `--listen` operand: anything that parses as a socket
    /// address, or looks like `host:port` (a hostname such as
    /// `localhost:7878` — bind/connect resolve it), is TCP; everything
    /// else is a Unix socket path. A string containing a path separator
    /// is always a path, colons and all.
    ///
    /// # Errors
    ///
    /// Rejects the empty string.
    pub fn parse(text: &str) -> Result<ListenAddr, String> {
        if text.is_empty() {
            return Err("listen address must not be empty".to_string());
        }
        if text.parse::<SocketAddr>().is_ok() || is_host_port(text) {
            Ok(ListenAddr::Tcp(text.to_string()))
        } else {
            Ok(ListenAddr::Unix(PathBuf::from(text)))
        }
    }
}

/// A syntactic `host:port` check for the hostname forms `SocketAddr`
/// rejects: one colon, a non-empty host without path separators, a
/// valid port number. Resolution is left to bind/connect, whose "failed
/// to look up address" beats the file-not-found a misclassified Unix
/// path would give.
fn is_host_port(text: &str) -> bool {
    if text.contains('/') {
        return false;
    }
    match text.rsplit_once(':') {
        Some((host, port)) => {
            !host.is_empty() && !host.contains(':') && port.parse::<u16>().is_ok()
        }
        None => false,
    }
}

impl fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListenAddr::Unix(path) => write!(f, "{}", path.display()),
            ListenAddr::Tcp(addr) => write!(f, "{addr}"),
        }
    }
}

/// Knobs of the socket front-end (the compute knobs live on
/// [`crate::service::ServerConfig`], which the transport shares).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TransportConfig {
    /// How long in-flight requests may keep running once a drain
    /// starts; beyond it their tokens' deadlines fire and they answer
    /// `DeadlineExceeded`.
    pub drain_grace: Duration,
    /// Extra patience beyond the drain grace before a connection is
    /// declared stuck and abandoned: covers the gap between a token's
    /// deadline firing and the engine's next cancellation probe.
    pub drain_margin: Duration,
    /// Write timeout set on every accepted socket (`SO_SNDTIMEO`). A
    /// client that submits requests but stops reading fills the kernel
    /// send buffer; without a timeout the executor flushing that
    /// connection would block indefinitely under the writer lock —
    /// head-of-line blocking for the whole shared pool. A timed-out
    /// write marks the sink dead like any other write error: the
    /// session still drains, the outcome is reported as a lost
    /// connection.
    pub write_timeout: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            drain_grace: Duration::from_secs(2),
            drain_margin: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// Server-lifetime aggregate across every connection the listener
/// served, reported when [`BoundListener::serve`] returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TransportStats {
    /// Connections accepted and served to a `Bye` (including failed
    /// ones — every accepted connection ends in exactly one `Bye`).
    pub connections: u64,
    /// Accepts refused by an injected accept-stage panic.
    pub refused_accepts: u64,
    /// Connections whose outcome was lost (sink write error, or stuck
    /// past the drain deadline plus margin).
    pub lost_connections: u64,
    /// Result frames served, summed over all connections.
    pub served: u64,
    /// Error frames answered, summed over all connections.
    pub errors: u64,
    /// The subset of `errors` with kind `internal`, summed over all
    /// connections.
    pub internal_errors: u64,
    /// Module rows persisted by the single drain-time store save.
    pub store_rows_saved: u64,
}

impl TransportStats {
    fn absorb(&mut self, bye: &ServerStats) {
        self.served += bye.served;
        self.errors += bye.errors;
        self.internal_errors += bye.internal_errors;
    }
}

#[derive(Debug)]
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// One accepted socket, unified over both listener kinds. Cloned
/// handles share the descriptor, which is how the reader side, writer
/// side, and drain half-close all reach the same connection.
#[derive(Debug)]
enum ConnStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ConnStream {
    fn try_clone(&self) -> io::Result<ConnStream> {
        match self {
            ConnStream::Unix(s) => s.try_clone().map(ConnStream::Unix),
            ConnStream::Tcp(s) => s.try_clone().map(ConnStream::Tcp),
        }
    }

    fn shutdown(&self, how: Shutdown) {
        let _ = match self {
            ConnStream::Unix(s) => s.shutdown(how),
            ConnStream::Tcp(s) => s.shutdown(how),
        };
    }

    /// Accepted sockets inherit the listener's non-blocking flag on
    /// some platforms; the per-connection reader wants plain blocking
    /// reads.
    fn set_blocking(&self) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_nonblocking(false),
            ConnStream::Tcp(s) => s.set_nonblocking(false),
        }
    }

    /// Arms `SO_SNDTIMEO` — a socket-level option, so one call covers
    /// every cloned handle on the connection.
    fn set_write_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_write_timeout(Some(timeout)),
            ConnStream::Tcp(s) => s.set_write_timeout(Some(timeout)),
        }
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.read(buf),
            ConnStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.write(buf),
            ConnStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.flush(),
            ConnStream::Tcp(s) => s.flush(),
        }
    }
}

/// The client side of the transport: one connected stream to a
/// [`BoundListener`], Unix or TCP — what the `soc-client` binary pipes
/// NDJSON through.
#[derive(Debug)]
pub struct ClientStream(ConnStream);

impl ClientStream {
    /// Connects to a listening server.
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(addr: &ListenAddr) -> io::Result<ClientStream> {
        match addr {
            ListenAddr::Unix(path) => {
                UnixStream::connect(path).map(|stream| ClientStream(ConnStream::Unix(stream)))
            }
            ListenAddr::Tcp(spec) => {
                TcpStream::connect(spec).map(|stream| ClientStream(ConnStream::Tcp(stream)))
            }
        }
    }

    /// A second handle on the same connection, so one side can write
    /// while the other reads.
    ///
    /// # Errors
    ///
    /// The underlying clone error.
    pub fn try_clone(&self) -> io::Result<ClientStream> {
        self.0.try_clone().map(ClientStream)
    }

    /// Half-closes the write side — the client's "no more frames", which
    /// the server reads as EOF and answers with `Bye`.
    pub fn shutdown_write(&self) {
        self.0.shutdown(Shutdown::Write);
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

/// A bound, not-yet-serving listener. Binding is split from serving so
/// the caller can announce the actual address (TCP `:0` resolves to a
/// real port here) before the first client connects.
#[derive(Debug)]
pub struct BoundListener {
    listener: Listener,
    display: String,
    /// The Unix socket path to unlink when the listener closes.
    cleanup: Option<PathBuf>,
}

impl BoundListener {
    /// Binds the address and switches the listener to non-blocking
    /// accepts. A Unix path whose previous owner died (the socket file
    /// exists but nothing accepts on it) is silently reclaimed; a path
    /// with a live listener stays `AddrInUse`. The liveness probe is a
    /// real `connect`: the live owner accepts it as an ordinary
    /// connection that immediately closes without a frame — it consumes
    /// one accept ordinal there (shifting `accept`/`connection` fault
    /// keying) and shows up in its drain aggregate as a connection whose
    /// `Bye` went to a closed peer.
    ///
    /// # Errors
    ///
    /// Any bind error other than a reclaimable stale Unix socket.
    pub fn bind(addr: &ListenAddr) -> io::Result<BoundListener> {
        match addr {
            ListenAddr::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(listener) => listener,
                    Err(error) if error.kind() == io::ErrorKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(error); // a live server owns it
                        }
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(error) => return Err(error),
                };
                listener.set_nonblocking(true)?;
                Ok(BoundListener {
                    display: path.display().to_string(),
                    listener: Listener::Unix(listener),
                    cleanup: Some(path.clone()),
                })
            }
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                listener.set_nonblocking(true)?;
                Ok(BoundListener {
                    display: listener.local_addr()?.to_string(),
                    listener: Listener::Tcp(listener),
                    cleanup: None,
                })
            }
        }
    }

    /// The bound address as text — the Unix path, or the actual TCP
    /// address (port resolved) for clients to connect to.
    pub fn local_addr(&self) -> &str {
        &self.display
    }

    /// One non-blocking accept; `None` when no connection is pending.
    fn accept(&self) -> io::Result<Option<ConnStream>> {
        let accepted = match &self.listener {
            Listener::Unix(listener) => listener.accept().map(|(s, _)| ConnStream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| ConnStream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream)),
            Err(error)
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::Interrupted
                        | io::ErrorKind::ConnectionAborted
                ) =>
            {
                Ok(None)
            }
            Err(error) => Err(error),
        }
    }

    /// Accepts and serves connections over `server` until `shutdown`
    /// flips, then drains (see the [module docs](self)) and returns the
    /// server-lifetime aggregate.
    ///
    /// Every accepted connection gets a reader thread; requests from
    /// all connections funnel through the server's shared admission
    /// queue and executor pool.
    ///
    /// # Errors
    ///
    /// Only a failing *accept* (not a failing connection) aborts the
    /// listener.
    pub fn serve(
        &self,
        server: &Server,
        config: &TransportConfig,
        shutdown: &AtomicBool,
    ) -> io::Result<TransportStats> {
        let faults = server.config().faults.clone();
        let executors = server.config().executors.max(1);
        let mut stats = TransportStats::default();
        // Set once at drain; reader threads re-apply it after EOF so
        // even requests admitted from already-buffered lines are bound.
        let drain_deadline: Mutex<Option<Instant>> = Mutex::new(None);
        let mut accept_error = None;
        thread::scope(|scope| {
            server.reopen_queue();
            let workers: Vec<_> = (0..executors)
                .map(|_| scope.spawn(|| server.run_worker()))
                .collect();
            let mut live = Vec::new();
            let mut ordinal: u64 = 0;
            while !shutdown.load(Ordering::SeqCst) {
                let stream = match self.accept() {
                    Ok(Some(stream)) => stream,
                    Ok(None) => {
                        thread::sleep(ACCEPT_POLL);
                        continue;
                    }
                    // A broken listener ends the serve, but the drain
                    // below still runs: live connections finish and the
                    // executor pool is joined before we report it.
                    Err(error) => {
                        accept_error = Some(error);
                        break;
                    }
                };
                ordinal += 1;
                let tag = ordinal.to_string();
                // An injected accept-stage panic refuses this one
                // connection; the listener keeps accepting.
                let accept_gate = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faults.fire(Stage::Accept, &tag);
                }));
                if accept_gate.is_err() {
                    stats.refused_accepts += 1;
                    continue; // dropping the stream closes it
                }
                // The descriptor is shared four ways: the writer (owned
                // by the connection), the reader, the reader's closer
                // (half-closes after Bye so clients see EOF), and the
                // drain handle kept here.
                let handles = stream
                    .set_blocking()
                    .and_then(|()| stream.set_write_timeout(config.write_timeout))
                    .and_then(|()| {
                        Ok((
                            stream.try_clone()?,
                            stream.try_clone()?,
                            stream.try_clone()?,
                        ))
                    });
                let (read_half, closer, drain_handle) = match handles {
                    Ok(handles) => handles,
                    Err(error) => {
                        eprintln!("warning: connection {tag}: {error}; dropped");
                        stats.refused_accepts += 1;
                        continue;
                    }
                };
                let conn = server.open_connection(Box::new(stream), ordinal, true, false);
                let reader_conn = Arc::clone(&conn);
                let reader_faults = faults.clone();
                let reader_deadline = &drain_deadline;
                let handle = scope.spawn(move || {
                    let gate = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        reader_faults.fire(Stage::Connection, &tag);
                        server.run_reader(BufReader::new(read_half), &reader_conn);
                    }));
                    if let Err(payload) = gate {
                        server.fail_connection(
                            &reader_conn,
                            format!("connection failed: {}", panic_message(payload.as_ref())),
                        );
                    }
                    if let Some(deadline) = *lock(reader_deadline) {
                        server.impose_drain_deadline(&reader_conn, deadline);
                    }
                    // Close the socket once Bye has left, so a client
                    // reading to EOF is released immediately rather than
                    // at server drain.
                    server.await_finished(&reader_conn);
                    closer.shutdown(Shutdown::Both);
                });
                live.push((conn, drain_handle, handle));
            }
            // Drain. Order matters: arm the deadline before half-closing
            // the sockets, so a reader hitting EOF always sees it set.
            let deadline = Instant::now() + config.drain_grace;
            *lock(&drain_deadline) = Some(deadline);
            for (conn, stream, _) in &live {
                stream.shutdown(Shutdown::Read);
                server.impose_drain_deadline(conn, deadline);
            }
            for (conn, stream, handle) in live {
                stats.connections += 1;
                // The bounded wait runs *before* joining the reader
                // thread: the reader parks in an unbounded
                // `await_finished` on the same flag, so joining first
                // would wedge the drain on any connection that never
                // finishes. A stuck connection is abandoned instead —
                // the abandon flag releases the reader's wait, and the
                // full shutdown fails any executor parked in a write to
                // this socket — so the join below is always bounded.
                if server.wait_finished_timeout(&conn, config.drain_grace + config.drain_margin) {
                    match server.wait_finished(&conn) {
                        Ok(bye) => stats.absorb(&bye),
                        Err(error) => {
                            eprintln!("warning: connection {}: {error}", conn.ordinal());
                            stats.lost_connections += 1;
                        }
                    }
                } else {
                    eprintln!(
                        "warning: connection {} stuck past drain deadline; abandoned",
                        conn.ordinal()
                    );
                    stats.lost_connections += 1;
                    server.abandon_connection(&conn);
                }
                stream.shutdown(Shutdown::Both);
                if handle.join().is_err() {
                    // fail_connection already ran inside catch_unwind;
                    // a panic here is past it — close so Bye can leave.
                    server.close_connection(&conn);
                }
            }
            server.close_queue();
            for worker in workers {
                if let Err(payload) = worker.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        // Persist before reporting an accept failure: the drain of live
        // connections already completed, and socket connections never
        // save the store themselves — returning early here would throw
        // away every row this serve warmed.
        stats.store_rows_saved = server.save_store_now();
        if let Some(error) = accept_error {
            return Err(error);
        }
        Ok(stats)
    }
}

impl Drop for BoundListener {
    fn drop(&mut self) {
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OptimizeRequest;
    use crate::problem::OptimizerConfig;
    use crate::service::faults::FaultPlan;
    use crate::service::protocol::{ClientFrame, ErrorKind, OptimizeFrame, ServerFrame, SocSpec};
    use crate::service::server::ServerConfig;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use std::sync::atomic::AtomicBool;

    #[test]
    fn listen_addr_parse_distinguishes_tcp_from_paths() {
        assert_eq!(
            ListenAddr::parse("127.0.0.1:0").unwrap(),
            ListenAddr::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            ListenAddr::parse("[::1]:7878").unwrap(),
            ListenAddr::Tcp("[::1]:7878".to_string())
        );
        // A hostname:port — the advertised HOST:PORT form — is TCP even
        // though it is not a SocketAddr literal.
        assert_eq!(
            ListenAddr::parse("localhost:7878").unwrap(),
            ListenAddr::Tcp("localhost:7878".to_string())
        );
        assert_eq!(
            ListenAddr::parse("/tmp/soc.sock").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/soc.sock"))
        );
        // No port: a path, not an address.
        assert_eq!(
            ListenAddr::parse("localhost").unwrap(),
            ListenAddr::Unix(PathBuf::from("localhost"))
        );
        // A path separator always means a path, colons and all.
        assert_eq!(
            ListenAddr::parse("/tmp/odd:1").unwrap(),
            ListenAddr::Unix(PathBuf::from("/tmp/odd:1"))
        );
        // An out-of-range or non-numeric port is not a host:port form.
        assert_eq!(
            ListenAddr::parse("soc.sock:archive").unwrap(),
            ListenAddr::Unix(PathBuf::from("soc.sock:archive"))
        );
        assert!(ListenAddr::parse("").is_err());
    }

    fn optimize_line(request_id: &str, soc: &str) -> String {
        let cell = TestCell::new(
            AteSpec::new(256, 96 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        );
        serde_json::to_string(&ClientFrame::Optimize(OptimizeFrame {
            request_id: request_id.to_string(),
            soc: SocSpec::Named(soc.to_string()),
            request: OptimizeRequest::new(OptimizerConfig::new(cell)),
            deadline_ms: None,
            stats: false,
        }))
        .unwrap()
    }

    /// Connects, sends `lines`, half-closes, and returns the parsed
    /// response frames (ending in `Bye`).
    fn client_session(path: &std::path::Path, lines: &[String]) -> Vec<ServerFrame> {
        let mut stream = UnixStream::connect(path).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").expect("send");
        }
        stream.shutdown(Shutdown::Write).expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
            .lines()
            .map(|line| serde_json::from_str(line).expect("frame parses"))
            .collect()
    }

    struct SockDirGuard(PathBuf);

    impl SockDirGuard {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("soctest-transport-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create sock dir");
            SockDirGuard(dir)
        }

        fn sock(&self) -> PathBuf {
            self.0.join("soc.sock")
        }
    }

    impl Drop for SockDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Runs a listener over `server` for the duration of `clients`,
    /// then drains and returns the aggregate.
    fn with_listener(
        server: &Server,
        path: &std::path::Path,
        clients: impl FnOnce(),
    ) -> TransportStats {
        let listener = BoundListener::bind(&ListenAddr::Unix(path.to_path_buf())).expect("bind");
        let stop = AtomicBool::new(false);
        thread::scope(|scope| {
            let serving = scope.spawn(|| {
                listener
                    .serve(server, &TransportConfig::default(), &stop)
                    .expect("serve")
            });
            clients();
            stop.store(true, Ordering::SeqCst);
            serving.join().expect("listener thread")
        })
    }

    #[test]
    fn two_connections_share_the_server_and_get_scoped_byes() {
        let guard = SockDirGuard::new("shared");
        let server = Server::new(ServerConfig::default());
        let path = guard.sock();
        let stats = with_listener(&server, &path, || {
            let first = client_session(&path, &[optimize_line("a1", "d695")]);
            let second = client_session(&path, &[optimize_line("b1", "d695")]);
            for (frames, id, conn_id) in [(&first, "a1", 1), (&second, "b1", 2)] {
                assert_eq!(frames.len(), 2, "{frames:?}");
                match &frames[0] {
                    ServerFrame::Result(result) => assert_eq!(result.request_id, id),
                    other => panic!("expected result, got {other:?}"),
                }
                match &frames[1] {
                    ServerFrame::Bye(bye) => {
                        // Counters are connection-scoped...
                        assert_eq!(bye.served, 1);
                        assert_eq!(bye.errors, 0);
                        // ...and carry the connection identity.
                        let connection = bye.connection.expect("socket Bye has identity");
                        assert_eq!(connection.id, conn_id);
                        assert_eq!(connection.requests, 1);
                    }
                    other => panic!("expected Bye, got {other:?}"),
                }
            }
            // Shared state: the second client's identical request hit
            // the solution cache warmed by the first.
            match &second[0] {
                ServerFrame::Result(result) => {
                    assert!(result.warm, "session warmed by connection 1");
                    assert!(result.cached, "answer served from the shared cache");
                }
                other => panic!("expected result, got {other:?}"),
            }
        });
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.lost_connections, 0);
    }

    #[test]
    fn connection_stage_panic_fails_one_connection_cleanly() {
        let guard = SockDirGuard::new("conn-fault");
        let server = Server::new(ServerConfig {
            faults: FaultPlan::parse("connection:panic@2").unwrap(),
            ..ServerConfig::default()
        });
        let path = guard.sock();
        let stats = with_listener(&server, &path, || {
            let first = client_session(&path, &[optimize_line("a1", "d695")]);
            assert!(
                matches!(&first[0], ServerFrame::Result(_)),
                "connection 1 unaffected: {first:?}"
            );
            // Connection 2 is failed by the injected panic, but still
            // answers a typed error and a well-formed Bye.
            let second = client_session(&path, &[optimize_line("b1", "d695")]);
            match &second[0] {
                ServerFrame::Error(error) => {
                    assert_eq!(error.kind, ErrorKind::Internal);
                    assert!(
                        error.message.contains("connection failed"),
                        "{}",
                        error.message
                    );
                }
                other => panic!("expected Internal, got {other:?}"),
            }
            assert!(
                matches!(second.last(), Some(ServerFrame::Bye(_))),
                "{second:?}"
            );
            // Connection 3 is served normally again.
            let third = client_session(&path, &[optimize_line("c1", "d695")]);
            assert!(matches!(&third[0], ServerFrame::Result(_)), "{third:?}");
        });
        assert_eq!(stats.connections, 3);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.internal_errors, 1);
    }

    #[test]
    fn accept_stage_panic_refuses_only_that_accept() {
        let guard = SockDirGuard::new("accept-fault");
        let server = Server::new(ServerConfig {
            faults: FaultPlan::parse("accept:panic@1").unwrap(),
            ..ServerConfig::default()
        });
        let path = guard.sock();
        let stats = with_listener(&server, &path, || {
            // The first accept is refused: the socket connects (the
            // kernel completes that before accept) but closes without a
            // single frame.
            let mut refused = UnixStream::connect(&path).expect("connect");
            refused.shutdown(Shutdown::Write).expect("half-close");
            let mut text = String::new();
            refused.read_to_string(&mut text).expect("read");
            assert_eq!(text, "", "refused connection answers nothing");
            // The next connection is served.
            let frames = client_session(&path, &[optimize_line("a1", "d695")]);
            assert!(matches!(&frames[0], ServerFrame::Result(_)), "{frames:?}");
        });
        assert_eq!(stats.refused_accepts, 1);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn stale_unix_socket_is_reclaimed_but_a_live_one_is_not() {
        let guard = SockDirGuard::new("stale");
        let path = guard.sock();
        let addr = ListenAddr::Unix(path.clone());
        // Simulate a killed process: dropping a std listener closes the
        // descriptor but leaves the socket file behind.
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists(), "stale socket file left behind");
        let bound = BoundListener::bind(&addr).expect("stale socket reclaimed");
        // A live listener, on the other hand, is never stolen.
        let error = BoundListener::bind(&addr).expect_err("live socket not stolen");
        assert_eq!(error.kind(), io::ErrorKind::AddrInUse);
        drop(bound);
        assert!(!path.exists(), "socket path removed on close");
    }

    #[test]
    fn drain_answers_in_flight_requests_before_bye() {
        let guard = SockDirGuard::new("drain");
        let server = Server::new(ServerConfig {
            faults: FaultPlan::parse("optimize:delay:200@slow").unwrap(),
            ..ServerConfig::default()
        });
        let path = guard.sock();
        let listener = BoundListener::bind(&ListenAddr::Unix(path.clone())).expect("bind");
        let stop = AtomicBool::new(false);
        let stats = thread::scope(|scope| {
            let serving = scope.spawn(|| {
                listener
                    .serve(&server, &TransportConfig::default(), &stop)
                    .expect("serve")
            });
            // Keep the write side open: the drain, not client EOF, must
            // end this connection.
            let mut stream = UnixStream::connect(&path).expect("connect");
            writeln!(stream, "{}", optimize_line("slow", "d695")).expect("send");
            stream.flush().expect("flush");
            thread::sleep(Duration::from_millis(50));
            stop.store(true, Ordering::SeqCst);
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read");
            let frames: Vec<ServerFrame> = response
                .lines()
                .map(|line| serde_json::from_str(line).expect("frame parses"))
                .collect();
            // The in-flight request was answered (the 200 ms delay fits
            // the 2 s grace), then the connection got its Bye.
            assert_eq!(frames.len(), 2, "{frames:?}");
            assert!(matches!(&frames[0], ServerFrame::Result(r) if r.request_id == "slow"));
            assert!(matches!(&frames[1], ServerFrame::Bye(_)));
            serving.join().expect("listener thread")
        });
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.lost_connections, 0);
        // The socket file is gone once the listener dropped.
        drop(listener);
        assert!(!path.exists(), "socket path cleaned up");
    }

    #[test]
    fn stuck_connection_is_abandoned_without_wedging_the_drain() {
        let guard = SockDirGuard::new("stuck");
        // The delay fault sleeps without observing the cancel token —
        // a request that ignores its drain deadline far past the grace.
        let server = Server::new(ServerConfig {
            faults: FaultPlan::parse("optimize:delay:700@stuck").unwrap(),
            ..ServerConfig::default()
        });
        let config = TransportConfig {
            drain_grace: Duration::from_millis(50),
            drain_margin: Duration::from_millis(100),
            ..TransportConfig::default()
        };
        let path = guard.sock();
        let listener = BoundListener::bind(&ListenAddr::Unix(path.clone())).expect("bind");
        let stop = AtomicBool::new(false);
        // Before the abandonment fix this test hung: the drain joined
        // the reader thread, which was parked waiting for a Bye that
        // only leaves once the stuck request does.
        let stats = thread::scope(|scope| {
            let serving = scope.spawn(|| listener.serve(&server, &config, &stop).expect("serve"));
            let mut stream = UnixStream::connect(&path).expect("connect");
            writeln!(stream, "{}", optimize_line("stuck", "d695")).expect("send");
            stream.flush().expect("flush");
            // Let the executor claim the request and enter the delay.
            thread::sleep(Duration::from_millis(100));
            stop.store(true, Ordering::SeqCst);
            serving.join().expect("listener thread")
        });
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.lost_connections, 1, "stuck connection abandoned");
        assert_eq!(stats.served, 0, "an abandoned Bye is not absorbed");
    }
}
