//! The two-step on-chip test-infrastructure optimizer for optimal
//! multi-site SOC wafer testing — the primary contribution of Goel &
//! Marinissen (DATE 2005).
//!
//! Given a (modular or flat) SOC and a fixed target test cell (ATE channel
//! count, vector-memory depth, test clock, probe-station index time), the
//! optimizer designs:
//!
//! * the core wrappers and channel groups (TAMs), via `soctest-tam`,
//! * the chip-level E-RPCT wrapper (external channel count `k`, internal
//!   TAM width `w`),
//! * the number of multi-sites `n`,
//!
//! such that the SOC test fits the ATE vector memory in a single load and
//! the wafer-test *throughput* (devices per hour) is maximal — which, as the
//! paper shows, is generally **not** the same as maximising the number of
//! sites.
//!
//! The crate is organised as:
//!
//! * [`problem`] — the optimization variants (stimulus broadcast,
//!   abort-on-fail, re-test) and the full problem configuration,
//! * [`engine`] — the session-oriented [`Engine`]: one shared
//!   demand-driven time table per SOC, serving typed, serde-serialisable
//!   [`OptimizeRequest`] batches (the primary API),
//! * [`optimizer`] — Step 1 (channel-count minimisation) + Step 2 (linear
//!   search over the site count with channel redistribution), plus the
//!   one-shot [`optimize`] convenience wrapper,
//! * [`flat`] — the degenerate Problem 2 for flattened SOCs,
//! * [`sweep`] — the parameter sweeps behind Figures 5–7 and the
//!   channel-versus-memory cost analysis, as convenience wrappers over
//!   the engine,
//! * [`report`] — plain-text and JSON reporting of solutions and curves,
//! * [`service`] — the fault-tolerant streaming NDJSON service behind
//!   the `soc-serve` binary: warm-session registry, cancellation and
//!   deadlines, bounded admission, and a fault-injection harness.
//!
//! # Example
//!
//! ```
//! use soctest_multisite::{Engine, OptimizeRequest, OptimizerConfig, SweepAxis};
//! use soctest_soc_model::benchmarks::d695;
//! use soctest_ate::{AteSpec, ProbeStation, TestCell};
//!
//! let cell = TestCell::new(AteSpec::new(256, 96 * 1024, 5.0e6), ProbeStation::paper_probe_station());
//! let config = OptimizerConfig::new(cell);
//! let engine = Engine::new(&d695());
//! let solution = engine.run(&OptimizeRequest::new(config))?
//!     .into_solution()
//!     .expect("a plain request answers with a solution");
//! assert!(solution.optimal.sites >= 1);
//! assert!(solution.optimal.devices_per_hour > 0.0);
//!
//! // Sweeps are requests too — and batches share the engine's table:
//! let sweep = OptimizeRequest::new(config).with_sweep(SweepAxis::Channels(vec![192, 256]));
//! let curves = engine.run(&sweep)?.into_curves().unwrap();
//! assert_eq!(curves[0].points.len(), 2);
//! # Ok::<(), soctest_multisite::OptimizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod flat;
pub mod optimizer;
pub mod problem;
pub mod report;
pub mod service;
pub mod solution;
pub mod sweep;

pub use engine::{
    Engine, EngineBuilder, EngineStats, OptimizeRequest, OptimizeResponse, RequestTrace, SweepAxis,
};
pub use error::OptimizeError;
pub use optimizer::optimize;
pub use problem::{MultiSiteOptions, OptimizerConfig};
pub use service::{CancelToken, Server, ServerConfig};
pub use solution::{MultiSiteSolution, SitePoint};
pub use sweep::{AxisValue, SweepCurve, SweepPoint};
