//! Problem 2: flattened (non-modular) SOCs.
//!
//! For an SOC with a flattened top-level test there is exactly one
//! "module": the whole chip. The module wrapper and the E-RPCT wrapper
//! coincide and there are no TAMs (Figure 2(b) of the paper). The paper
//! treats this as a degenerate case of Problem 1 — and so does this module:
//! [`flatten_soc`] merges all modules into one, after which the regular
//! [`crate::optimizer::optimize`] applies unchanged.

use crate::error::OptimizeError;
use crate::problem::OptimizerConfig;
use crate::solution::MultiSiteSolution;
use soctest_soc_model::{Module, ModuleKind, Soc};

/// Flattens a modular SOC into a single-module SOC:
///
/// * all internal scan chains are kept as-is (they remain individually
///   accessible to the chip-level wrapper),
/// * the functional terminals of all modules are summed,
/// * the pattern count becomes the sum of the per-module pattern counts
///   (each module's patterns are applied through the shared top-level
///   wrapper, one module after the other).
///
/// The flattened SOC is named `<name>_flat`.
pub fn flatten_soc(soc: &Soc) -> Soc {
    let mut builder = Module::builder(format!("{}_top", soc.name()))
        .kind(ModuleKind::Logic)
        .patterns(soc.total_patterns());
    let mut inputs: u64 = 0;
    let mut outputs: u64 = 0;
    let mut bidirs: u64 = 0;
    let mut chains: Vec<u64> = Vec::new();
    for (_, module) in soc.iter() {
        inputs += u64::from(module.inputs());
        outputs += u64::from(module.outputs());
        bidirs += u64::from(module.bidirs());
        chains.extend(module.scan_chains().iter().map(|c| c.length));
    }
    builder = builder
        .inputs(inputs.min(u64::from(u32::MAX)) as u32)
        .outputs(outputs.min(u64::from(u32::MAX)) as u32)
        .bidirs(bidirs.min(u64::from(u32::MAX)) as u32)
        .scan_chains(chains);
    Soc::from_modules(format!("{}_flat", soc.name()), vec![builder.build()])
}

/// Optimizes a flattened SOC (Problem 2): flattens `soc` and runs the
/// regular two-step optimization on the result.
///
/// # Errors
///
/// Same error conditions as [`crate::optimizer::optimize`].
pub fn optimize_flat(
    soc: &Soc,
    config: &OptimizerConfig,
) -> Result<MultiSiteSolution, OptimizeError> {
    let flat = flatten_soc(soc);
    crate::optimizer::optimize(&flat, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use soctest_ate::{AteSpec, ProbeStation, TestCell};
    use soctest_soc_model::benchmarks::d695;

    fn cell() -> TestCell {
        TestCell::new(
            AteSpec::new(256, 512 * 1024, 5.0e6),
            ProbeStation::paper_probe_station(),
        )
    }

    #[test]
    fn flattening_preserves_totals() {
        let soc = d695();
        let flat = flatten_soc(&soc);
        assert_eq!(flat.num_modules(), 1);
        assert_eq!(flat.total_patterns(), soc.total_patterns());
        assert_eq!(flat.total_scan_flip_flops(), soc.total_scan_flip_flops());
        assert_eq!(
            flat.total_functional_terminals(),
            soc.total_functional_terminals()
        );
        assert_eq!(flat.name(), "d695_flat");
    }

    #[test]
    fn flat_soc_has_a_single_wrapper_no_tams() {
        let soc = d695();
        let config = OptimizerConfig::new(cell());
        let solution = optimize_flat(&soc, &config).unwrap();
        // One module means one channel group: module wrapper == E-RPCT wrapper.
        assert_eq!(solution.step1_architecture.groups.len(), 1);
        assert_eq!(solution.optimal_architecture.groups.len(), 1);
    }

    #[test]
    fn flat_test_is_never_faster_than_modular_test() {
        // The flat SOC applies the sum of all pattern counts through one
        // wrapper, which can never beat the modular architecture where
        // modules share the memory depth but keep their own pattern counts.
        let soc = d695();
        let config = OptimizerConfig::new(cell());
        let modular = optimize(&soc, &config).unwrap();
        let flat = optimize_flat(&soc, &config).unwrap();
        assert!(
            flat.optimal.devices_per_hour <= modular.optimal.devices_per_hour + 1e-9,
            "flat {} > modular {}",
            flat.optimal.devices_per_hour,
            modular.optimal.devices_per_hour
        );
    }

    #[test]
    fn flat_optimization_is_consistent() {
        let soc = d695();
        let config = OptimizerConfig::new(cell());
        let solution = optimize_flat(&soc, &config).unwrap();
        assert!(solution.optimal.sites >= 1);
        assert_eq!(solution.curve.len(), solution.max_sites);
        assert!(solution.curve.iter().all(|p| p.devices_per_hour > 0.0));
    }
}
